"""Shared benchmark fixtures.

By default the benchmarks run on the fast corpus subset; set
``REPRO_BENCH_FULL=1`` to cover all 21 entries (a few minutes).  Each
figure's bench writes its regenerated table under ``results/``.
"""

import os
import pathlib

import pytest

from repro.bench.corpus import corpus_names
from repro.bench.harness import run_benchmark

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"


def bench_names():
    full = os.environ.get("REPRO_BENCH_FULL") == "1"
    return corpus_names(small=not full)


@pytest.fixture(scope="session")
def corpus_runs():
    """One full measurement pass per selected corpus entry, shared by all
    figure benchmarks in the session."""
    return [run_benchmark(name) for name in bench_names()]


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
