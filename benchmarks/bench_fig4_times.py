"""Figure 4: analysis times and peak BDD memory for every algorithm.

Per-algorithm kernels are timed with pytest-benchmark on a mid-size entry
(the paper's wall-clock columns), and the full table is regenerated from
the session's corpus runs.
"""

import pytest
from conftest import write_result

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ContextSensitiveTypeAnalysis,
    ThreadEscapeAnalysis,
)
from repro.bench.corpus import corpus_entry
from repro.bench.harness import fig4_table
from repro.callgraph import cha_call_graph
from repro.ir import extract_facts

ENTRY = "jetty"


@pytest.fixture(scope="module")
def prepared():
    facts = extract_facts(corpus_entry(ENTRY).build())
    cha = cha_call_graph(facts)
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    return facts, cha, ci.discovered_call_graph


def test_algorithm1_context_insensitive(prepared, benchmark):
    facts, cha, _ = prepared
    result = benchmark(
        lambda: ContextInsensitiveAnalysis(
            facts=facts, type_filtering=False, discover_call_graph=False,
            call_graph=cha,
        ).run()
    )
    assert not result.relation("vP").is_empty()


def test_algorithm2_type_filtering(prepared, benchmark):
    facts, cha, _ = prepared
    result = benchmark(
        lambda: ContextInsensitiveAnalysis(
            facts=facts, type_filtering=True, discover_call_graph=False,
            call_graph=cha,
        ).run()
    )
    assert not result.relation("vP").is_empty()


def test_algorithm3_call_graph_discovery(prepared, benchmark):
    facts, _, _ = prepared
    result = benchmark(
        lambda: ContextInsensitiveAnalysis(facts=facts).run()
    )
    assert result.discovered_call_graph.edge_count() > 0


def test_algorithm5_context_sensitive(prepared, benchmark):
    facts, _, graph = prepared
    result = benchmark(
        lambda: ContextSensitiveAnalysis(facts=facts, call_graph=graph).run()
    )
    assert result.max_paths() > 1000


def test_algorithm6_type_analysis(prepared, benchmark):
    facts, _, graph = prepared
    result = benchmark(
        lambda: ContextSensitiveTypeAnalysis(facts=facts, call_graph=graph).run()
    )
    assert not result.vTC.is_empty()


def test_algorithm7_thread_escape(prepared, benchmark):
    facts, _, graph = prepared
    result = benchmark(
        lambda: ThreadEscapeAnalysis(facts=facts, call_graph=graph).run()
    )
    assert result.summary()["captured"] > 0


def test_fig4_table(corpus_runs, benchmark):
    text, rows = benchmark.pedantic(
        lambda: fig4_table(corpus_runs), rounds=1, iterations=1
    )
    write_result("fig4.txt", text)
    for row in rows:
        # The paper's qualitative shape: context-sensitive pointer
        # analysis dominates cost; type filtering stays cheap; the
        # thread-sensitive analysis is comparable to context-insensitive.
        assert row["alg5"][0] >= row["alg2"][0] * 0.5
        assert row["alg5"][1] >= row["alg2"][1]
        assert row["alg3_iterations"] >= 2
    # Across the corpus, at least one entry shows the full ordering
    # CI <= CS-type <= CS-pointer on time.
    assert any(
        r["alg2"][0] <= r["alg6"][0] <= r["alg5"][0] for r in rows
    )
