"""Micro-benchmarks of the BDD kernel operations the solver leans on:
rel_prod (join+project), replace (rename), the contiguous-range and
add-constant primitives, and tuple loading."""

import pytest

from repro.bdd import BDD, Domain
from repro.bdd.domain import equality_relation, offset_relation
from repro.bdd.ordering import assign_levels


@pytest.fixture()
def setup():
    bits = {"A": 16, "B": 16, "C": 16}
    levels = assign_levels("AxBxC", bits)
    mgr = BDD(num_vars=48)
    doms = {
        name: Domain(mgr, name, 1 << 16, levels[name]) for name in bits
    }
    return mgr, doms


def _random_relation(mgr, a, b, seed, n=400):
    import random

    rng = random.Random(seed)
    node = 0
    for _ in range(n):
        x, y = rng.randrange(1000), rng.randrange(1000)
        node = mgr.or_(node, mgr.and_(a.eq_const(x), b.eq_const(y)))
    return node


def test_rel_prod(setup, benchmark):
    mgr, doms = setup
    r1 = _random_relation(mgr, doms["A"], doms["B"], seed=1)
    r2 = _random_relation(mgr, doms["B"], doms["C"], seed=2)
    varset = mgr.varset(doms["B"].levels)

    def kernel():
        mgr.clear_caches()
        return mgr.rel_prod(r1, r2, varset)

    result = benchmark(kernel)
    assert result != 0 or True


def test_replace(setup, benchmark):
    mgr, doms = setup
    r1 = _random_relation(mgr, doms["A"], doms["B"], seed=3)
    mapping = doms["A"].replace_map_to(doms["C"])

    def kernel():
        mgr.clear_caches()
        return mgr.replace(r1, mapping)

    benchmark(kernel)


def test_range_primitive(setup, benchmark):
    mgr, doms = setup
    dom = doms["A"]

    def kernel():
        out = 0
        for lo in range(0, 60000, 1000):
            out = mgr.or_(out, dom.range_bdd(lo, lo + 500))
        return out

    benchmark(kernel)


def test_offset_relation(setup, benchmark):
    mgr, doms = setup
    a, b = doms["A"], doms["B"]

    def kernel():
        out = 0
        for delta in range(0, 2000, 100):
            out = mgr.or_(out, offset_relation(a, b, delta, 1, 30000))
        return out

    benchmark(kernel)


def test_equality_relation(setup, benchmark):
    mgr, doms = setup
    benchmark(lambda: equality_relation(doms["A"], doms["C"]))


def test_tuple_loading(setup, benchmark):
    mgr, doms = setup
    a, b = doms["A"], doms["B"]

    def kernel():
        node = 0
        for i in range(300):
            node = mgr.or_(node, mgr.and_(a.eq_const(i * 7 % 9999),
                                          b.eq_const(i * 13 % 9999)))
        return node

    benchmark(kernel)
