"""Figure 6: type refinement precision under the six analysis variants —
context-insensitive without/with type filtering, projected
context-sensitive pointer/type results, and fully context-sensitive
pointer/type results."""

from conftest import write_result

from repro.bench.harness import fig6_table


def test_fig6_table(corpus_runs, benchmark):
    text, rows = benchmark.pedantic(
        lambda: fig6_table(corpus_runs), rounds=1, iterations=1
    )
    write_result("fig6.txt", text)
    for row in rows:
        ci_nf = row["ci_nofilter"]
        ci_f = row["ci_filter"]
        proj_p = row["cs_pointer_proj"]
        full_p = row["cs_pointer_full"]
        full_t = row["cs_type_full"]
        # "Including the type filtering makes the algorithm strictly more
        # precise.  Likewise, the context-sensitive pointer analysis is
        # strictly more precise than both the context-insensitive pointer
        # analysis and the context-sensitive type analysis."
        assert ci_nf[0] >= ci_f[0]          # multi% drops with filtering
        assert ci_f[0] >= proj_p[0]         # ... and with context sensitivity
        assert proj_p[0] >= full_p[0]       # projection loses precision
        assert full_t[0] >= full_p[0]       # pointers beat types
        # "As the precision increases ... the percentage of refinable
        # variables increases."
        assert full_p[1] >= ci_f[1]
        # "The percentage of multi-typed variables is never greater than
        # 1% for the pointer analysis and 2% for the type analysis."
        assert full_p[0] <= 1.0
        assert full_t[0] <= 3.0
