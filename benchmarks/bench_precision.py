"""Points-to precision metrics across the analysis ladder.

Complements Figure 6's client-level precision with the literature's
direct metrics: average points-to set size, max set size, and the
singleton ratio, for CI-no-filter, CI-filtered, 1-CFA, and full cloning.
"""

from conftest import write_result

from repro.analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis
from repro.analysis.compare import compare_precision, precision_stats
from repro.bench.corpus import corpus_entry
from repro.ir import extract_facts

ENTRY = "jetty"


def test_precision_ladder(benchmark):
    facts = extract_facts(corpus_entry(ENTRY).build())

    def run_ladder():
        nofilter = ContextInsensitiveAnalysis(
            facts=facts, type_filtering=False, discover_call_graph=True
        ).run()
        filtered = ContextInsensitiveAnalysis(facts=facts).run()
        graph = filtered.discovered_call_graph
        cfa = ContextSensitiveAnalysis(
            facts=facts, call_graph=graph, context_policy="1cfa"
        ).run()
        full = ContextSensitiveAnalysis(facts=facts, call_graph=graph).run()
        return nofilter, filtered, cfa, full

    nofilter, filtered, cfa, full = benchmark.pedantic(
        run_ladder, rounds=1, iterations=1
    )

    rows = [
        ("CI, no filter", precision_stats(nofilter)),
        ("CI, filtered", precision_stats(filtered)),
        ("1-CFA", precision_stats(cfa)),
        ("full cloning", precision_stats(full)),
    ]
    lines = [
        f"Points-to precision ladder on corpus entry '{ENTRY}':",
        f"{'analysis':<16}{'avg |pts|':>10}{'max':>6}{'singleton %':>13}",
    ]
    for label, stats in rows:
        lines.append(
            f"{label:<16}{stats.average_set_size:>10.2f}"
            f"{stats.max_set_size:>6}{100 * stats.singleton_ratio:>12.1f}%"
        )
    write_result("precision.txt", "\n".join(lines))

    # Monotone ladder on average set size.
    averages = [stats.average_set_size for _, stats in rows]
    assert averages[0] >= averages[1] >= averages[2] >= averages[3]
    # And on singleton ratio (reversed).
    singletons = [stats.singleton_ratio for _, stats in rows]
    assert singletons[0] <= singletons[1] <= singletons[3]

    # Pairwise diffs carry no soundness regressions.
    diff = compare_precision(filtered, full)
    assert diff.regressed == []
    assert diff.improved
