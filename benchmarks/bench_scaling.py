"""Section 6.2's scaling observation: "the analysis time of the
context-sensitive algorithm scales approximately with O(lg^2 n) where n is
the number of paths in the call graph"."""

import math

from conftest import write_result

from repro.bench.harness import scaling_table


def test_scaling_polylog_in_paths(benchmark):
    text, rows = benchmark.pedantic(
        lambda: scaling_table(layer_counts=(8, 14, 20, 26, 32, 38, 44)),
        rounds=1,
        iterations=1,
    )
    write_result("scaling.txt", text)
    first, last = rows[0], rows[-1]
    path_blowup = last["paths"] / max(first["paths"], 1)
    time_blowup = last["seconds"] / max(first["seconds"], 1e-9)
    # Paths explode by many orders of magnitude; time must stay polylog —
    # allow a generous constant, but rule out anything near-linear.
    assert path_blowup > 10 ** 6
    assert time_blowup < 1000
    assert time_blowup < path_blowup ** 0.01 * 100
    # And the normalized cost s/lg^2(n) should stay within one order of
    # magnitude across the sweep once contexts dominate.
    tail = [r["seconds_per_lg2"] for r in rows[2:]]
    assert max(tail) / max(min(tail), 1e-9) < 12
