"""Figure 5: thread escape analysis — captured/escaped objects and
unneeded/needed synchronization operations per corpus entry."""

from conftest import write_result

from repro.bench.corpus import corpus_entry
from repro.bench.harness import fig5_table


def test_fig5_table(corpus_runs, benchmark):
    text, rows = benchmark.pedantic(
        lambda: fig5_table(corpus_runs), rounds=1, iterations=1
    )
    write_result("fig5.txt", text)
    by_name = {r["name"]: r for r in rows}
    for row in rows:
        entry = corpus_entry(row["name"])
        if entry.params.threads == 0:
            # "The single-threaded benchmarks have only one escaped
            # object: the global object."
            assert row["escaped"] == 1
            assert row["sync_needed"] == 0
        else:
            assert row["escaped"] > 1
            assert row["sync_needed"] >= 1
        # The analysis always captures a healthy share of allocations.
        assert row["captured"] > row["escaped"]
