"""Ablations of the design choices DESIGN.md calls out:

1. semi-naive (incrementalized) vs naive evaluation (Section 2.4.1),
2. variable order: context bits deepest vs first (Section 2.4.2),
3. type filtering cost/benefit (Section 2.3),
4. the Datalog plan-optimizer pass pipeline on vs off,
5. contiguous vs randomized context numbering (Section 4.1).
"""

from conftest import write_result

from repro.bench.harness import ablation_table


def test_ablations(benchmark):
    text, rows = benchmark.pedantic(
        lambda: ablation_table("jboss"), rounds=1, iterations=1
    )
    write_result("ablation.txt", text)
    by_name = {r["ablation"]: r for r in rows}

    seminaive = by_name["seminaive"]
    # Incrementalization reduces work; on BDD workloads the win shows up
    # primarily in rule applications touching non-empty deltas.
    assert seminaive["fast_s"] <= seminaive["naive_s"] * 1.5

    order = by_name["order"]
    # Putting the exploding context bits closest to the terminals is what
    # lets similar contexts share structure.
    assert order["good_nodes"] <= order["bad_nodes"]
    assert order["good_s"] <= order["bad_s"] * 1.2

    typefilter = by_name["typefilter"]
    # "Along with being more accurate, the points-to sets are much
    # smaller in the type-filtered version."
    assert typefilter["on_tuples"] <= typefilter["off_tuples"]

    planopt = by_name["planopt"]
    # The optimizer exists to execute fewer rename (replace) operations;
    # it must never execute more total ops than the greedy plans.
    assert planopt["on_replace"] <= planopt["off_replace"]
    assert planopt["on_ops"] <= planopt["off_ops"]

    numbering = by_name["numbering"]
    # "It is important to find a context numbering scheme that allows the
    # BDDs to share commonalities across contexts."
    assert numbering["contiguous_nodes"] <= numbering["shuffled_nodes"]
