"""Figure 3: benchmark vitals — classes, methods, statements, variables,
allocation sites, and the number of context-sensitive (reduced call)
paths per corpus entry.

The timed kernel is the part unique to this figure: Algorithm 4's exact
path counting over the discovered call graph.
"""

from conftest import write_result

from repro.analysis import ContextInsensitiveAnalysis
from repro.bench.corpus import corpus_entry
from repro.bench.harness import fig3_table
from repro.callgraph import number_call_graph
from repro.ir import extract_facts


def test_fig3_table(corpus_runs, benchmark):
    text, rows = benchmark.pedantic(
        lambda: fig3_table(corpus_runs), rounds=1, iterations=1
    )
    write_result("fig3.txt", text)
    # Shape assertions: sizes grow along the corpus, and the paths column
    # is wildly super-linear in the method count (the paper's point).
    assert rows[0]["name"] == "freetts"
    assert rows[-1]["methods"] >= rows[0]["methods"]
    largest = max(rows, key=lambda r: r["paths"])
    assert largest["paths"] > 10 ** 6
    assert largest["paths"] > 10 ** 3 * largest["methods"]


def test_path_numbering_speed(benchmark):
    """Algorithm 4 itself is fast even when counting 10^13+ paths: the
    counts are big-integer arithmetic over the condensation."""
    facts = extract_facts(corpus_entry("jbidwatch").build())
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    graph = ci.discovered_call_graph
    entry = facts.method_id("Main.main")

    numbering = benchmark(lambda: number_call_graph(graph, entries=[entry]))
    assert numbering.max_paths() > 10 ** 12
