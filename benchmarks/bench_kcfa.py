"""Baseline comparison: full call-path cloning (Algorithm 4) vs 1-CFA.

The paper positions its reduced-call-path contexts against Shivers' k-CFA
("one remembers only the last k call sites").  This bench quantifies the
trade on a corpus entry: 1-CFA has exponentially fewer contexts but loses
precision whenever a wrapper hides the decisive call site.
"""

from conftest import write_result

from repro.analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis
from repro.bench.corpus import corpus_entry
from repro.ir import extract_facts

ENTRY = "jboss"


def test_full_cloning_vs_1cfa(benchmark):
    facts = extract_facts(corpus_entry(ENTRY).build())
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    graph = ci.discovered_call_graph

    def run_both():
        full = ContextSensitiveAnalysis(facts=facts, call_graph=graph).run()
        cfa = ContextSensitiveAnalysis(
            facts=facts, call_graph=graph, context_policy="1cfa"
        ).run()
        return full, cfa

    full, cfa = benchmark.pedantic(run_both, rounds=1, iterations=1)

    full_vp = set(full.vPC.project("variable", "heap").tuples())
    cfa_vp = set(cfa.vPC.project("variable", "heap").tuples())
    ci_vp = set(ci.relation("vP").tuples())

    # Soundness sandwich: full ⊆ 1-CFA ⊆ CI.
    assert full_vp <= cfa_vp <= ci_vp
    # The corpus routes data through shared helpers, so 1-CFA must lose
    # real precision against full cloning.
    assert len(cfa_vp) > len(full_vp)
    # Context economy: 1-CFA uses exponentially fewer contexts.
    assert cfa.max_paths() < full.max_paths()

    text = "\n".join(
        [
            f"k-CFA baseline comparison on corpus entry '{ENTRY}':",
            f"  context-insensitive:  {len(ci_vp)} (var, heap) pairs",
            f"  1-CFA:                {len(cfa_vp)} pairs, "
            f"{cfa.max_paths()} max contexts, {cfa.seconds:.2f}s",
            f"  full cloning (Alg 4): {len(full_vp)} pairs, "
            f"{full.max_paths()} max contexts, {full.seconds:.2f}s",
        ]
    )
    write_result("kcfa.txt", text)
