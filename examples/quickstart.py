"""Quickstart: analyze a small program context-insensitively and
context-sensitively, and see exactly why cloning matters.

Run:  python examples/quickstart.py
"""

from repro import analyze
from repro.ir.frontend import parse_program

SOURCE = """
class Box {
    field item : Object;
}

class Helper {
    static method put(b : Box, o : Object) {
        b.item = o;
    }
    static method get(b : Box) returns Object {
        r = b.item;
        return r;
    }
}

class Main {
    static method main() {
        apples = new Box;
        oranges = new Box;
        apple = new Object;
        orange = new Object;
        Helper.put(apples, apple);
        Helper.put(oranges, orange);
        x = Helper.get(apples);
        y = Helper.get(oranges);
    }
}
"""


def main() -> None:
    program = parse_program(SOURCE, include_library=False)

    print("== Context-insensitive (Algorithm 3: on-the-fly call graph) ==")
    ci = analyze(program)
    for var in ("x", "y"):
        print(f"  {var} may point to:")
        for heap in sorted(ci.points_to("Main.main", var)):
            print(f"      {heap}")
    print("  -> both calls to Helper.get are merged: x and y each see")
    print("     BOTH objects, although the program never mixes them.\n")

    print("== Context-sensitive (Algorithms 4 + 5: cloning + BDDs) ==")
    cs = analyze(program, context_sensitive=True)
    for var in ("x", "y"):
        print(f"  {var} may point to:")
        for heap in sorted(cs.points_to("Main.main", var)):
            print(f"      {heap}")
    print(f"  Helper.get was cloned into {cs.num_contexts('Helper.get')} contexts;")
    print(f"  the call graph has {cs.max_paths()} reduced call paths.")
    print("  -> each call site sees exactly the object it stored.")

    print("\n== Per-context detail ==")
    for context in (1, 2):
        pts = cs.points_to_in_context("Helper.get", "r", context)
        print(f"  clone {context} of Helper.get: r -> {sorted(pts)}")

    print("\nSolver statistics:", cs.solver.stats)


if __name__ == "__main__":
    main()
