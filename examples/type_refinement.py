"""Sections 5.3 / 6.3: type refinement — how much tighter could the
declared types be, under increasingly precise analyses?

Reproduces one row of Figure 6 on a small program: context-insensitive
(with/without type filtering), projected context-sensitive, and fully
context-sensitive variants.

Run:  python examples/type_refinement.py
"""

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)
from repro.analysis.queries import refinement_stats
from repro.ir import extract_facts
from repro.ir.frontend import parse_program

SOURCE = """
class Shape { }
class Circle extends Shape { }
class Square extends Shape { }

class Pipeline {
    static method relay(s : Shape) returns Shape {
        return s;
    }
}

class Main {
    static method main() {
        var a : Shape;
        var b : Shape;
        var onlyCircles : Shape;
        c = new Circle;
        s = new Square;
        a = Pipeline.relay(c);
        b = Pipeline.relay(s);
        onlyCircles = new Circle;
    }
}
"""


def main() -> None:
    program = parse_program(SOURCE, include_library=False)
    facts = extract_facts(program)

    nofilter = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=True,
        query_fragments=["query_refinement_ci"],
    ).run()
    filtered = ContextInsensitiveAnalysis(
        facts=facts, query_fragments=["query_refinement_ci"]
    ).run()
    cs = ContextSensitiveAnalysis(
        facts=facts,
        call_graph=filtered.discovered_call_graph,
        query_fragments=["query_refinement_cs_pointer"],
    ).run()

    rows = [
        ("context-insensitive, no filter", refinement_stats(nofilter, "ci")),
        ("context-insensitive, filtered", refinement_stats(filtered, "ci")),
        ("context-sensitive, projected", refinement_stats(cs, "projected")),
        ("context-sensitive, full", refinement_stats(cs, "full")),
    ]
    print(f"{'variant':<34}{'multi-typed %':>14}{'refinable %':>13}")
    print("-" * 61)
    for label, stats in rows:
        print(f"{label:<34}{stats.multi:>14.1f}{stats.refinable:>13.1f}")

    print()
    print("Under the context-insensitive analysis, `a` and `b` both look")
    print("like {Circle, Square} because Pipeline.relay merges its callers;")
    print("the cloned analysis keeps them single-typed, so both variables")
    print("become refinable to their concrete classes.")

    # Show the concrete evidence.
    for var in ("a", "b"):
        ci_types = {
            facts.maps["T"][t]
            for v, t in filtered.solver.relation("varExactTypes").tuples()
            if v == facts.var_id("Main.main", var)
        }
        cs_types = {
            facts.maps["T"][t]
            for v, t in cs.solver.relation("varExactTypesP").tuples()
            if v == facts.var_id("Main.main", var)
        }
        print(f"  {var}: CI sees {sorted(ci_types)}, CS sees {sorted(cs_types)}")


if __name__ == "__main__":
    main()
