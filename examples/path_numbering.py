"""The paper's Figure 1 / Example 1-2 worked example, reproduced.

A six-method call graph where M2 and M3 form a strongly connected
component.  Algorithm 4 collapses the SCC, walks the reduced graph in
topological order, and numbers every reduced call path with a contiguous
range — M6 ends up with six clones, matching Figure 2's table.

Run:  python examples/path_numbering.py
"""

from repro.bdd import BDD, Domain, bits_for
from repro.callgraph import CallGraph, number_call_graph

EDGES = [
    # (name, caller, callee) as drawn in Figure 1.
    ("a", 1, 2),
    ("b", 1, 3),
    ("c", 2, 3),  # inside the SCC {M2, M3}
    ("d", 3, 2),  # inside the SCC {M2, M3}
    ("e", 2, 4),
    ("f", 3, 4),
    ("g", 3, 5),
    ("h", 4, 6),
    ("i", 5, 6),
]


def main() -> None:
    graph = CallGraph()
    for site, (name, caller, callee) in enumerate(EDGES):
        graph.add_edge(site, caller, callee)

    numbering = number_call_graph(graph, entries=[1])

    print("Context counts (clones per method):")
    for m in range(1, 7):
        print(f"  M{m}: {numbering.num_contexts(m)}")
    print(f"\nReduced call paths reaching M6: {numbering.num_contexts(6)}")
    print("(the paper's Figure 2 lists the same six reduced paths)\n")

    print("Numbered invocation edges (caller range -> callee range):")
    name_of = {site: name for site, (name, _, _) in enumerate(EDGES)}
    for rng in numbering.ranges:
        src = f"[{rng.lo}..{rng.hi}]"
        if rng.collapse_to is not None:
            dst = f"[{rng.collapse_to}] (merged overflow)"
        else:
            dst = f"[{rng.lo + rng.delta}..{rng.hi + rng.delta}]"
        print(
            f"  edge {name_of[rng.site]}: M{rng.caller}{src} -> M{rng.callee}{dst}"
        )

    # Build the IEC relation symbolically, exactly as Algorithm 5 uses it.
    c_size = numbering.context_domain_size()
    c_bits = bits_for(c_size)
    mgr = BDD(num_vars=2 * c_bits + 8)
    c0 = Domain(mgr, "C0", c_size, list(range(0, 2 * c_bits, 2)))
    c1 = Domain(mgr, "C1", c_size, list(range(1, 2 * c_bits, 2)))
    i0 = Domain(mgr, "I0", 16, list(range(2 * c_bits, 2 * c_bits + 4)))
    m0 = Domain(mgr, "M0", 16, list(range(2 * c_bits + 4, 2 * c_bits + 8)))
    node = numbering.build_iec(mgr, c0, i0, c1, m0)
    count = mgr.sat_count(
        node, list(c0.levels) + list(i0.levels) + list(c1.levels) + list(m0.levels)
    )
    print(f"\nIEC as a BDD: {count} context-sensitive invocation-edge tuples")
    print(f"represented in {mgr.node_count()} BDD nodes.")


if __name__ == "__main__":
    main()
