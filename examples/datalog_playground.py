"""Using the Datalog engine directly, as a deductive database.

bddbddb is general-purpose: "pointer analysis, and many other queries and
algorithms, can be described succinctly and declaratively using Datalog."
This example solves a program-independent problem — reachability and
dominance-ish queries over a build dependency graph — then uses the
provenance facility to explain an answer, and checkpoints the result.

Run:  python examples/datalog_playground.py
"""

import tempfile
from pathlib import Path

from repro.datalog import Solver, explain, format_derivation, parse_program
from repro.datalog.io import save_solver_outputs

PROGRAM = """
# Build-system dependency analysis.
.domains
T 64    # build targets

.relations
dep       (target : T0, needs : T1) input
changed   (target : T) input
needs     (target : T0, dependency : T1) output
dirty     (target : T) output
clean     (target : T) output
root      (target : T) output

.rules
# Transitive dependencies.
needs(t, d)  :- dep(t, d).
needs(t, d2) :- needs(t, d1), dep(d1, d2).

# A target is dirty when anything it (transitively) needs changed.
dirty(t) :- changed(t).
dirty(t) :- needs(t, d), changed(d).

# Clean targets, and roots nothing depends on.
clean(t) :- dep(t, _), !dirty(t).
root(t)  :- dep(t, _), !needs(_, t).
"""

TARGETS = [
    "app", "gui", "core", "net", "json", "log", "tests",
]
DEPS = [
    ("app", "gui"), ("app", "core"),
    ("gui", "core"), ("gui", "log"),
    ("core", "json"), ("core", "log"),
    ("net", "json"), ("tests", "app"), ("tests", "net"),
]
CHANGED = ["log"]


def main() -> None:
    ids = {name: i for i, name in enumerate(TARGETS)}
    solver = Solver(parse_program(PROGRAM), name_maps={"T": TARGETS})
    solver.add_tuples("dep", [(ids[a], ids[b]) for a, b in DEPS])
    solver.add_tuples("changed", [(ids[t],) for t in CHANGED])
    stats = solver.solve()
    print(f"solved in {stats.seconds * 1000:.1f} ms, "
          f"{stats.rule_applications} rule applications\n")

    print("dirty targets (must rebuild):")
    for (name,) in sorted(solver.named_tuples("dirty")):
        print(f"  {name}")
    print("clean targets:")
    for (name,) in sorted(solver.named_tuples("clean")):
        print(f"  {name}")

    print("\nWhy is 'app' dirty?  (log changed; app -> gui -> log)")
    derivation = explain(solver, "dirty", (ids["app"],))
    print(format_derivation(derivation, solver))

    print("\nMost expensive rules:")
    for profile in solver.rule_profile()[:3]:
        print(
            f"  {profile.seconds * 1000:6.2f} ms  "
            f"x{profile.applications:<3} {profile.rule}"
        )

    with tempfile.TemporaryDirectory() as tmp:
        counts = save_solver_outputs(solver, tmp)
        files = sorted(p.name for p in Path(tmp).iterdir())
        print(f"\ncheckpointed {sum(counts.values())} tuples: {files}")


if __name__ == "__main__":
    main()
