"""A combined audit of a small 'web application': every analysis and
query of the paper, on one program.

The program has the shape that motivated the paper: request handlers
share library code (containers, string utilities), spawn worker threads,
cache objects in statics, downcast what they fetch, and misuse the JCE.

Run:  python examples/webapp_audit.py
"""

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ThreadEscapeAnalysis,
)
from repro.analysis.queries import (
    cast_safety,
    devirtualization,
    refinement_stats,
    security_vulnerability_query,
)
from repro.datalog import explain, format_derivation
from repro.ir import extract_facts
from repro.ir.frontend import parse_program

SOURCE = """
interface Handler {
    method handle(req : Request) returns Response;
}

class Request {
    field body : Object;
    field session : Session;
}

class Response {
    field payload : Object;
}

class Session {
    field user : Object;
}

class LoginHandler implements Handler {
    method handle(req : Request) returns Response {
        resp = new Response;
        // BAD: password handled as a String, then laundered into the JCE.
        password = new String;
        chars = password.toCharArray();
        spec = new PBEKeySpec;
        spec.init(chars);
        s = req.session;
        u = new Object;
        s.user = u;
        resp.payload = u;
        return resp;
    }
}

class StaticHandler implements Handler {
    method handle(req : Request) returns Response {
        resp = new Response;
        file = new Object;
        resp.payload = file;
        return resp;
    }
}

class Router {
    field routes : ArrayList;

    method register(h : Handler) {
        list = this.routes;
        list.add(h);
    }

    method dispatch(req : Request) returns Response {
        list = this.routes;
        var h : Handler;
        got = list.get();
        h = (Handler) got;
        r = h.handle(req);
        return r;
    }
}

class AccessLog extends Thread {
    method run() {
        entry = new Object;
        last = Server.lastResponse;
        sync last;
    }
}

class Server {
    static field lastResponse : Object;

    static method clinit() {
        router = new Router;
        list = new ArrayList;
        router.routes = list;
    }

    static method main() {
        router = new Router;
        list = new ArrayList;
        router.routes = list;
        login = new LoginHandler;
        files = new StaticHandler;
        router.register(login);
        router.register(files);

        req1 = new Request;
        sess = new Session;
        req1.session = sess;
        r1 = router.dispatch(req1);

        payload = r1.payload;
        Server.lastResponse = payload;
        sync payload;

        logger = new AccessLog;
        logger.start();
    }
}
"""


def main() -> None:
    program = parse_program(SOURCE, main="Server")
    facts = extract_facts(program)

    print("=" * 68)
    print("1. Call-graph discovery + devirtualization")
    print("=" * 68)
    ci = ContextInsensitiveAnalysis(
        facts=facts, query_fragments=["query_devirt", "query_casts"]
    ).run()
    devirt = devirtualization(ci)
    print(f"  monomorphic call sites: {len(devirt.mono)}")
    print(f"  polymorphic call sites: {len(devirt.poly)}")
    for site in devirt.poly:
        print(f"      still polymorphic: {site}")

    print()
    print("=" * 68)
    print("2. Cast safety")
    print("=" * 68)
    casts = cast_safety(ci)
    for var in casts.safe:
        print(f"  safe:     {var}")
    for var in casts.failing:
        print(f"  may fail: {var}")

    print()
    print("=" * 68)
    print("3. Context-sensitive points-to + security audit")
    print("=" * 68)
    cs = ContextSensitiveAnalysis(
        facts=facts,
        call_graph=ci.discovered_call_graph,
        query_fragments=["query_refinement_cs_pointer"],
    ).run()
    print(f"  reduced call paths: {cs.max_paths()}")
    vuln = security_vulnerability_query(
        cs, list(ci.solver.relation("IE").tuples())
    )
    for context, site in vuln.vulnerable_sites:
        print(f"  JCE VULNERABILITY (context {context}): {site}")

    stats = refinement_stats(cs, "full")
    print(
        f"  refinement: {stats.multi:.1f}% multi-typed, "
        f"{stats.refinable:.1f}% refinable"
    )

    print()
    print("=" * 68)
    print("4. Thread escape analysis")
    print("=" * 68)
    esc = ThreadEscapeAnalysis(
        facts=facts, call_graph=ci.discovered_call_graph
    ).run()
    summary = esc.summary()
    print(f"  {summary['captured']} captured, {summary['escaped']} escaped")
    print(
        f"  syncs: {summary['sync_unneeded']} removable, "
        f"{summary['sync_needed']} needed"
    )

    print()
    print("=" * 68)
    print("5. Provenance: why does the logger see the login payload?")
    print("=" * 68)
    last = facts.var_id("AccessLog.run", "last")
    user_obj = facts.id_of("H", "LoginHandler.handle@6:new Object")
    if (last, user_obj) in set(ci.solver.relation("vP").tuples()):
        derivation = explain(ci.solver, "vP", (last, user_obj), max_depth=3)
        print(format_derivation(derivation, ci.solver))
    else:
        print("  (flow not present)")


if __name__ == "__main__":
    main()
