"""Section 5.6: thread escape analysis — seven Datalog rules replace
"thousands of lines" of hand-written escape analysis.

The analysis decides which objects may be *accessed* by a thread other
than their creator (a stronger notion than reachability) and which
synchronization operations are actually needed.

Run:  python examples/escape_analysis.py
"""

from repro.analysis import ThreadEscapeAnalysis
from repro.ir.frontend import parse_program

SOURCE = """
class Job {
    field input : Object;
    field result : Object;
}

class Queue {
    field slot : Object;
}

class Producer extends Thread {
    method run() {
        // Escapes: handed to the consumer through the shared queue.
        job = new Job;
        q = Main.queue;
        q.slot = job;
        sync q;

        // Captured: pure scratch space, never published.
        scratch = new Object;
        sync scratch;
    }
}

class Consumer extends Thread {
    method run() {
        q = Main.queue;
        sync q;
        job = q.slot;
        // Captured: the result object stays in this thread...
        tmp = new Object;
        sync tmp;
    }
}

class Main {
    static field queue : Queue;

    static method main() {
        q = new Queue;
        Main.queue = q;
        p = new Producer;
        c = new Consumer;
        p.start();
        c.start();
    }
}
"""


def main() -> None:
    program = parse_program(SOURCE, include_library=False)
    result = ThreadEscapeAnalysis(program=program).run()
    facts = result.facts

    print("Thread contexts:")
    print("  0 = shared/global, 1 = main thread")
    for heap, (c1, c2) in sorted(result.thread_contexts.items()):
        print(f"  {c1},{c2} = instances of {facts.maps['H'][heap]}")

    print("\nEscaped objects (accessed by a thread other than the creator):")
    for h in sorted(result.escaped_heaps()):
        print(f"  {facts.maps['H'][h]}")

    print("\nCaptured objects (may be allocated on a thread-local heap):")
    for h in sorted(result.captured_heaps()):
        print(f"  {facts.maps['H'][h]}")

    print("\nSynchronization operations:")
    needed = result.needed_sync_vars()
    for (v,) in sorted(facts.relations["sync"]):
        status = "NEEDED " if v in needed else "removable"
        print(f"  [{status}] sync on {facts.maps['V'][v]}")

    summary = result.summary()
    print(
        f"\nSummary: {summary['captured']} captured, "
        f"{summary['escaped']} escaped; "
        f"{summary['sync_unneeded']} of "
        f"{summary['sync_unneeded'] + summary['sync_needed']} syncs removable."
    )


if __name__ == "__main__":
    main()
