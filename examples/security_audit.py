"""Section 5.2: finding a JCE misuse with a points-to query.

Secret keys must not live in immutable Strings (they cannot be cleared
from memory).  ``PBEKeySpec.init`` only accepts char/byte arrays — but a
programmer can launder a String through ``toCharArray()``.  The audit
flags every ``init`` call whose key derives from a String, even through
fields and containers.

Run:  python examples/security_audit.py
"""

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)
from repro.analysis.queries import security_vulnerability_query
from repro.ir import extract_facts
from repro.ir.frontend import parse_program

VULNERABLE = """
class Vault {
    field stash : Object;
}

class Main {
    static method main() {
        // BAD: the secret starts its life inside a String.
        password = new String;
        chars = password.toCharArray();

        // ... and wanders through a field before reaching the sink.
        vault = new Vault;
        vault.stash = chars;
        key = vault.stash;

        spec = new PBEKeySpec;
        spec.init(key);
    }
}
"""

SAFE = """
class Main {
    static method main() {
        // GOOD: the key material never touches a String.
        key = new CharArray;
        spec = new PBEKeySpec;
        spec.init(key);
        spec.clearPassword();
    }
}
"""


def audit(label: str, source: str) -> None:
    program = parse_program(source)  # links the JCE/String library model
    facts = extract_facts(program)
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    cs = ContextSensitiveAnalysis(
        facts=facts, call_graph=ci.discovered_call_graph
    ).run()
    ie = list(ci.solver.relation("IE").tuples())
    report = security_vulnerability_query(cs, ie)
    print(f"== {label} ==")
    if report:
        for context, site in report.vulnerable_sites:
            print(f"  VULNERABLE (context {context}): {site}")
        print("  -> the key may be recoverable from String memory.")
    else:
        print("  clean: no String-derived key reaches PBEKeySpec.init")
    print()


def main() -> None:
    audit("vulnerable program (String -> field -> init)", VULNERABLE)
    audit("safe program (CharArray key)", SAFE)


if __name__ == "__main__":
    main()
