"""Section 5.1: debugging a memory leak with points-to queries.

A dynamic tool has told the programmer that objects allocated at one site
keep accumulating.  Two Datalog-style queries over the context-sensitive
result answer: *who may hold pointers to the leaked objects* and *which
store instructions (under which contexts) created those pointers*.

Run:  python examples/memory_leak.py
"""

from repro.analysis import ContextSensitiveAnalysis
from repro.analysis.queries import memory_leak_query
from repro.ir.frontend import parse_program

SOURCE = """
class Cache {
    field slot : Object;
    method remember(o : Object) {
        this.slot = o;
    }
}

class Session {
    field data : Object;
}

class Main {
    static field registry : Object;

    static method handle(c : Cache) {
        // Every request allocates a session and caches it -- the leak.
        s = new Session;
        payload = new Object;
        s.data = payload;
        c.remember(s);
    }

    static method main() {
        cache = new Cache;
        while (*) {
            Main.handle(cache);
        }
        Main.registry = cache;
    }
}
"""


def main() -> None:
    program = parse_program(SOURCE, include_library=False)
    result = ContextSensitiveAnalysis(program=program).run()

    # The "leaked" allocation: the Session created in handle().
    leak_site = next(
        name for name in result.facts.maps["H"] if "new Session" in name
    )
    print(f"Investigating leaked allocation site:\n    {leak_site}\n")

    report = memory_leak_query(result, leak_site)

    print("whoPointsTo — heap objects and fields that may hold it:")
    for holder, field in report.holders:
        print(f"    {holder} .{field}")

    print("\nwhoDunnit — store instructions (context, target, field, source):")
    for context, v1, field, v2 in report.writers:
        print(f"    context {context}: {v1}.{field} = {v2}")

    print(
        "\nThe cache's `remember` is the culprit: it is the only store"
        "\nputting Session objects somewhere long-lived."
    )


if __name__ == "__main__":
    main()
