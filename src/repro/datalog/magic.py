"""Magic-sets rewriting: goal-directed variants of a Datalog program.

Given a query atom with a bound/free *adornment* (``"bf"`` = first
attribute bound to query constants, second free), the classical
magic-sets transformation derives a program whose fixpoint contains
exactly the goal-relevant portion of the original relations:

* for every reachable ``(predicate, adornment)`` pair, an **adorned
  relation** ``pred$bf`` (full arity — the adornment restricts which
  tuples get derived, not the schema), and
* a **magic relation** ``m$pred$bf`` over the bound attributes only,
  holding the set of "asked-about" bindings, seeded from the query
  constants and grown by **magic rules** that propagate bindings
  sideways through rule bodies (textual left-to-right SIP).

Each original rule becomes an adorned variant guarded by the head's
magic relation; each IDB body atom both consumes its adorned version
and contributes a magic rule that seeds it from the atoms to its left.
The rewritten :class:`~repro.datalog.ast.ProgramAST` flows through the
ordinary compile path — plan IR, pass pipeline, ``validate_plan`` — so
fuse/CSE/hoisting apply to demand programs unchanged.

Stratified negation is handled soundly by *not* adorning through
negation: a negated IDB atom keeps its original predicate, whose full
(unadorned) rules — and those of its transitive IDB dependencies — are
included verbatim.  Adorned predicates therefore never appear under
negation and the magic program is stratified whenever the source
program is (checked by running :func:`~repro.datalog.stratify.stratify`
on the result).

Adornment explosion is bounded: at most ``max_adornments`` bound
variants per predicate; further requests are *widened* onto an existing
variant whose bound set is a subset of the requested one (sound — the
adorned relation keeps full arity, so a coarser magic set derives a
superset), falling back to the fully-free original when no subset
variant exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .ast import (
    Atom,
    Comparison,
    DatalogError,
    ProgramAST,
    RelationDecl,
    Rule,
    Term,
    Variable,
)
from .stratify import stratify

__all__ = ["GoalInfo", "MagicProgram", "adorned_name", "magic_name", "magic_rewrite"]


def adorned_name(predicate: str, adornment: str) -> str:
    return f"{predicate}${adornment}"


def magic_name(predicate: str, adornment: str) -> str:
    return f"m${predicate}${adornment}"


def _bound_positions(adornment: str) -> Tuple[int, ...]:
    return tuple(i for i, ch in enumerate(adornment) if ch == "b")


@dataclass(frozen=True)
class GoalInfo:
    """How to seed and read one rewritten goal.

    ``answer`` is the relation holding the goal's tuples (full arity).
    ``magic`` is the seedable input relation over ``bound`` attribute
    positions — ``None`` when the goal widened to the fully-free
    original (then the answer is simply computed in full).
    """

    predicate: str
    adornment: str
    answer: str
    magic: Optional[str]
    bound: Tuple[int, ...]


@dataclass
class MagicProgram:
    """Result of :func:`magic_rewrite`."""

    program: ProgramAST
    goals: Dict[Tuple[str, str], GoalInfo] = field(default_factory=dict)

    def goal(self, predicate: str, adornment: str) -> GoalInfo:
        return self.goals[(predicate, adornment)]


class _Rewriter:
    def __init__(self, program: ProgramAST, max_adornments: int) -> None:
        self.src = program
        self.max_adornments = max_adornments
        self.rules_of: Dict[str, List[Rule]] = {}
        for rule in program.rules:
            self.rules_of.setdefault(rule.head.relation, []).append(rule)
        self.idb: Set[str] = set(self.rules_of)
        self.out_rules: List[Rule] = []
        self.out_decls: Dict[str, RelationDecl] = {}
        self.seen_rules: Set[str] = set()
        # predicate -> bound adornments already materialized (not all-free)
        self.adornments: Dict[str, List[str]] = {}
        self.done: Set[Tuple[str, str]] = set()
        self.queue: List[Tuple[str, str]] = []
        # EDB declarations are carried over verbatim.
        for name, decl in program.relations.items():
            if name not in self.idb:
                self.out_decls[name] = decl

    # ---------------------------------------------------------- requests

    def request(self, predicate: str, adornment: str) -> GoalInfo:
        """Ensure a variant of ``predicate`` answering ``adornment``
        exists (enqueueing its rewrite) and describe it."""
        decl = self.src.relations.get(predicate)
        if decl is None:
            raise DatalogError(f"magic rewrite: unknown relation {predicate}")
        if len(adornment) != decl.arity or any(c not in "bf" for c in adornment):
            raise DatalogError(
                f"magic rewrite: bad adornment {adornment!r} for "
                f"{predicate}/{decl.arity}"
            )
        if predicate not in self.idb:
            # EDB relations are already fully available.
            return GoalInfo(predicate, adornment, predicate, None, ())
        all_free = "f" * decl.arity
        if adornment == all_free:
            return self._request_variant(predicate, all_free)
        existing = self.adornments.setdefault(predicate, [])
        if adornment not in existing and len(existing) >= self.max_adornments:
            # Widen onto the largest materialized subset-bound variant.
            want = set(_bound_positions(adornment))
            best: Optional[str] = None
            for cand in existing:
                have = set(_bound_positions(cand))
                if have <= want and (
                    best is None or len(have) > len(_bound_positions(best))
                ):
                    best = cand
            if best is None:
                return self._request_variant(predicate, all_free)
            adornment = best
        return self._request_variant(predicate, adornment)

    def _request_variant(self, predicate: str, adornment: str) -> GoalInfo:
        decl = self.src.relations[predicate]
        all_free = adornment == "f" * decl.arity
        if all_free:
            info = GoalInfo(predicate, adornment, predicate, None, ())
        else:
            existing = self.adornments.setdefault(predicate, [])
            if adornment not in existing:
                existing.append(adornment)
            bound = _bound_positions(adornment)
            info = GoalInfo(
                predicate,
                adornment,
                adorned_name(predicate, adornment),
                magic_name(predicate, adornment),
                bound,
            )
            if info.answer not in self.out_decls:
                self.out_decls[info.answer] = RelationDecl(
                    name=info.answer,
                    attributes=decl.attributes,
                    is_output=True,
                )
                # Magic relations are inputs: the driver seeds them with
                # query constants; magic rules grow them recursively.
                self.out_decls[info.magic] = RelationDecl(
                    name=info.magic,
                    attributes=tuple(decl.attributes[i] for i in bound),
                    is_input=True,
                )
        if (predicate, adornment) not in self.done:
            self.done.add((predicate, adornment))
            self.queue.append((predicate, adornment))
        return info

    # ---------------------------------------------------------- rewrite

    def _emit(self, rule: Rule) -> None:
        key = str(rule)
        if key not in self.seen_rules:
            self.seen_rules.add(key)
            self.out_rules.append(rule)

    def _process_all_free(self, predicate: str) -> None:
        """Include ``predicate``'s original rules verbatim; everything it
        depends on (positively or under negation) is computed in full."""
        self.out_decls.setdefault(predicate, self.src.relations[predicate])
        for rule in self.rules_of.get(predicate, ()):  # inputs may lack rules
            for item in rule.body:
                if isinstance(item, Atom) and item.relation in self.idb:
                    arity = self.src.relations[item.relation].arity
                    self.request(item.relation, "f" * arity)
            self._emit(rule)

    def _process_adorned(self, predicate: str, adornment: str) -> None:
        decl = self.src.relations[predicate]
        bound = _bound_positions(adornment)
        head_name = adorned_name(predicate, adornment)
        m_name = magic_name(predicate, adornment)
        for rule in self.rules_of.get(predicate, ()):
            magic_guard = Atom(
                relation=m_name,
                terms=tuple(rule.head.terms[i] for i in bound),
            )
            bound_vars: Set[str] = {
                t.name
                for i, t in enumerate(rule.head.terms)
                if i in bound and isinstance(t, Variable)
            }
            prefix: List[Union[Atom, Comparison]] = [magic_guard]
            new_body: List[Union[Atom, Comparison]] = [magic_guard]
            for item in rule.body:
                if isinstance(item, Comparison):
                    new_body.append(item)
                    continue
                if item.negated:
                    # Never adorn through negation: the negated predicate
                    # is computed in full, exactly as in the source.
                    if item.relation in self.idb:
                        arity = self.src.relations[item.relation].arity
                        self.request(item.relation, "f" * arity)
                    new_body.append(item)
                    continue
                if item.relation in self.idb:
                    atom_ad = "".join(
                        "b"
                        if not isinstance(t, Variable) or t.name in bound_vars
                        else "f"
                        for t in item.terms
                    )
                    # DontCare terms are free, not bound constants.
                    atom_ad = "".join(
                        "f" if _is_dontcare(t) else ch
                        for t, ch in zip(item.terms, atom_ad)
                    )
                    info = self.request(item.relation, atom_ad)
                    used = Atom(relation=info.answer, terms=item.terms)
                    if info.magic is not None:
                        self._emit(
                            Rule(
                                head=Atom(
                                    relation=info.magic,
                                    terms=tuple(item.terms[i] for i in info.bound),
                                ),
                                body=tuple(prefix),
                                line=rule.line,
                            )
                        )
                else:
                    used = item
                new_body.append(used)
                prefix.append(used)
                bound_vars.update(used.variables())
            self._emit(
                Rule(
                    head=Atom(relation=head_name, terms=rule.head.terms),
                    body=tuple(new_body),
                    line=rule.line,
                )
            )

    def run(self, goals: Sequence[Tuple[str, str]]) -> MagicProgram:
        infos: Dict[Tuple[str, str], GoalInfo] = {}
        for predicate, adornment in goals:
            info = self.request(predicate, adornment)
            if info.predicate not in self.idb:
                raise DatalogError(
                    f"magic rewrite: goal {predicate} is an input relation"
                )
            infos[(predicate, adornment)] = info
        while self.queue:
            predicate, adornment = self.queue.pop()
            if adornment == "f" * self.src.relations[predicate].arity:
                self._process_all_free(predicate)
            else:
                self._process_adorned(predicate, adornment)
        program = ProgramAST(
            domains=dict(self.src.domains),
            relations=self.out_decls,
            rules=self.out_rules,
        )
        program.validate()
        stratify(program)  # raises if the rewrite broke stratification
        return MagicProgram(program=program, goals=infos)


def _is_dontcare(term: Term) -> bool:
    from .ast import DontCare

    return isinstance(term, DontCare)


def magic_rewrite(
    program: ProgramAST,
    goals: Sequence[Tuple[str, str]],
    *,
    max_adornments: int = 4,
) -> MagicProgram:
    """Rewrite ``program`` for the given ``(predicate, adornment)`` goals.

    Returns a :class:`MagicProgram` whose ``program`` computes, for each
    goal, an answer relation restricted to the bindings present in the
    goal's (seedable, input-declared) magic relation.  Soundness and
    completeness w.r.t. the original fixpoint restricted to the asked
    bindings is the classical magic-sets theorem; the differential tests
    in ``tests/datalog/test_magic.py`` enforce it per-query.
    """
    return _Rewriter(program, max_adornments).run(goals)
