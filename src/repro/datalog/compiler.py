"""Lowering of Datalog rules into relational-algebra op plans.

This is the front half of the bddbddb compiler (Section 2.4.1): each rule
is lowered — once per semi-naive variant — into a straight-line
:class:`~repro.datalog.plan.RulePlan` of typed ops:

* ``Load`` a body atom's BDD (full relation or its delta),
* ``And`` constant filters and repeated-variable equalities onto it,
  ``Exist`` away don't-cares and dead-on-arrival variables,
* ``Replace`` attributes so shared variables meet in the same physical
  domain ("attributes naming": the compiler simulates the binding
  evolution and inserts the cheapest renames),
* ``RelProd`` into the accumulator, projecting join variables that are
  dead afterwards in the same fused operation,
* ``Diff``/``And`` built-in comparisons and negated atoms,
* ``Exist``/``Replace`` into the head schema and ``CopyInto`` the head.

The lowering here is *local and greedy*; the optimizer passes
(:mod:`repro.datalog.passes`) improve on it by re-lowering rules with a
globally-colored variable→physical-domain ``assignment`` (accepted via
the hint parameter of :func:`compile_rule`) and by rewriting the emitted
op list directly.

The compiler works against *physical domain references* ``(logical,
index)`` so plans can be constructed before BDD levels exist; the solver
materializes them against its domain pool.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from .ast import (
    Atom,
    Comparison,
    DatalogError,
    DontCare,
    NamedConst,
    NumberConst,
    ProgramAST,
    Rule,
    Term,
    Variable,
)
from .plan import (
    And,
    Const,
    CopyInto,
    Diff,
    Equal,
    Exist,
    Load,
    Op,
    PhysRef,
    Replace,
    RelProd,
    RulePlan,
    Top,
    Universe,
    ordered_schema,
)

__all__ = [
    "PhysRef",
    "RulePlan",
    "compile_rule",
    "instance_requirements",
]


class _Allocator:
    """Hands out physical-domain instances, avoiding a live set."""

    def __init__(self) -> None:
        self.high_water: Dict[str, int] = {}

    def fresh(self, logical: str, avoid: Set[PhysRef]) -> PhysRef:
        i = 0
        while (logical, i) in avoid:
            i += 1
        self.high_water[logical] = max(self.high_water.get(logical, 0), i + 1)
        return (logical, i)

    def note(self, phys: PhysRef) -> None:
        logical, idx = phys
        self.high_water[logical] = max(self.high_water.get(logical, 0), idx + 1)


def _atom_schema(program: ProgramAST, atom: Atom) -> List[Tuple[Term, str, PhysRef]]:
    """Per-position (term, logical domain, declared physical ref)."""
    decl = program.relations[atom.relation]
    instances = decl.resolved_instances()
    out = []
    for term, attr, inst in zip(atom.terms, decl.attributes, instances):
        out.append((term, attr.domain, (attr.domain, inst)))
    return out


def _order_positive_atoms(
    rule: Rule, delta_index: Optional[int]
) -> List[Tuple[int, Atom]]:
    """Join-order heuristic: start from the delta atom (its tuples are the
    new work), then greedily pick atoms sharing the most variables with the
    already-bound set, breaking ties toward lower arity."""
    atoms = list(enumerate(rule.positive_atoms))
    if not atoms:
        return []
    ordered: List[Tuple[int, Atom]] = []
    remaining = dict(atoms)
    if delta_index is not None:
        ordered.append((delta_index, remaining.pop(delta_index)))
    else:
        first_idx = atoms[0][0]
        ordered.append((first_idx, remaining.pop(first_idx)))
    bound: Set[str] = set(ordered[0][1].variables())
    while remaining:
        best = None
        best_key = None
        for idx, atom in remaining.items():
            shared = len(set(atom.variables()) & bound)
            key = (-shared, len(atom.terms), idx)
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        atom = remaining.pop(best)
        ordered.append((best, atom))
        bound.update(atom.variables())
    return ordered


def _last_use_positions(
    program: ProgramAST,
    rule: Rule,
    ordered_atoms: List[Tuple[int, Atom]],
    tail_items: List[Union[Comparison, Atom]],
) -> Dict[str, int]:
    """Position (in the execution sequence) after which each variable dies.

    Positions: 0..len(ordered_atoms)-1 for positive atoms, then
    len(ordered_atoms)+i for tail items (comparisons, negations).  Head
    variables never die (position = +inf sentinel).
    """
    last: Dict[str, int] = {}
    for pos, (_, atom) in enumerate(ordered_atoms):
        for v in atom.variables():
            last[v] = pos
    base = len(ordered_atoms)
    for i, item in enumerate(tail_items):
        vs = item.variables() if isinstance(item, (Atom, Comparison)) else []
        for v in vs:
            last[v] = base + i
    for v in rule.head.variables():
        last[v] = 1 << 30
    return last


def _choose_targets(
    rule: Rule,
    atom: Atom,
    atom_vars: Dict[str, PhysRef],
    binding: Dict[str, PhysRef],
    in_use: Set[PhysRef],
    allocator: _Allocator,
    atom_physes: Set[PhysRef],
    assignment: Optional[Dict[str, PhysRef]],
) -> Tuple[Dict[PhysRef, PhysRef], Dict[str, PhysRef]]:
    """Pick the rename target for each of the atom's variables.

    Bound variables move onto the current binding's physical domain; new
    variables prefer the optimizer's ``assignment`` hint, then their own
    attribute, then a diverted fresh instance.  If an assignment hint
    produces a rename-target collision with an attribute that stays in
    place, the whole atom falls back to the greedy choice (the optimizer
    then simply gets no improvement here).
    """
    attempts = (assignment, None) if assignment else (None,)
    for pref_map in attempts:
        rename: Dict[PhysRef, PhysRef] = {}
        new_vars: Dict[str, PhysRef] = {}
        targets_taken: Set[PhysRef] = set(in_use)
        for var, phys in atom_vars.items():
            if var in binding:
                target = binding[var]
            else:
                logical = phys[0]
                pref = pref_map.get(var) if pref_map else None
                if (
                    pref is not None
                    and pref[0] == logical
                    and pref not in targets_taken
                ):
                    target = pref
                    allocator.note(pref)
                elif phys not in targets_taken:
                    target = phys
                else:
                    # Divert to a fresh instance; it must not collide with
                    # the current relation, other targets, or any attribute
                    # of this atom that stays in place.
                    target = allocator.fresh(logical, targets_taken | atom_physes)
                new_vars[var] = target
            if target != phys:
                rename[phys] = target
            targets_taken.add(target)
        # A rename target must never collide with an attribute of the atom
        # that stays in place (collisions inside the simultaneous rename
        # itself are fine because replace applies the whole map at once).
        stay = {p for v, p in atom_vars.items() if p not in rename}
        collision = next((d for d in rename.values() if d in stay), None)
        if collision is None:
            return rename, new_vars
    raise DatalogError(
        f"rule {rule}: rename collision on {collision} in atom "
        f"{atom.relation} — add explicit physical instances"
    )


def compile_rule(
    program: ProgramAST,
    rule: Rule,
    delta_index: Optional[int],
    allocator: Optional[_Allocator] = None,
    assignment: Optional[Dict[str, PhysRef]] = None,
) -> RulePlan:
    """Lower one rule variant into a :class:`RulePlan` op program.

    ``delta_index`` selects which positive atom is read from the delta
    relation (semi-naive evaluation); ``None`` reads all atoms in full.
    ``assignment`` optionally maps variable names to preferred physical
    domains (the optimizer's conflict-graph coloring); the lowering uses
    a hint only where it is collision-free, so any assignment yields a
    correct plan.
    """
    allocator = allocator or _Allocator()
    plan = RulePlan(
        rule=rule, head_relation=rule.head.relation, delta_index=delta_index
    )
    ops = plan.ops

    def emit(cls, schema, *args, spine=False, origin=None) -> Op:
        op = cls(len(ops), ordered_schema(schema), *args)
        op.spine = spine
        op.origin = origin
        ops.append(op)
        return op

    ordered = _order_positive_atoms(rule, delta_index)
    # Tail: comparisons first (cheap filters), then negations.
    tail: List[Union[Comparison, Atom]] = list(rule.comparisons) + list(
        rule.negative_atoms
    )
    last_use = _last_use_positions(program, rule, ordered, tail)

    binding: Dict[str, PhysRef] = {}
    in_use: Set[PhysRef] = set()

    def release(var: str) -> None:
        phys = binding.pop(var)
        in_use.discard(phys)

    acc: Optional[Op] = None
    acc_schema: Set[PhysRef] = set()

    def prep_chain(
        atom: Atom,
        const_filters,
        dup_eqs,
        project,
        rename,
        use_delta: bool,
        origin,
    ) -> Tuple[Op, Set[PhysRef]]:
        """Emit the load/filter/project/rename chain for one body atom."""
        cur: Set[PhysRef] = {p for _, _, p in _atom_schema(program, atom)}
        node = emit(Load, cur, atom.relation, use_delta, origin=origin)
        for phys, term in const_filters:
            probe = emit(Const, (phys,), phys, term, origin=origin)
            node = emit(And, cur, node.out, probe.out, False, origin=origin)
        for keep, dup in dup_eqs:
            probe = emit(Equal, (keep, dup), keep, dup, origin=origin)
            node = emit(And, cur, node.out, probe.out, False, origin=origin)
        if project:
            cur -= set(project)
            node = emit(
                Exist, cur, node.out, tuple(sorted(project)), origin=origin
            )
        if rename:
            cur = {rename.get(p, p) for p in cur}
            node = emit(
                Replace,
                cur,
                node.out,
                tuple(sorted(rename.items())),
                origin=origin,
            )
        return node, cur

    # ------------------------------------------------------------------
    # Positive atoms
    # ------------------------------------------------------------------
    for pos, (atom_idx, atom) in enumerate(ordered):
        schema = _atom_schema(program, atom)
        for _, _, phys_ref in schema:
            allocator.note(phys_ref)
        use_delta = delta_index is not None and atom_idx == delta_index
        origin = (atom.relation, use_delta, pos)
        # Pass 1: constants, don't-cares, duplicates.
        const_filters: List[Tuple[PhysRef, Term]] = []
        dup_eqs: List[Tuple[PhysRef, PhysRef]] = []
        project: List[PhysRef] = []
        atom_vars: Dict[str, PhysRef] = {}
        for term, logical, phys in schema:
            if isinstance(term, (NumberConst, NamedConst)):
                const_filters.append((phys, term))
                project.append(phys)
            elif isinstance(term, DontCare):
                project.append(phys)
            elif isinstance(term, Variable):
                if term.name in atom_vars:
                    dup_eqs.append((atom_vars[term.name], phys))
                    project.append(phys)
                else:
                    atom_vars[term.name] = phys
        # Dead-on-arrival: variables that appear only inside this atom.
        for var in list(atom_vars):
            if last_use[var] <= pos and var not in binding:
                project.append(atom_vars.pop(var))
        # Pass 2: renames.
        atom_physes = {p for _, _, p in schema}
        rename, new_vars = _choose_targets(
            rule, atom, atom_vars, binding, in_use, allocator, atom_physes,
            assignment,
        )
        node, cur = prep_chain(
            atom, const_filters, dup_eqs, project, rename, use_delta, origin
        )
        # Join, projecting variables that die at this step.
        join_project: List[PhysRef] = []
        for var in list(binding):
            if last_use[var] <= pos:
                join_project.append(binding[var])
                release(var)
        for var, target in new_vars.items():
            binding[var] = target
            in_use.add(target)
            plan.var_targets[var] = target
        if acc is None:
            node.spine = True
            acc, acc_schema = node, cur
        else:
            acc_schema = (acc_schema | cur) - set(join_project)
            acc = emit(
                RelProd,
                acc_schema,
                acc.out,
                node.out,
                tuple(sorted(join_project)),
                spine=True,
            )

    # ------------------------------------------------------------------
    # Unsafe variables: bind to the domain universe before tail items.
    # ------------------------------------------------------------------
    var_domains = program.variable_domains(rule)
    needed: List[str] = []
    for item in tail:
        needed.extend(item.variables())
    needed.extend(rule.head.variables())
    for var in needed:
        if var not in binding:
            logical = var_domains.get(var)
            if logical is None:
                raise DatalogError(f"rule {rule}: cannot infer domain of {var}")
            phys: Optional[PhysRef] = None
            if assignment:
                pref = assignment.get(var)
                if pref is not None and pref[0] == logical and pref not in in_use:
                    phys = pref
                    allocator.note(pref)
            if phys is None:
                phys = allocator.fresh(logical, in_use)
            binding[var] = phys
            in_use.add(phys)
            plan.var_targets[var] = phys
            universe = emit(Universe, (phys,), phys)
            if acc is None:
                universe.spine = True
                acc, acc_schema = universe, {phys}
            else:
                acc_schema = acc_schema | {phys}
                acc = emit(
                    And, acc_schema, acc.out, universe.out, True, spine=True
                )

    # ------------------------------------------------------------------
    # Comparisons, then negated atoms.
    # ------------------------------------------------------------------
    base = len(ordered)
    for i, item in enumerate(tail):
        item_pos = base + i
        if isinstance(item, Comparison):
            left, right = item.left, item.right
            if not isinstance(left, Variable):
                left, right = right, left
                # op is symmetric for = and !=
            if not isinstance(left, Variable):
                raise DatalogError(f"rule {rule}: comparison between two constants")
            left_phys = binding[left.name]
            if isinstance(right, Variable):
                right_phys = binding[right.name]
                probe = emit(
                    Equal, (left_phys, right_phys), left_phys, right_phys
                )
            else:
                probe = emit(Const, (left_phys,), left_phys, right)
            if item.op == "=":
                acc = emit(
                    And,
                    acc_schema | set(probe.schema),
                    acc.out,
                    probe.out,
                    False,
                    spine=True,
                )
            else:
                acc = emit(Diff, acc_schema, acc.out, probe.out, spine=True)
        else:  # negated atom
            schema = _atom_schema(program, item)
            for _, _, phys_ref in schema:
                allocator.note(phys_ref)
            origin = (item.relation, False, item_pos)
            const_filters = []
            dup_eqs = []
            project = []
            atom_vars = {}
            for term, logical, phys in schema:
                if isinstance(term, (NumberConst, NamedConst)):
                    const_filters.append((phys, term))
                    project.append(phys)
                elif isinstance(term, DontCare):
                    project.append(phys)
                else:
                    if term.name in atom_vars:
                        dup_eqs.append((atom_vars[term.name], phys))
                        project.append(phys)
                    else:
                        atom_vars[term.name] = phys
            rename = {}
            for var, phys in atom_vars.items():
                if var not in binding:
                    raise DatalogError(
                        f"rule {rule}: negated variable {var} is unbound"
                    )
                if binding[var] != phys:
                    rename[phys] = binding[var]
            node, _cur = prep_chain(
                item, const_filters, dup_eqs, project, rename, False, origin
            )
            acc = emit(Diff, acc_schema, acc.out, node.out, spine=True)
        # Project variables that die at this tail item.
        project_after: List[PhysRef] = []
        for var in item.variables():
            if last_use[var] <= item_pos and var in binding:
                project_after.append(binding[var])
                release(var)
        if project_after:
            acc_schema -= set(project_after)
            acc = emit(
                Exist,
                acc_schema,
                acc.out,
                tuple(sorted(project_after)),
                spine=True,
            )

    # ------------------------------------------------------------------
    # Final projection and rename into the head schema.
    # ------------------------------------------------------------------
    head_schema = _atom_schema(program, rule.head)
    head_consts: List[Tuple[PhysRef, Term]] = []
    head_equalities: List[Tuple[PhysRef, PhysRef]] = []
    head_vars_first: Dict[str, PhysRef] = {}
    for term, logical, phys in head_schema:
        allocator.note(phys)
        if isinstance(term, (NumberConst, NamedConst)):
            head_consts.append((phys, term))
        elif isinstance(term, Variable):
            if term.name in head_vars_first:
                head_equalities.append((head_vars_first[term.name], phys))
            else:
                head_vars_first[term.name] = phys
    if acc is None:  # body-less rule (facts in rule form)
        acc = emit(Top, (), spine=True)
        acc_schema = set()
    final_project: List[PhysRef] = []
    for var in list(binding):
        if var not in head_vars_first:
            final_project.append(binding[var])
            release(var)
    if final_project:
        acc_schema -= set(final_project)
        acc = emit(
            Exist,
            acc_schema,
            acc.out,
            tuple(sorted(final_project)),
            spine=True,
        )
    final_rename: Dict[PhysRef, PhysRef] = {}
    for var, target in head_vars_first.items():
        src = binding[var]
        if src != target:
            final_rename[src] = target
    if final_rename:
        acc_schema = {final_rename.get(p, p) for p in acc_schema}
        acc = emit(
            Replace,
            acc_schema,
            acc.out,
            tuple(sorted(final_rename.items())),
            spine=True,
        )
    for phys, term in head_consts:
        probe = emit(Const, (phys,), phys, term)
        acc_schema = acc_schema | {phys}
        acc = emit(And, acc_schema, acc.out, probe.out, True, spine=True)
    for keep, dup in head_equalities:
        probe = emit(Equal, (keep, dup), keep, dup)
        acc_schema = acc_schema | {dup}
        acc = emit(And, acc_schema, acc.out, probe.out, True, spine=True)
    emit(CopyInto, acc_schema, acc.out, rule.head.relation)
    return plan


def instance_requirements(program: ProgramAST) -> Dict[str, int]:
    """Number of physical instances needed per logical domain.

    Compiles every rule (all semi-naive variants) against a shared
    allocator and returns its high-water marks, also accounting for the
    declared relation schemas.  The solver sizes its domain pool from
    this — always from the *greedy* lowering, so the optimizer can never
    change the pool (and therefore never the BDD variable order or any
    serialized fingerprint).
    """
    allocator = _Allocator()
    for decl in program.relations.values():
        for attr, inst in zip(decl.attributes, decl.resolved_instances()):
            allocator.note((attr.domain, inst))
    for rule in program.rules:
        n_pos = len(rule.positive_atoms)
        variants: List[Optional[int]] = [None]
        variants.extend(range(n_pos))
        for variant in variants:
            compile_rule(program, rule, variant, allocator)
    return dict(allocator.high_water)
