"""Translation of Datalog rules into BDD relational-algebra plans.

This is the core of the bddbddb reproduction (Section 2.4.1): each rule is
compiled — once per semi-naive variant — into a short straight-line program
of relational operations:

* load a body atom's BDD (full relation or its delta),
* filter constants, equate repeated variables, project don't-cares,
* rename attributes so shared variables meet in the same physical domain
  ("attributes naming": the compiler simulates the binding evolution and
  inserts the cheapest renames),
* join with ``rel_prod``, projecting join variables that are dead afterwards
  in the same fused operation,
* apply built-in comparisons and negated atoms,
* project to the head's variables and rename into the head's schema.

The compiler works against *physical domain references* ``(logical, index)``
so plans can be constructed before BDD levels exist; the solver materializes
them against its domain pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .ast import (
    Atom,
    Comparison,
    DatalogError,
    DontCare,
    NamedConst,
    NumberConst,
    ProgramAST,
    Rule,
    Term,
    Variable,
)

__all__ = [
    "PhysRef",
    "AtomPrep",
    "AtomStep",
    "UniverseStep",
    "ComparisonStep",
    "NegAtomStep",
    "FinalStep",
    "RulePlan",
    "compile_rule",
    "instance_requirements",
]

# A physical domain reference: (logical domain name, instance index).
PhysRef = Tuple[str, int]


@dataclass
class AtomPrep:
    """Schema-level preprocessing shared by positive and negated atoms."""

    relation: str
    # Constant filters: (attribute phys, resolved-at-runtime constant term).
    const_filters: List[Tuple[PhysRef, Term]] = field(default_factory=list)
    # Equalities for repeated variables within the atom: (keep, drop).
    dup_equalities: List[Tuple[PhysRef, PhysRef]] = field(default_factory=list)
    # Physical domains to project away after filtering (constants,
    # don't-cares, duplicate copies, dead-on-arrival variables).
    project: List[PhysRef] = field(default_factory=list)
    # Simultaneous rename applied after projection: src phys -> dst phys.
    rename: Dict[PhysRef, PhysRef] = field(default_factory=dict)


@dataclass
class AtomStep:
    """Join one positive atom into the current intermediate relation."""

    prep: AtomPrep
    use_delta: bool
    is_first: bool
    # Physical domains quantified away by the joining rel_prod (dead vars).
    join_project: List[PhysRef] = field(default_factory=list)


@dataclass
class UniverseStep:
    """Bind an otherwise-unconstrained variable to its whole domain."""

    phys: PhysRef


@dataclass
class ComparisonStep:
    """Apply ``left OP right`` over bound variables/constants."""

    op: str  # "=" or "!="
    left_phys: PhysRef
    right_phys: Optional[PhysRef]
    right_const: Optional[Term]
    project_after: List[PhysRef] = field(default_factory=list)


@dataclass
class NegAtomStep:
    """Subtract a (prepared, renamed) negated atom."""

    prep: AtomPrep
    project_after: List[PhysRef] = field(default_factory=list)


@dataclass
class FinalStep:
    """Project to head variables and rename into the head schema."""

    project: List[PhysRef] = field(default_factory=list)
    rename: Dict[PhysRef, PhysRef] = field(default_factory=dict)
    head_consts: List[Tuple[PhysRef, Term]] = field(default_factory=list)
    head_equalities: List[Tuple[PhysRef, PhysRef]] = field(default_factory=list)


@dataclass
class RulePlan:
    """A compiled (rule, semi-naive variant) pair."""

    rule: Rule
    head_relation: str
    delta_index: Optional[int]  # positive-atom index evaluated as delta
    steps: List[Union[AtomStep, UniverseStep, ComparisonStep, NegAtomStep]] = field(
        default_factory=list
    )
    final: FinalStep = field(default_factory=FinalStep)

    def phys_refs(self) -> Set[PhysRef]:
        """All physical domains this plan touches (for pool sizing)."""
        refs: Set[PhysRef] = set()

        def scan_prep(prep: AtomPrep) -> None:
            for phys, _ in prep.const_filters:
                refs.add(phys)
            for a, b in prep.dup_equalities:
                refs.update((a, b))
            refs.update(prep.project)
            for s, d in prep.rename.items():
                refs.update((s, d))

        for step in self.steps:
            if isinstance(step, AtomStep):
                scan_prep(step.prep)
                refs.update(step.join_project)
            elif isinstance(step, UniverseStep):
                refs.add(step.phys)
            elif isinstance(step, ComparisonStep):
                refs.add(step.left_phys)
                if step.right_phys is not None:
                    refs.add(step.right_phys)
                refs.update(step.project_after)
            elif isinstance(step, NegAtomStep):
                scan_prep(step.prep)
                refs.update(step.project_after)
        refs.update(self.final.project)
        for s, d in self.final.rename.items():
            refs.update((s, d))
        for phys, _ in self.final.head_consts:
            refs.add(phys)
        for a, b in self.final.head_equalities:
            refs.update((a, b))
        return refs


class _Allocator:
    """Hands out physical-domain instances, avoiding a live set."""

    def __init__(self) -> None:
        self.high_water: Dict[str, int] = {}

    def fresh(self, logical: str, avoid: Set[PhysRef]) -> PhysRef:
        i = 0
        while (logical, i) in avoid:
            i += 1
        self.high_water[logical] = max(self.high_water.get(logical, 0), i + 1)
        return (logical, i)

    def note(self, phys: PhysRef) -> None:
        logical, idx = phys
        self.high_water[logical] = max(self.high_water.get(logical, 0), idx + 1)


def _atom_schema(program: ProgramAST, atom: Atom) -> List[Tuple[Term, str, PhysRef]]:
    """Per-position (term, logical domain, declared physical ref)."""
    decl = program.relations[atom.relation]
    instances = decl.resolved_instances()
    out = []
    for term, attr, inst in zip(atom.terms, decl.attributes, instances):
        out.append((term, attr.domain, (attr.domain, inst)))
    return out


def _order_positive_atoms(
    rule: Rule, delta_index: Optional[int]
) -> List[Tuple[int, Atom]]:
    """Join-order heuristic: start from the delta atom (its tuples are the
    new work), then greedily pick atoms sharing the most variables with the
    already-bound set, breaking ties toward lower arity."""
    atoms = list(enumerate(rule.positive_atoms))
    if not atoms:
        return []
    ordered: List[Tuple[int, Atom]] = []
    remaining = dict(atoms)
    if delta_index is not None:
        ordered.append((delta_index, remaining.pop(delta_index)))
    else:
        first_idx = atoms[0][0]
        ordered.append((first_idx, remaining.pop(first_idx)))
    bound: Set[str] = set(ordered[0][1].variables())
    while remaining:
        best = None
        best_key = None
        for idx, atom in remaining.items():
            shared = len(set(atom.variables()) & bound)
            key = (-shared, len(atom.terms), idx)
            if best_key is None or key < best_key:
                best_key = key
                best = idx
        atom = remaining.pop(best)
        ordered.append((best, atom))
        bound.update(atom.variables())
    return ordered


def _last_use_positions(
    program: ProgramAST,
    rule: Rule,
    ordered_atoms: List[Tuple[int, Atom]],
    tail_items: List[Union[Comparison, Atom]],
) -> Dict[str, int]:
    """Position (in the execution sequence) after which each variable dies.

    Positions: 0..len(ordered_atoms)-1 for positive atoms, then
    len(ordered_atoms)+i for tail items (comparisons, negations).  Head
    variables never die (position = +inf sentinel).
    """
    last: Dict[str, int] = {}
    for pos, (_, atom) in enumerate(ordered_atoms):
        for v in atom.variables():
            last[v] = pos
    base = len(ordered_atoms)
    for i, item in enumerate(tail_items):
        vs = item.variables() if isinstance(item, (Atom, Comparison)) else []
        for v in vs:
            last[v] = base + i
    for v in rule.head.variables():
        last[v] = 1 << 30
    return last


def compile_rule(
    program: ProgramAST,
    rule: Rule,
    delta_index: Optional[int],
    allocator: Optional[_Allocator] = None,
) -> RulePlan:
    """Compile one rule variant into a :class:`RulePlan`.

    ``delta_index`` selects which positive atom is read from the delta
    relation (semi-naive evaluation); ``None`` reads all atoms in full.
    """
    allocator = allocator or _Allocator()
    head_decl = program.relations[rule.head.relation]
    plan = RulePlan(rule=rule, head_relation=rule.head.relation, delta_index=delta_index)

    ordered = _order_positive_atoms(rule, delta_index)
    # Tail: comparisons first (cheap filters), then negations.
    tail: List[Union[Comparison, Atom]] = list(rule.comparisons) + list(
        rule.negative_atoms
    )
    last_use = _last_use_positions(program, rule, ordered, tail)

    binding: Dict[str, PhysRef] = {}
    in_use: Set[PhysRef] = set()

    def release(var: str) -> None:
        phys = binding.pop(var)
        in_use.discard(phys)

    # ------------------------------------------------------------------
    # Positive atoms
    # ------------------------------------------------------------------
    for pos, (atom_idx, atom) in enumerate(ordered):
        schema = _atom_schema(program, atom)
        prep = AtomPrep(relation=atom.relation)
        for phys_ref in (p for _, _, p in schema):
            allocator.note(phys_ref)
        # Pass 1: constants, don't-cares, duplicates.
        atom_vars: Dict[str, PhysRef] = {}
        for term, logical, phys in schema:
            if isinstance(term, (NumberConst, NamedConst)):
                prep.const_filters.append((phys, term))
                prep.project.append(phys)
            elif isinstance(term, DontCare):
                prep.project.append(phys)
            elif isinstance(term, Variable):
                if term.name in atom_vars:
                    prep.dup_equalities.append((atom_vars[term.name], phys))
                    prep.project.append(phys)
                else:
                    atom_vars[term.name] = phys
        # Dead-on-arrival: variables that appear only inside this atom.
        for var in list(atom_vars):
            if last_use[var] <= pos and var not in binding:
                prep.project.append(atom_vars.pop(var))
        # Pass 2: renames.  Shared variables move onto the current binding's
        # physical domain; others keep theirs unless it collides.
        rename: Dict[PhysRef, PhysRef] = {}
        targets_taken: Set[PhysRef] = set(in_use)
        atom_physes: Set[PhysRef] = {p for _, _, p in schema}
        new_vars: Dict[str, PhysRef] = {}
        for var, phys in atom_vars.items():
            if var in binding:
                target = binding[var]
            else:
                logical = phys[0]
                if phys not in targets_taken:
                    target = phys
                else:
                    # Divert to a fresh instance; it must not collide with
                    # the current relation, other targets, or any attribute
                    # of this atom that stays in place.
                    target = allocator.fresh(logical, targets_taken | atom_physes)
                new_vars[var] = target
            if target != phys:
                rename[phys] = target
            targets_taken.add(target)
        # Safety net: a rename target must never collide with an attribute
        # of the atom that stays in place (the allocator avoids this by
        # construction; collisions inside the simultaneous rename itself
        # are fine because replace applies the whole map at once).
        stay = {p for v, p in atom_vars.items() if p not in rename}
        for src, dst in rename.items():
            if dst in stay:
                raise DatalogError(
                    f"rule {rule}: rename collision on {dst} in atom "
                    f"{atom.relation} — add explicit physical instances"
                )
        prep.rename = rename
        # Join, projecting variables that die at this step.
        join_project: List[PhysRef] = []
        for var in list(binding):
            if last_use[var] <= pos:
                join_project.append(binding[var])
                release(var)
        for var, target in new_vars.items():
            binding[var] = target
            in_use.add(target)
        plan.steps.append(
            AtomStep(
                prep=prep,
                use_delta=(delta_index is not None and atom_idx == delta_index),
                is_first=(pos == 0),
                join_project=join_project,
            )
        )

    # ------------------------------------------------------------------
    # Unsafe variables: bind to the domain universe before tail items.
    # ------------------------------------------------------------------
    var_domains = program.variable_domains(rule)
    needed: List[str] = []
    for item in tail:
        needed.extend(item.variables())
    needed.extend(rule.head.variables())
    for var in needed:
        if var not in binding:
            logical = var_domains.get(var)
            if logical is None:
                raise DatalogError(f"rule {rule}: cannot infer domain of {var}")
            phys = allocator.fresh(logical, in_use)
            binding[var] = phys
            in_use.add(phys)
            plan.steps.append(UniverseStep(phys=phys))

    # ------------------------------------------------------------------
    # Comparisons, then negated atoms.
    # ------------------------------------------------------------------
    base = len(ordered)
    for i, item in enumerate(tail):
        item_pos = base + i
        if isinstance(item, Comparison):
            left, right = item.left, item.right
            if not isinstance(left, Variable):
                left, right = right, left
                # op is symmetric for = and !=
            if not isinstance(left, Variable):
                raise DatalogError(f"rule {rule}: comparison between two constants")
            step = ComparisonStep(
                op=item.op,
                left_phys=binding[left.name],
                right_phys=binding[right.name] if isinstance(right, Variable) else None,
                right_const=None if isinstance(right, Variable) else right,
            )
            for var in item.variables():
                if last_use[var] <= item_pos and var in binding:
                    step.project_after.append(binding[var])
                    release(var)
            plan.steps.append(step)
        else:  # negated atom
            schema = _atom_schema(program, item)
            prep = AtomPrep(relation=item.relation)
            for phys_ref in (p for _, _, p in schema):
                allocator.note(phys_ref)
            atom_vars: Dict[str, PhysRef] = {}
            for term, logical, phys in schema:
                if isinstance(term, (NumberConst, NamedConst)):
                    prep.const_filters.append((phys, term))
                    prep.project.append(phys)
                elif isinstance(term, DontCare):
                    prep.project.append(phys)
                else:
                    if term.name in atom_vars:
                        prep.dup_equalities.append((atom_vars[term.name], phys))
                        prep.project.append(phys)
                    else:
                        atom_vars[term.name] = phys
            rename = {}
            for var, phys in atom_vars.items():
                if var not in binding:
                    raise DatalogError(
                        f"rule {rule}: negated variable {var} is unbound"
                    )
                if binding[var] != phys:
                    rename[phys] = binding[var]
            prep.rename = rename
            step = NegAtomStep(prep=prep)
            for var in item.variables():
                if last_use[var] <= item_pos and var in binding:
                    step.project_after.append(binding[var])
                    release(var)
            plan.steps.append(step)

    # ------------------------------------------------------------------
    # Final projection and rename into the head schema.
    # ------------------------------------------------------------------
    head_schema = _atom_schema(program, rule.head)
    final = FinalStep()
    head_vars_first: Dict[str, PhysRef] = {}
    for term, logical, phys in head_schema:
        allocator.note(phys)
        if isinstance(term, (NumberConst, NamedConst)):
            final.head_consts.append((phys, term))
        elif isinstance(term, Variable):
            if term.name in head_vars_first:
                final.head_equalities.append((head_vars_first[term.name], phys))
            else:
                head_vars_first[term.name] = phys
    head_var_names = set(head_vars_first)
    for var in list(binding):
        if var not in head_var_names:
            final.project.append(binding[var])
            release(var)
    for var, target in head_vars_first.items():
        src = binding[var]
        if src != target:
            final.rename[src] = target
    plan.final = final
    return plan


def instance_requirements(program: ProgramAST) -> Dict[str, int]:
    """Number of physical instances needed per logical domain.

    Compiles every rule (all semi-naive variants) against a shared
    allocator and returns its high-water marks, also accounting for the
    declared relation schemas.  The solver sizes its domain pool from this.
    """
    allocator = _Allocator()
    for decl in program.relations.values():
        for attr, inst in zip(decl.attributes, decl.resolved_instances()):
            allocator.note((attr.domain, inst))
    for rule in program.rules:
        n_pos = len(rule.positive_atoms)
        variants: List[Optional[int]] = [None]
        variants.extend(range(n_pos))
        for variant in variants:
            compile_rule(program, rule, variant, allocator)
    return dict(allocator.high_water)
