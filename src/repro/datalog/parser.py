"""Parser for the Datalog dialect used throughout the paper.

Concrete syntax (matching the listings in Algorithms 1–7)::

    # Context-insensitive points-to analysis (Algorithm 1).
    .domains
    V 262144 variable.map
    H 65536

    .relations
    vP0    (variable : V, heap : H) input
    assign (dest : V0, source : V1) input
    vP     (variable : V, heap : H) output

    .rules
    vP(v, h)      :- vP0(v, h).
    vP(v1, h)     :- assign(v1, v2), vP(v2, h).
    hP(h1, f, h2) :- store(v1, f, v2), vP(v1, h1), vP(v2, h2).
    vP(v2, h2)    :- load(v1, f, v2), vP(v1, h1), hP(h1, f, h2).

Notes
-----
* ``#`` and ``//`` start comments; blank lines are ignored.
* Attribute domains may carry an explicit physical instance (``V1``);
  otherwise instances are assigned by position among same-domain
  attributes, exactly as bddbddb numbers ``V0, V1, ...``.
* Terms: lower-case identifiers are variables, ``_`` is a don't-care,
  integers are ordinal constants, and double-quoted strings are named
  constants resolved through the domain's name map at load time.
* Body atoms may be negated with ``!``; built-ins ``=`` and ``!=`` compare
  two terms of the same domain.
* A rule may span several physical lines; it ends at the terminating ``.``.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .ast import (
    Atom,
    AttributeDecl,
    Comparison,
    DatalogError,
    DomainDecl,
    DontCare,
    NamedConst,
    NumberConst,
    ProgramAST,
    RelationDecl,
    Rule,
    Term,
    Variable,
)

__all__ = ["parse_program"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
  | (?P<turnstile>:-)
  | (?P<neq>!=)
  | (?P<sym>[(),.:=!_])
    """,
    re.VERBOSE,
)

_SECTION_RE = re.compile(r"^\.(domains|relations|rules)\s*$")


def _tokenize(text: str, line_offset: int) -> List[Tuple[str, str, int]]:
    """Tokenize one logical chunk; returns (kind, value, line) triples."""
    tokens = []
    line = line_offset
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            snippet = text[pos : pos + 20]
            raise DatalogError(f"line {line}: cannot tokenize near {snippet!r}")
        kind = m.lastgroup
        value = m.group()
        line += value.count("\n")
        pos = m.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, value, line))
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str, int]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def next(self) -> Tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise DatalogError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, value: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[1] != value:
            raise DatalogError(f"line {tok[2]}: expected {value!r}, got {tok[1]!r}")
        return tok

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.rstrip()


_DOMAIN_REF_RE = re.compile(r"^([A-Za-z]+?)(\d*)$")


def _parse_domain_ref(text: str, known_domains: Dict[str, DomainDecl], line: int):
    """Resolve ``V`` / ``V1`` into (domain, instance)."""
    m = _DOMAIN_REF_RE.match(text)
    if m is None:
        raise DatalogError(f"line {line}: bad domain reference {text!r}")
    base, digits = m.group(1), m.group(2)
    if text in known_domains:
        # A domain literally named e.g. "H2" takes priority over H instance 2.
        return text, None
    if digits and base in known_domains:
        return base, int(digits)
    if base in known_domains:
        return base, None
    raise DatalogError(f"line {line}: unknown domain {text!r}")


def _parse_domain_line(line: str, lineno: int) -> DomainDecl:
    parts = line.split()
    if len(parts) not in (2, 3):
        raise DatalogError(f"line {lineno}: domain declaration needs 'NAME SIZE [mapfile]'")
    name, size_text = parts[0], parts[1]
    try:
        size = int(size_text)
    except ValueError:
        raise DatalogError(f"line {lineno}: bad domain size {size_text!r}")
    if size <= 0:
        raise DatalogError(f"line {lineno}: domain size must be positive")
    map_file = parts[2] if len(parts) == 3 else None
    return DomainDecl(name, size, map_file)


def _parse_relation_line(
    line: str, lineno: int, domains: Dict[str, DomainDecl]
) -> RelationDecl:
    m = re.match(r"^\s*([A-Za-z][A-Za-z0-9_]*)\s*\((.*)\)\s*(.*)$", line)
    if m is None:
        raise DatalogError(f"line {lineno}: bad relation declaration {line!r}")
    name, attr_text, flags_text = m.group(1), m.group(2), m.group(3)
    attributes = []
    for chunk in attr_text.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise DatalogError(f"line {lineno}: empty attribute in {name}")
        if ":" not in chunk:
            raise DatalogError(f"line {lineno}: attribute needs 'name : DOMAIN'")
        attr_name, dom_text = [p.strip() for p in chunk.split(":", 1)]
        domain, instance = _parse_domain_ref(dom_text, domains, lineno)
        attributes.append(AttributeDecl(attr_name, domain, instance))
    flags = set(flags_text.split())
    unknown = flags - {"input", "output", "printsize"}
    if unknown:
        raise DatalogError(f"line {lineno}: unknown relation flags {sorted(unknown)}")
    return RelationDecl(
        name,
        tuple(attributes),
        is_input="input" in flags,
        is_output="output" in flags,
    )


def _parse_term(stream: _TokenStream) -> Term:
    kind, value, line = stream.next()
    if kind == "ident":
        return Variable(value)
    if kind == "number":
        return NumberConst(int(value))
    if kind == "string":
        return NamedConst(value[1:-1])
    if value == "_":
        return DontCare()
    raise DatalogError(f"line {line}: unexpected term {value!r}")


def _parse_atom_or_comparison(stream: _TokenStream) -> Union[Atom, Comparison]:
    negated = False
    tok = stream.peek()
    if tok is not None and tok[1] == "!":
        stream.next()
        negated = True
    first = _parse_term(stream)
    tok = stream.peek()
    if tok is not None and tok[1] == "(" and isinstance(first, Variable):
        # Relation atom.
        stream.expect("(")
        terms: List[Term] = []
        while True:
            terms.append(_parse_term(stream))
            kind, value, line = stream.next()
            if value == ")":
                break
            if value != ",":
                raise DatalogError(f"line {line}: expected ',' or ')' in atom")
        return Atom(first.name, tuple(terms), negated=negated)
    # Comparison built-in.
    kind, value, line = stream.next()
    if value == "=":
        op = "="
    elif value == "!=":
        op = "!="
    else:
        raise DatalogError(f"line {line}: expected atom or comparison, got {value!r}")
    right = _parse_term(stream)
    if negated:
        op = "!=" if op == "=" else "="
    return Comparison(first, op, right)


def _parse_rule(text: str, lineno: int) -> Rule:
    tokens = _tokenize(text, lineno)
    stream = _TokenStream(tokens)
    head = _parse_atom_or_comparison(stream)
    if isinstance(head, Comparison) or head.negated:
        raise DatalogError(f"line {lineno}: rule head must be a positive atom")
    body: List[Union[Atom, Comparison]] = []
    tok = stream.peek()
    if tok is not None and tok[1] == ":-":
        stream.next()
        while True:
            body.append(_parse_atom_or_comparison(stream))
            tok = stream.peek()
            if tok is None:
                break
            if tok[1] == ",":
                stream.next()
                continue
            break
    if not stream.at_end():
        kind, value, line = stream.next()
        raise DatalogError(f"line {line}: trailing tokens {value!r} in rule")
    return Rule(head, tuple(body), line=lineno)


def parse_program(
    text: str, domain_sizes: Optional[Dict[str, int]] = None
) -> ProgramAST:
    """Parse Datalog source into a validated :class:`ProgramAST`.

    ``domain_sizes`` optionally overrides the declared domain sizes — the
    analysis drivers use it to shrink the paper's generous declarations
    (e.g. ``V 262144``) to the actual number of variables in the program
    under analysis, which keeps the BDDs narrow.
    """
    program = ProgramAST()
    section = None
    pending_rule: List[str] = []
    pending_start = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip():
            continue
        m = _SECTION_RE.match(line.strip())
        if m is not None:
            if pending_rule:
                raise DatalogError(
                    f"line {pending_start}: unterminated rule before section"
                )
            section = m.group(1)
            continue
        if section == "domains":
            decl = _parse_domain_line(line.strip(), lineno)
            if decl.name in program.domains:
                raise DatalogError(f"line {lineno}: duplicate domain {decl.name}")
            program.domains[decl.name] = decl
        elif section == "relations":
            decl = _parse_relation_line(line, lineno, program.domains)
            if decl.name in program.relations:
                raise DatalogError(f"line {lineno}: duplicate relation {decl.name}")
            program.relations[decl.name] = decl
        elif section == "rules":
            if not pending_rule:
                pending_start = lineno
            pending_rule.append(line)
            if line.rstrip().endswith("."):
                rule_text = "\n".join(pending_rule)
                # Drop the final terminating dot only.
                rule_text = rule_text.rstrip()[:-1]
                program.rules.append(_parse_rule(rule_text, pending_start))
                pending_rule = []
        else:
            raise DatalogError(
                f"line {lineno}: content before any section header "
                f"(.domains / .relations / .rules)"
            )
    if pending_rule:
        raise DatalogError(f"line {pending_start}: unterminated rule at end of file")
    if domain_sizes:
        for name, size in domain_sizes.items():
            if name not in program.domains:
                raise DatalogError(f"domain size override for unknown domain {name}")
            old = program.domains[name]
            program.domains[name] = DomainDecl(old.name, size, old.map_file)
    program.validate()
    return program
