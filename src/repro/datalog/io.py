"""Saving and loading relations and domain maps.

bddbddb exchanges data with its front end through ``.map`` files (one
domain-element name per line) and ``.tuples`` files (one whitespace-
separated ordinal tuple per line, preceded by a ``#`` header naming the
attributes).  This module implements that interchange so analyses can be
checkpointed, inputs can be prepared offline, and results can be diffed
across runs.

Example ``vP.tuples``::

    # variable:V0 heap:H0
    17 3
    18 3
    19 4
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .ast import DatalogError
from .relation import Relation
from .solver import Solver

__all__ = [
    "write_map",
    "read_map",
    "write_tuples",
    "read_tuples",
    "save_relation",
    "load_relation",
    "save_solver_outputs",
    "load_solver_inputs",
]

PathLike = Union[str, pathlib.Path]


def write_map(path: PathLike, names: Sequence[str]) -> None:
    """Write a domain ``.map`` file: ordinal i's name on line i."""
    text = "\n".join(names)
    pathlib.Path(path).write_text(text + ("\n" if names else ""))


def read_map(path: PathLike) -> List[str]:
    """Read a domain ``.map`` file."""
    text = pathlib.Path(path).read_text()
    if not text:
        return []
    return text.rstrip("\n").split("\n")


def write_tuples(
    path: PathLike,
    tuples: Iterable[Sequence[int]],
    header: Optional[str] = None,
) -> int:
    """Write a ``.tuples`` file; returns the number of tuples written."""
    lines = []
    if header:
        lines.append(f"# {header}")
    count = 0
    for values in tuples:
        lines.append(" ".join(str(v) for v in values))
        count += 1
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return count


def read_tuples(path: PathLike) -> List[Tuple[int, ...]]:
    """Read a ``.tuples`` file (header lines starting with ``#`` skipped)."""
    out: List[Tuple[int, ...]] = []
    for lineno, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            out.append(tuple(int(part) for part in line.split()))
        except ValueError:
            raise DatalogError(f"{path}:{lineno}: malformed tuple {line!r}")
    return out


def _relation_header(relation: Relation) -> str:
    return " ".join(f"{a.name}:{a.phys.name}" for a in relation.attributes)


def save_relation(relation: Relation, path: PathLike) -> int:
    """Dump one relation to a ``.tuples`` file; returns the tuple count."""
    return write_tuples(path, relation.tuples(), header=_relation_header(relation))


def load_relation(relation: Relation, path: PathLike) -> int:
    """Load a ``.tuples`` file into an existing relation (replacing its
    contents); returns the tuple count."""
    tuples = read_tuples(path)
    for values in tuples:
        if len(values) != relation.arity:
            raise DatalogError(
                f"{path}: tuple {values} has arity {len(values)}, relation "
                f"{relation.name} expects {relation.arity}"
            )
    relation.set_tuples(tuples)
    return len(tuples)


def save_solver_outputs(solver: Solver, directory: PathLike) -> Dict[str, int]:
    """Write every ``output`` relation (and the domain maps) of a solved
    program under ``directory``; returns tuple counts per relation."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    counts: Dict[str, int] = {}
    for decl in solver.program.relations.values():
        if not decl.is_output:
            continue
        counts[decl.name] = save_relation(
            solver.relation(decl.name), directory / f"{decl.name}.tuples"
        )
    for domain, names in solver.name_maps.items():
        write_map(directory / f"{domain}.map", names)
    return counts


def load_solver_inputs(solver: Solver, directory: PathLike) -> Dict[str, int]:
    """Load every ``input`` relation that has a ``.tuples`` file under
    ``directory``; returns tuple counts per relation."""
    directory = pathlib.Path(directory)
    counts: Dict[str, int] = {}
    for decl in solver.program.relations.values():
        if not decl.is_input:
            continue
        path = directory / f"{decl.name}.tuples"
        if path.exists():
            counts[decl.name] = load_relation(solver.relation(decl.name), path)
    return counts
