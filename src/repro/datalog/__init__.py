"""bddbddb in Python: a Datalog-to-BDD deductive database.

"We have developed a deductive database system called bddbddb (BDD Based
Deductive DataBase) that automatically translates Datalog programs into BDD
algorithms."  This package is that system, built on :mod:`repro.bdd`:

* :func:`parse_program` — the Datalog dialect of the paper's listings,
* :class:`Solver` — stratified, semi-naive, incrementalized evaluation with
  automatic physical-domain assignment and rename minimization,
* :class:`Relation` — attributed BDD relations with tuple-level access.

Typical use::

    from repro.datalog import parse_program, Solver

    program = parse_program(ALGORITHM_1_SOURCE, domain_sizes={"V": 64, "H": 16})
    solver = Solver(program, name_maps={"V": var_names, "H": heap_names})
    solver.add_tuples("vP0", new_statements)
    solver.add_tuples("assign", assignments)
    solver.solve()
    points_to = set(solver.relation("vP").tuples())
"""

from .ast import (
    Atom,
    AttributeDecl,
    Comparison,
    DatalogError,
    DomainDecl,
    DontCare,
    NamedConst,
    NumberConst,
    ProgramAST,
    RelationDecl,
    Rule,
    Variable,
)
from .compiler import compile_rule, instance_requirements
from .explain import Derivation, explain, format_derivation
from .parser import parse_program
from .passes import PASS_NAMES, PassOptions, run_pipeline
from .plan import (
    HoistedSlot,
    Op,
    PlanUnit,
    RulePlan,
    format_plan,
    format_unit,
    validate_plan,
)
from .relation import Attribute, Relation
from .solver import RuleProfile, SolveStats, Solver
from .stratify import Stratum, stratify

__all__ = [
    "Atom",
    "Attribute",
    "AttributeDecl",
    "Comparison",
    "DatalogError",
    "Derivation",
    "DomainDecl",
    "DontCare",
    "HoistedSlot",
    "Op",
    "PASS_NAMES",
    "PassOptions",
    "PlanUnit",
    "RelationDecl",
    "Relation",
    "Rule",
    "RulePlan",
    "RuleProfile",
    "SolveStats",
    "Solver",
    "Stratum",
    "Variable",
    "NamedConst",
    "NumberConst",
    "ProgramAST",
    "compile_rule",
    "explain",
    "format_derivation",
    "format_plan",
    "format_unit",
    "instance_requirements",
    "parse_program",
    "run_pipeline",
    "stratify",
    "validate_plan",
]
