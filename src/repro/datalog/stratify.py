"""Stratification of Datalog programs (Section 2.1).

bddbddb "accepts a subclass of Datalog programs, known as stratified
programs, for which minimal solutions always exist.  Informally, rules in
such programs can be grouped into strata, each with a unique minimal
solution, that can be solved in sequence."

We build the predicate dependency graph (edge ``body -> head``, marked
negative when the body literal is negated or the head depends on it through
a comparison-complement), compute strongly connected components, reject
negative edges inside a component, and emit the condensation in topological
order.  Each stratum carries its rules, separated into the recursive ones
(some body atom's predicate lies in the same stratum) and the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .ast import Atom, DatalogError, ProgramAST, Rule

__all__ = ["Stratum", "stratify"]


@dataclass
class Stratum:
    """One evaluation unit: a set of mutually recursive predicates."""

    index: int
    predicates: Set[str]
    rules: List[Rule] = field(default_factory=list)
    recursive_rules: List[Rule] = field(default_factory=list)

    def is_recursive(self) -> bool:
        return bool(self.recursive_rules)


def _dependency_edges(program: ProgramAST) -> List[Tuple[str, str, bool]]:
    """Edges (body_pred, head_pred, negative?) over all rules."""
    edges = []
    for rule in program.rules:
        head = rule.head.relation
        for item in rule.body:
            if isinstance(item, Atom):
                edges.append((item.relation, head, item.negated))
    return edges


def _tarjan_scc(nodes: Sequence[str], succ: Dict[str, List[str]]) -> List[List[str]]:
    """Iterative Tarjan; components are returned in reverse topological
    order (callees before callers), which we reverse for strata."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(succ.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(succ.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def stratify(program: ProgramAST) -> List[Stratum]:
    """Group the program's rules into strata in evaluation order.

    Raises :class:`DatalogError` if a predicate depends negatively on
    itself (directly or through a cycle) — the program is not stratified.
    """
    preds = set(program.relations)
    edges = _dependency_edges(program)
    succ: Dict[str, List[str]] = {}
    for src, dst, _neg in edges:
        succ.setdefault(src, []).append(dst)
    components = _tarjan_scc(sorted(preds), succ)
    comp_of: Dict[str, int] = {}
    for i, comp in enumerate(components):
        for p in comp:
            comp_of[p] = i
    for src, dst, neg in edges:
        if neg and comp_of[src] == comp_of[dst]:
            raise DatalogError(
                f"program is not stratified: {dst} depends negatively on "
                f"{src} within a recursive component"
            )
    # Tarjan emits components in reverse topological order of the
    # condensation: with edges body -> head, a head's component finishes
    # (and is emitted) before the components feeding it.  Evaluation must
    # run dependencies first, so reverse the emission order.
    components.reverse()
    comp_of = {p: i for i, comp in enumerate(components) for p in comp}
    strata: List[Stratum] = []
    for i, comp in enumerate(components):
        strata.append(Stratum(index=i, predicates=set(comp)))
    for rule in program.rules:
        stratum = strata[comp_of[rule.head.relation]]
        stratum.rules.append(rule)
        recursive = any(
            isinstance(item, Atom) and comp_of[item.relation] == stratum.index
            for item in rule.body
        )
        if recursive:
            stratum.recursive_rules.append(rule)
    return strata
