"""The typed relational-algebra plan IR between the compiler and the solver.

bddbddb is a *compiler*: a rule is lowered into a short straight-line
program of BDD relational operations, and the interesting optimizations
(attribute assignment, rename coalescing, loop-invariant hoisting) are
rewrites over that program — not heuristics buried inside an interpreter.
This module is the IR those rewrites operate on:

* each :class:`Op` is one relational operation (``Load``, ``And``,
  ``Exist``, ``Replace``, ``RelProd``, ``Diff``, ``CopyInto``, ...) in a
  single-assignment register language — ``op.out`` is the register the
  op defines, and operand fields hold register numbers of earlier ops;
* every op carries its **attribute schema**: the tuple of physical
  domain references ``(logical, instance)`` its value ranges over;
* :class:`RulePlan` is one compiled (rule, semi-naive variant) pair;
* :class:`PlanUnit` is a whole program's worth of plans plus the shared
  state the optimizer introduces (hoisted loop-invariant slots, pass
  provenance);
* :func:`validate_plan` checks the structural invariants the executor
  relies on (registers defined before use, schemas consistent, every
  filter applied to attributes the intermediate actually has);
* :func:`format_plan` renders a plan for ``repro datalog --explain-plan``.

The executor lives in :mod:`repro.datalog.solver`; the passes live in
:mod:`repro.datalog.passes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .ast import DatalogError, ProgramAST, Rule, Term

__all__ = [
    "PhysRef",
    "Op",
    "Load",
    "LoadHoisted",
    "Top",
    "Const",
    "Equal",
    "Universe",
    "And",
    "Diff",
    "Exist",
    "Replace",
    "RelProd",
    "RelProdReplace",
    "AndExist",
    "SharedLoad",
    "CopyInto",
    "RulePlan",
    "HoistedSlot",
    "SharedSlot",
    "PlanUnit",
    "ordered_schema",
    "phys_str",
    "validate_plan",
    "format_plan",
    "format_unit",
]

# A physical domain reference: (logical domain name, instance index).
PhysRef = Tuple[str, int]


def ordered_schema(refs: Iterable[PhysRef]) -> Tuple[PhysRef, ...]:
    """Canonical (sorted, deduplicated) schema tuple."""
    return tuple(sorted(set(refs)))


def phys_str(ref: PhysRef) -> str:
    return f"{ref[0]}{ref[1]}"


@dataclass
class Op:
    """One relational operation in single-assignment register form.

    ``out`` is the register this op defines; ``schema`` the physical
    attributes of its value.  Two non-field annotations ride along:

    ``spine``
        True for ops on the accumulator spine — the chain whose value is
        the rule's running intermediate.  The executor short-circuits the
        whole plan to ``FALSE`` the moment a spine value is ``FALSE``
        (the IR form of the old interpreter's ``break``).
    ``origin``
        ``(relation, use_delta, position)`` for ops belonging to one body
        atom's preparation chain (load/filter/project/rename), ``None``
        for spine ops.  The hoisting pass uses this to find the
        loop-invariant chains; the assignment pass uses it to weight
        ``Replace`` ops by how often they actually execute.
    """

    out: int
    schema: Tuple[PhysRef, ...]

    kind: ClassVar[str] = "?"

    def __post_init__(self) -> None:
        self.spine: bool = False
        self.origin: Optional[Tuple[str, bool, int]] = None

    def inputs(self) -> Tuple[int, ...]:
        """Registers this op reads."""
        return ()

    def args_key(self) -> Tuple[Any, ...]:
        """Non-register arguments (for structural CSE keys)."""
        return ()


@dataclass
class Load(Op):
    """Load a relation's BDD — the full relation, or its current delta."""

    relation: str
    use_delta: bool

    kind: ClassVar[str] = "load"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.relation, self.use_delta)


@dataclass
class LoadHoisted(Op):
    """Read a stratum-preamble slot (a hoisted loop-invariant chain)."""

    slot: int

    kind: ClassVar[str] = "load_hoisted"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.slot,)


@dataclass
class Top(Op):
    """The TRUE relation over the empty schema (body-less rules)."""

    kind: ClassVar[str] = "top"


@dataclass
class Const(Op):
    """The single-attribute relation ``{ phys = term }``."""

    phys: PhysRef
    term: Term

    kind: ClassVar[str] = "const"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.phys, repr(self.term))


@dataclass
class Equal(Op):
    """The two-attribute identity relation ``{ a = b }``."""

    a: PhysRef
    b: PhysRef

    kind: ClassVar[str] = "equal"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.a, self.b)


@dataclass
class Universe(Op):
    """The full domain of one physical attribute (unsafe variables)."""

    phys: PhysRef

    kind: ClassVar[str] = "universe"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.phys,)


@dataclass
class And(Op):
    """Conjunction.  ``extends=False`` means ``rhs`` only filters
    attributes ``lhs`` already has (constant filters, duplicate-variable
    equalities, comparisons); ``extends=True`` means ``rhs`` introduces
    new attributes (universe bindings, head constants/equalities)."""

    lhs: int
    rhs: int
    extends: bool

    kind: ClassVar[str] = "and"

    def inputs(self) -> Tuple[int, ...]:
        return (self.lhs, self.rhs)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.extends,)


@dataclass
class Diff(Op):
    """Relational difference (negated atoms, ``!=`` comparisons)."""

    lhs: int
    rhs: int

    kind: ClassVar[str] = "diff"

    def inputs(self) -> Tuple[int, ...]:
        return (self.lhs, self.rhs)


@dataclass
class Exist(Op):
    """Existentially project the given attributes away."""

    src: int
    refs: Tuple[PhysRef, ...]

    kind: ClassVar[str] = "exist"

    def inputs(self) -> Tuple[int, ...]:
        return (self.src,)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.refs,)


@dataclass
class Replace(Op):
    """Simultaneous attribute rename ``src phys -> dst phys`` — the BDD
    ``replace`` whose count the optimizer exists to minimize."""

    src: int
    mapping: Tuple[Tuple[PhysRef, PhysRef], ...]

    kind: ClassVar[str] = "replace"

    def inputs(self) -> Tuple[int, ...]:
        return (self.src,)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.mapping,)


@dataclass
class RelProd(Op):
    """Join two intermediates, projecting ``refs`` in the same pass
    (the fused and-exist at the heart of rule application)."""

    lhs: int
    rhs: int
    refs: Tuple[PhysRef, ...]

    kind: ClassVar[str] = "rel_prod"

    def inputs(self) -> Tuple[int, ...]:
        return (self.lhs, self.rhs)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.refs,)


@dataclass
class RelProdReplace(Op):
    """Fused superop: ``Replace(RelProd(lhs, rhs, refs), mapping)`` as a
    single kernel call.  Produced by the ``fuse`` pass when a rename is
    the sole consumer of a join; an order-safe backend applies the rename
    while building the join result instead of walking it a second time."""

    lhs: int
    rhs: int
    refs: Tuple[PhysRef, ...]
    mapping: Tuple[Tuple[PhysRef, PhysRef], ...]

    kind: ClassVar[str] = "rel_prod_replace"

    def inputs(self) -> Tuple[int, ...]:
        return (self.lhs, self.rhs)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.refs, self.mapping)


@dataclass
class AndExist(Op):
    """Fused superop: ``Exist(And(lhs, rhs), refs)`` as one kernel call.
    Semantically a :class:`RelProd` (the classic bddbddb fusion); kept as
    a distinct kind so executed-op accounting can expand it back to its
    ``and`` + ``exist`` equivalents."""

    lhs: int
    rhs: int
    refs: Tuple[PhysRef, ...]

    kind: ClassVar[str] = "and_exist"

    def inputs(self) -> Tuple[int, ...]:
        return (self.lhs, self.rhs)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.refs,)


@dataclass
class SharedLoad(Op):
    """Read one stratum-shared operand slot.

    The ``fuse`` pass groups the loads that the independent rules of a
    stratum re-issue every fixpoint iteration (deltas and
    stratum-recursive relations) into a single per-iteration operand
    table; each plan then reads its slot instead of re-resolving the
    relation.  The op still carries ``relation``/``use_delta`` so it can
    self-evaluate on paths that run outside the stratum loop (naive
    evaluation, once-rules, delta pushes)."""

    slot: int
    relation: str
    use_delta: bool

    kind: ClassVar[str] = "shared_load"

    def args_key(self) -> Tuple[Any, ...]:
        return (self.slot, self.relation, self.use_delta)


@dataclass
class CopyInto(Op):
    """Terminator: merge the finished head tuples into ``relation``."""

    src: int
    relation: str

    kind: ClassVar[str] = "copy_into"

    def inputs(self) -> Tuple[int, ...]:
        return (self.src,)

    def args_key(self) -> Tuple[Any, ...]:
        return (self.relation,)


@dataclass
class RulePlan:
    """A compiled (rule, semi-naive variant) pair as a linear op program.

    The last op is always the :class:`CopyInto` terminator.  ``source``
    records provenance: ``"greedy"`` for the compiler's local heuristics,
    ``"optimized"`` once the assignment pass replaced the plan with a
    cheaper re-lowering.
    """

    rule: Rule
    head_relation: str
    delta_index: Optional[int]  # positive-atom index evaluated as delta
    ops: List[Op] = field(default_factory=list)
    source: str = "greedy"

    def __post_init__(self) -> None:
        # Per-op execution traces [count, seconds, result_nodes]; filled
        # by the executor only when tracing is on (--explain-plan).
        self.traces: Optional[List[List[float]]] = None
        # Physical domain each variable was bound to during lowering.
        # The assign-domains pass compares its coloring against this to
        # skip re-lowering plans the greedy choice already matches.
        self.var_targets: Dict[str, PhysRef] = {}

    def result_op(self) -> Op:
        if not self.ops:
            raise DatalogError(f"plan for {self.rule} has no ops")
        return self.ops[-1]

    def count_kind(self, kind: str) -> int:
        return sum(1 for op in self.ops if op.kind == kind)

    def phys_refs(self) -> Set[PhysRef]:
        """All physical domains this plan touches (for pool sizing)."""
        refs: Set[PhysRef] = set()
        for op in self.ops:
            refs.update(op.schema)
            if isinstance(op, (Const, Universe)):
                refs.add(op.phys)
            elif isinstance(op, Equal):
                refs.update((op.a, op.b))
            elif isinstance(op, Exist):
                refs.update(op.refs)
            elif isinstance(op, (RelProd, AndExist)):
                refs.update(op.refs)
            elif isinstance(op, Replace):
                for s, d in op.mapping:
                    refs.update((s, d))
            elif isinstance(op, RelProdReplace):
                refs.update(op.refs)
                for s, d in op.mapping:
                    refs.update((s, d))
        return refs


@dataclass
class HoistedSlot:
    """One stratum-preamble slot: a loop-invariant atom-preparation chain
    hoisted out of the fixpoint loop.  ``ops`` are renumbered to local
    registers ``0..len(ops)-1``; the last op's value is the slot value.
    The executor caches it keyed on ``relation``'s version."""

    slot: int
    relation: str
    ops: List[Op]
    key: Tuple[Any, ...] = ()
    #: plan labels sharing this slot (CSE provenance for --explain-plan).
    shared_by: List[str] = field(default_factory=list)


@dataclass
class SharedSlot:
    """One stratum-shared operand: a (relation, use_delta) load that two
    or more of the stratum's recursive plans issue every iteration.  The
    executor fills all of a stratum's slots in one pass at the top of
    each fixpoint iteration; plans read them via :class:`SharedLoad`."""

    slot: int
    relation: str
    use_delta: bool
    schema: Tuple[PhysRef, ...]
    #: plan labels referencing this slot (for --explain-plan).
    shared_by: List[str] = field(default_factory=list)


@dataclass
class PlanUnit:
    """Everything the executor needs: plans, strata, hoisted slots."""

    program: ProgramAST
    plans: Dict[Tuple[int, Optional[int]], RulePlan]
    instances: Dict[str, int]
    hoisted: Dict[int, HoistedSlot] = field(default_factory=dict)
    #: stratum index -> slot ids its plans reference (preamble listing).
    stratum_slots: Dict[int, List[int]] = field(default_factory=dict)
    #: stratum index -> shared operand slots filled once per iteration.
    stratum_shared: Dict[int, List[SharedSlot]] = field(default_factory=dict)
    reorder_rules: bool = False
    applied_passes: List[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def _schema_set(op: Op) -> Set[PhysRef]:
    return set(op.schema)


def validate_plan(
    program: ProgramAST,
    plan: RulePlan,
    hoisted: Optional[Dict[int, HoistedSlot]] = None,
    shared: Optional[Dict[int, SharedSlot]] = None,
) -> None:
    """Check the structural invariants of a lowered (or rewritten) plan.

    Raises :class:`DatalogError` on violation.  Checks, per op kind:

    * every operand register is defined by an earlier op (SSA order);
    * ``And(extends=False)`` only filters attributes the left operand
      already has — i.e. every variable is *bound before use*;
    * ``Exist``/``RelProd`` only project attributes present in their
      inputs; ``Replace`` maps are injective and collision-free;
    * ``Diff`` subtracts a relation whose schema is contained in the
      minuend's (negation/comparison over bound attributes only);
    * the ``CopyInto`` terminator's schema is exactly the head
      relation's declared physical schema.
    """
    defined: Dict[int, Op] = {}
    for op in plan.ops:
        for reg in op.inputs():
            if reg not in defined:
                raise DatalogError(
                    f"plan {plan.rule}: op r{op.out} ({op.kind}) reads "
                    f"undefined register r{reg}"
                )
        if op.out in defined:
            raise DatalogError(
                f"plan {plan.rule}: register r{op.out} defined twice"
            )
        schema = _schema_set(op)
        if isinstance(op, Load):
            decl = program.relations.get(op.relation)
            if decl is None:
                raise DatalogError(f"plan {plan.rule}: unknown relation {op.relation}")
        elif isinstance(op, LoadHoisted):
            if hoisted is None or op.slot not in hoisted:
                raise DatalogError(
                    f"plan {plan.rule}: load of unknown hoisted slot {op.slot}"
                )
            slot_schema = set(hoisted[op.slot].ops[-1].schema)
            if slot_schema != schema:
                raise DatalogError(
                    f"plan {plan.rule}: slot {op.slot} schema {slot_schema} "
                    f"!= op schema {schema}"
                )
        elif isinstance(op, And):
            lhs, rhs = defined[op.lhs], defined[op.rhs]
            union = _schema_set(lhs) | _schema_set(rhs)
            if schema != union:
                raise DatalogError(
                    f"plan {plan.rule}: And r{op.out} schema {schema} != "
                    f"union {union}"
                )
            if not op.extends and not _schema_set(rhs) <= _schema_set(lhs):
                raise DatalogError(
                    f"plan {plan.rule}: filtering And r{op.out} uses unbound "
                    f"attributes {_schema_set(rhs) - _schema_set(lhs)}"
                )
        elif isinstance(op, Diff):
            lhs, rhs = defined[op.lhs], defined[op.rhs]
            if schema != _schema_set(lhs):
                raise DatalogError(
                    f"plan {plan.rule}: Diff r{op.out} schema mismatch"
                )
            if not _schema_set(rhs) <= _schema_set(lhs):
                raise DatalogError(
                    f"plan {plan.rule}: Diff r{op.out} subtrahend uses unbound "
                    f"attributes {_schema_set(rhs) - _schema_set(lhs)}"
                )
        elif isinstance(op, Exist):
            src = _schema_set(defined[op.src])
            refs = set(op.refs)
            if not refs <= src:
                raise DatalogError(
                    f"plan {plan.rule}: Exist r{op.out} projects attributes "
                    f"{refs - src} not in its input"
                )
            if schema != src - refs:
                raise DatalogError(
                    f"plan {plan.rule}: Exist r{op.out} schema mismatch"
                )
        elif isinstance(op, Replace):
            src = _schema_set(defined[op.src])
            sources = [s for s, _ in op.mapping]
            targets = [d for _, d in op.mapping]
            if len(set(sources)) != len(sources) or len(set(targets)) != len(targets):
                raise DatalogError(
                    f"plan {plan.rule}: Replace r{op.out} map not injective"
                )
            if not set(sources) <= src:
                raise DatalogError(
                    f"plan {plan.rule}: Replace r{op.out} renames attributes "
                    f"{set(sources) - src} not in its input"
                )
            stay = src - set(sources)
            clash = stay & set(targets)
            if clash:
                raise DatalogError(
                    f"plan {plan.rule}: Replace r{op.out} targets collide "
                    f"with in-place attributes {clash}"
                )
            for s, d in op.mapping:
                if s[0] != d[0]:
                    raise DatalogError(
                        f"plan {plan.rule}: Replace r{op.out} maps across "
                        f"logical domains {s} -> {d}"
                    )
            if schema != stay | set(targets):
                raise DatalogError(
                    f"plan {plan.rule}: Replace r{op.out} schema mismatch"
                )
        elif isinstance(op, (RelProd, AndExist)):
            lhs = _schema_set(defined[op.lhs])
            rhs = _schema_set(defined[op.rhs])
            refs = set(op.refs)
            if not refs <= (lhs | rhs):
                raise DatalogError(
                    f"plan {plan.rule}: {type(op).__name__} r{op.out} projects "
                    f"attributes {refs - (lhs | rhs)} not in its inputs"
                )
            if schema != (lhs | rhs) - refs:
                raise DatalogError(
                    f"plan {plan.rule}: {type(op).__name__} r{op.out} schema "
                    f"mismatch"
                )
        elif isinstance(op, RelProdReplace):
            lhs = _schema_set(defined[op.lhs])
            rhs = _schema_set(defined[op.rhs])
            refs = set(op.refs)
            if not refs <= (lhs | rhs):
                raise DatalogError(
                    f"plan {plan.rule}: RelProdReplace r{op.out} projects "
                    f"attributes {refs - (lhs | rhs)} not in its inputs"
                )
            joined = (lhs | rhs) - refs
            sources = [s for s, _ in op.mapping]
            targets = [d for _, d in op.mapping]
            if len(set(sources)) != len(sources) or len(set(targets)) != len(targets):
                raise DatalogError(
                    f"plan {plan.rule}: RelProdReplace r{op.out} map not injective"
                )
            if not set(sources) <= joined:
                raise DatalogError(
                    f"plan {plan.rule}: RelProdReplace r{op.out} renames "
                    f"attributes {set(sources) - joined} not in the join result"
                )
            stay = joined - set(sources)
            clash = stay & set(targets)
            if clash:
                raise DatalogError(
                    f"plan {plan.rule}: RelProdReplace r{op.out} targets "
                    f"collide with in-place attributes {clash}"
                )
            for s, d in op.mapping:
                if s[0] != d[0]:
                    raise DatalogError(
                        f"plan {plan.rule}: RelProdReplace r{op.out} maps "
                        f"across logical domains {s} -> {d}"
                    )
            if schema != stay | set(targets):
                raise DatalogError(
                    f"plan {plan.rule}: RelProdReplace r{op.out} schema mismatch"
                )
        elif isinstance(op, SharedLoad):
            decl = program.relations.get(op.relation)
            if decl is None:
                raise DatalogError(f"plan {plan.rule}: unknown relation {op.relation}")
            if shared is not None:
                slot = shared.get(op.slot)
                if slot is None:
                    raise DatalogError(
                        f"plan {plan.rule}: load of unknown shared slot {op.slot}"
                    )
                if (slot.relation, slot.use_delta) != (op.relation, op.use_delta):
                    raise DatalogError(
                        f"plan {plan.rule}: shared slot {op.slot} holds "
                        f"{slot.relation}/{slot.use_delta}, op expects "
                        f"{op.relation}/{op.use_delta}"
                    )
        elif isinstance(op, CopyInto):
            decl = program.relations.get(op.relation)
            if decl is None:
                raise DatalogError(f"plan {plan.rule}: unknown head {op.relation}")
            head_schema = {
                (attr.domain, inst)
                for attr, inst in zip(decl.attributes, decl.resolved_instances())
            }
            if schema != head_schema:
                raise DatalogError(
                    f"plan {plan.rule}: CopyInto schema {schema} != declared "
                    f"head schema {head_schema}"
                )
        defined[op.out] = op
    if not plan.ops or not isinstance(plan.ops[-1], CopyInto):
        raise DatalogError(f"plan {plan.rule}: missing CopyInto terminator")


# ----------------------------------------------------------------------
# Rendering (--explain-plan)
# ----------------------------------------------------------------------


def _refs_str(refs: Iterable[PhysRef]) -> str:
    return ",".join(phys_str(r) for r in sorted(refs))


def format_op(op: Op) -> str:
    if isinstance(op, Load):
        what = f"delta({op.relation})" if op.use_delta else op.relation
        body = f"Load {what}"
    elif isinstance(op, LoadHoisted):
        body = f"LoadHoisted slot#{op.slot}"
    elif isinstance(op, Top):
        body = "Top"
    elif isinstance(op, Const):
        body = f"Const {phys_str(op.phys)}={op.term}"
    elif isinstance(op, Equal):
        body = f"Equal {phys_str(op.a)}={phys_str(op.b)}"
    elif isinstance(op, Universe):
        body = f"Universe {phys_str(op.phys)}"
    elif isinstance(op, And):
        mode = "extend" if op.extends else "filter"
        body = f"And r{op.lhs}, r{op.rhs} ({mode})"
    elif isinstance(op, Diff):
        body = f"Diff r{op.lhs}, r{op.rhs}"
    elif isinstance(op, Exist):
        body = f"Exist r{op.src} drop [{_refs_str(op.refs)}]"
    elif isinstance(op, Replace):
        moves = " ".join(
            f"{phys_str(s)}->{phys_str(d)}" for s, d in op.mapping
        )
        body = f"Replace r{op.src} {{{moves}}}"
    elif isinstance(op, RelProd):
        body = f"RelProd r{op.lhs}, r{op.rhs} over [{_refs_str(op.refs)}]"
    elif isinstance(op, RelProdReplace):
        moves = " ".join(
            f"{phys_str(s)}->{phys_str(d)}" for s, d in op.mapping
        )
        body = (
            f"RelProdReplace r{op.lhs}, r{op.rhs} over "
            f"[{_refs_str(op.refs)}] {{{moves}}}"
        )
    elif isinstance(op, AndExist):
        body = f"AndExist r{op.lhs}, r{op.rhs} drop [{_refs_str(op.refs)}]"
    elif isinstance(op, SharedLoad):
        what = f"delta({op.relation})" if op.use_delta else op.relation
        body = f"SharedLoad slot#{op.slot} ({what})"
    elif isinstance(op, CopyInto):
        body = f"CopyInto {op.relation} <- r{op.src}"
    else:  # pragma: no cover - future op kinds
        body = op.kind
    return f"r{op.out} = {body}"


def _trace_note(trace: Optional[List[float]]) -> str:
    if not trace or not trace[0]:
        return ""
    count, seconds, nodes = trace
    return f"   [x{int(count)}  {seconds:.3f}s  {int(nodes)} nodes]"


def format_plan(plan: RulePlan, indent: str = "  ") -> List[str]:
    variant = (
        "once" if plan.delta_index is None else f"delta=atom{plan.delta_index}"
    )
    lines = [f"plan [{variant}, {plan.source}] {plan.rule}"]
    widest = max((len(format_op(op)) for op in plan.ops), default=0)
    for i, op in enumerate(plan.ops):
        text = format_op(op)
        trace = plan.traces[i] if plan.traces else None
        note = _trace_note(trace)
        schema = f"{{{_refs_str(op.schema)}}}"
        lines.append(f"{indent}{text.ljust(widest)}  :: {schema}{note}")
    return lines


def format_unit(
    unit: PlanUnit,
    strata,
    executed_only: bool = False,
) -> str:
    """Render a whole unit: per-stratum preamble slots, then plans.

    ``executed_only`` limits recursive strata to their delta variants
    (the plans semi-naive evaluation actually runs) — with it off every
    compiled variant is shown.
    """
    rule_index = {id(rule): i for i, rule in enumerate(unit.program.rules)}
    lines: List[str] = []
    if unit.applied_passes:
        lines.append(f"optimizer passes: {', '.join(unit.applied_passes)}")
    else:
        lines.append("optimizer passes: (none — unoptimized plans)")
    for s_idx, stratum in enumerate(strata):
        if not stratum.rules:
            continue
        preds = ",".join(sorted(stratum.predicates))
        lines.append(f"stratum {s_idx} [{preds}]")
        for slot_id in unit.stratum_slots.get(s_idx, ()):
            slot = unit.hoisted[slot_id]
            lines.append(
                f"  slot#{slot.slot}: loop-invariant {slot.relation} "
                f"(shared by {len(slot.shared_by)} plan(s))"
            )
            for op in slot.ops:
                lines.append(f"    {format_op(op)}")
        for shared in unit.stratum_shared.get(s_idx, ()):
            what = (
                f"delta({shared.relation})" if shared.use_delta else shared.relation
            )
            lines.append(
                f"  shared#{shared.slot}: per-iteration operand {what} "
                f"(shared by {len(shared.shared_by)} plan(s))"
            )
        recursive = set(map(id, stratum.recursive_rules))
        for rule in stratum.rules:
            ridx = rule_index[id(rule)]
            n_pos = len(rule.positive_atoms)
            if id(rule) not in recursive:
                variants: List[Optional[int]] = [None]
            elif executed_only:
                variants = [
                    i
                    for i, atom in enumerate(rule.positive_atoms)
                    if atom.relation in stratum.predicates
                ]
            else:
                variants = [None] + list(range(n_pos))
            for variant in variants:
                plan = unit.plans.get((ridx, variant))
                if plan is None:
                    continue
                for line in format_plan(plan):
                    lines.append("  " + line)
    return "\n".join(lines)
