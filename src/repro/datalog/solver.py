"""Semi-naive BDD-based Datalog solver (the bddbddb engine, Section 2.4).

The solver owns the BDD manager, the pool of physical finite domains, and
one :class:`~repro.datalog.relation.Relation` per declared predicate.  It
evaluates the program stratum by stratum; within a recursive stratum it
runs *incrementalized* (semi-naive) fixpoint iteration: each rule is
compiled into one plan per choice of "delta atom", and only tuples that are
new since the previous iteration flow through the rule bodies.  Rules whose
body does not mention the stratum's predicates are applied exactly once
("rule application order" optimization), and body atoms whose relations are
loop-invariant within the stratum have their prepared BDDs cached
("loop-invariant relations" optimization).  A ``naive=True`` switch
disables incrementalization for the ablation benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..bdd import (
    BDDError,
    Domain,
    FALSE,
    TRUE,
    bits_for,
    create_kernel,
    resolve_backend_name,
)
from ..bdd.domain import equality_relation
from ..bdd.ordering import assign_levels
from ..runtime import faults
from ..runtime.budget import ResourceBudget, Watchdog
from ..runtime.errors import IterationLimitExceeded, ReproError
from .ast import DatalogError, NamedConst, NumberConst, ProgramAST, Term
from .compiler import (
    AtomPrep,
    AtomStep,
    ComparisonStep,
    FinalStep,
    NegAtomStep,
    PhysRef,
    RulePlan,
    UniverseStep,
    _Allocator,
    compile_rule,
)
from .relation import Attribute, Relation
from .stratify import Stratum, stratify

__all__ = ["RuleProfile", "Solver", "SolveStats"]

_MAX_ITERATIONS = 100_000


@dataclass
class RuleProfile:
    """Per-rule evaluation profile (the data behind bddbddb's rule-order
    optimization: expensive rules are candidates for reordering)."""

    rule: str
    applications: int = 0
    seconds: float = 0.0
    tuples_produced: int = 0  # number of applications yielding new tuples


@dataclass
class SolveStats:
    """Counters the benchmark harness reports (Figure 4 columns)."""

    seconds: float = 0.0
    iterations: int = 0
    rule_applications: int = 0
    peak_nodes: int = 0
    strata: int = 0
    # Operation-cache pressure: the high-water entry count across the
    # manager's caches and how often the cap cleared them.  Cached entries
    # also count toward the node budget (see Watchdog.check).
    peak_cache_entries: int = 0
    cache_clears: int = 0
    # Which BddKernel backend produced these numbers (provenance for the
    # benchmark tables and the differential harness).
    backend: str = ""

    @property
    def peak_bytes(self) -> int:
        """Memory proxy: 16 bytes per BDD node (var + low + high + hash)."""
        return self.peak_nodes * 16


class Solver:
    """Evaluate a parsed Datalog program over BDD relations."""

    def __init__(
        self,
        program: ProgramAST,
        order_spec: Optional[str] = None,
        name_maps: Optional[Dict[str, Sequence[str]]] = None,
        naive: bool = False,
        gc_threshold: int = 4_000_000,
        cache_limit: int = 2_000_000,
        budget: Optional[ResourceBudget] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.program = program
        self.naive = naive
        self.budget = budget
        # Resolve the kernel backend once (explicit argument beats the
        # REPRO_BDD_BACKEND environment variable beats the default) so the
        # choice is recorded even if the environment later changes.
        self.backend = resolve_backend_name(backend)
        self.gc_threshold = gc_threshold
        self.cache_limit = cache_limit
        self.name_maps: Dict[str, List[str]] = {
            k: list(v) for k, v in (name_maps or {}).items()
        }
        self._reverse_maps: Dict[str, Dict[str, int]] = {
            dom: {name: i for i, name in enumerate(names)}
            for dom, names in self.name_maps.items()
        }
        # Compile every rule variant once; the allocator's high-water marks
        # tell us how many physical instances each logical domain needs.
        allocator = _Allocator()
        for decl in program.relations.values():
            for attr, inst in zip(decl.attributes, decl.resolved_instances()):
                allocator.note((attr.domain, inst))
        self._plans: Dict[Tuple[int, Optional[int]], RulePlan] = {}
        for rule_idx, rule in enumerate(program.rules):
            n_pos = len(rule.positive_atoms)
            variants: List[Optional[int]] = [None]
            variants.extend(range(n_pos))
            for variant in variants:
                self._plans[(rule_idx, variant)] = compile_rule(
                    program, rule, variant, allocator
                )
        self._instances = dict(allocator.high_water)
        # Build the physical domain pool under the requested variable order.
        domain_bits: Dict[str, int] = {}
        for logical, count in self._instances.items():
            size = program.domains[logical].size
            for i in range(count):
                domain_bits[f"{logical}{i}"] = bits_for(size)
        self.order_spec = (
            self._expand_order_spec(order_spec)
            if order_spec
            else self.default_order_spec()
        )
        levels = assign_levels(self.order_spec, domain_bits)
        total_bits = sum(domain_bits.values())
        self.manager = create_kernel(
            num_vars=total_bits, cache_limit=cache_limit, backend=self.backend
        )
        self._pool: Dict[PhysRef, Domain] = {}
        for logical, count in self._instances.items():
            size = program.domains[logical].size
            for i in range(count):
                name = f"{logical}{i}"
                self._pool[(logical, i)] = Domain(
                    self.manager, name, size, levels[name]
                )
        # One runtime relation per declaration.
        self.relations: Dict[str, Relation] = {}
        for decl in program.relations.values():
            attrs = []
            for attr, inst in zip(decl.attributes, decl.resolved_instances()):
                attrs.append(
                    Attribute(attr.name, attr.domain, self._pool[(attr.domain, inst)])
                )
            self.relations[decl.name] = Relation(self.manager, decl.name, attrs)
        self._prep_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.stats = SolveStats()
        self._profiles: Dict[int, RuleProfile] = {
            i: RuleProfile(rule=str(rule))
            for i, rule in enumerate(program.rules)
        }
        self._rule_of_plan: Dict[int, int] = {}
        for (rule_idx, _variant), plan in self._plans.items():
            self._rule_of_plan[id(plan)] = rule_idx
        self._solved = False
        self._watchdog: Optional[Watchdog] = None
        # Resume bookkeeping: index of the last stratum that reached
        # fixpoint, and the one executing when a budget fault fired.
        self.last_completed_stratum = -1
        self._current_stratum: Optional[Stratum] = None
        self._current_stratum_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _expand_order_spec(self, spec: str) -> str:
        """Expand logical domain names in an order spec to their physical
        instances: ``"C_V0xV1"`` becomes ``"C0xC1_V0xV1"`` when C has two
        instances.  Physical names pass through unchanged.  Domains the
        spec does not mention are appended at the end (each logical
        domain's instances interleaved), so partial specs stay valid when
        a program grows new domains."""
        groups_out = []
        mentioned = set()
        for group in spec.split("_"):
            members = []
            for member in group.split("x"):
                if member in self.program.domains:
                    count = self._instances.get(member, 0)
                    expanded = [f"{member}{i}" for i in range(count)]
                    members.extend(expanded)
                    mentioned.update(expanded)
                else:
                    members.append(member)
                    mentioned.add(member)
            if members:
                groups_out.append("x".join(members))
        for logical in self.program.domains:
            count = self._instances.get(logical, 0)
            missing = [
                f"{logical}{i}"
                for i in range(count)
                if f"{logical}{i}" not in mentioned
            ]
            if missing:
                groups_out.append("x".join(missing))
        return "_".join(groups_out)

    def default_order_spec(self) -> str:
        """Interleave all instances of each logical domain, groups in
        declaration order — the shape bddbddb's order search converges to
        for these programs (related attributes adjacent)."""
        groups = []
        for logical in self.program.domains:
            count = self._instances.get(logical, 0)
            if count == 0:
                continue
            groups.append("x".join(f"{logical}{i}" for i in range(count)))
        return "_".join(groups)

    def phys_domain(self, logical: str, instance: int = 0) -> Domain:
        return self._pool[(logical, instance)]

    def relation(self, name: str) -> Relation:
        rel = self.relations.get(name)
        if rel is None:
            raise DatalogError(f"unknown relation {name}")
        return rel

    def add_tuples(self, name: str, tuples: Iterable[Sequence[int]]) -> None:
        rel = self.relation(name)
        node = rel.node
        for values in tuples:
            node = self.manager.or_(node, rel._tuple_node(values))
        rel.set_node(node)

    def set_node(self, name: str, node: int) -> None:
        """Install a pre-built BDD (e.g. the IEC relation of Algorithm 4)."""
        self.relation(name).set_node(node)

    def named_tuples(self, name: str):
        """Iterate tuples with ordinals translated through the name maps."""
        rel = self.relation(name)
        maps = [self.name_maps.get(a.logical) for a in rel.attributes]
        for values in rel.tuples():
            yield tuple(
                m[v] if m is not None and v < len(m) else v
                for m, v in zip(maps, values)
            )

    def resolve_const(self, logical: str, term: Term) -> int:
        if isinstance(term, NumberConst):
            value = term.value
        elif isinstance(term, NamedConst):
            table = self._reverse_maps.get(logical)
            if table is None or term.name not in table:
                raise DatalogError(
                    f'named constant "{term.name}" not found in domain {logical}'
                )
            value = table[term.name]
        else:
            raise DatalogError(f"not a constant term: {term}")
        size = self.program.domains[logical].size
        if not 0 <= value < size:
            raise DatalogError(
                f"constant {value} out of range for domain {logical} (size {size})"
            )
        return value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def solve(self, start_stratum: int = 0) -> SolveStats:
        """Run the program to fixpoint; returns evaluation statistics.

        ``start_stratum`` skips strata that are already at fixpoint — used
        when resuming from a checkpoint (semi-naive evaluation restarts
        the interrupted stratum with full deltas, which is sound because
        relations only grow toward the fixpoint).

        When a :class:`ResourceBudget` is attached, budget faults surface
        as :class:`ReproError` subclasses carrying the partial statistics
        and the stratum that was executing.
        """
        start = time.monotonic()
        strata = stratify(self.program)
        self.stats.strata = len(strata)
        rule_index = {id(rule): i for i, rule in enumerate(self.program.rules)}
        self.last_completed_stratum = start_stratum - 1
        if self.budget is not None:
            self._watchdog = Watchdog(self.budget, self.manager)
            self.manager.set_watchdog(
                self._watchdog.check, stride=self._watchdog.stride
            )
        try:
            for index, stratum in enumerate(strata):
                if index < start_stratum:
                    continue
                self._current_stratum = stratum
                self._current_stratum_index = index
                if faults.armed:
                    faults.fire("solver.stratum")
                if stratum.rules:
                    recursive = set(map(id, stratum.recursive_rules))
                    once_rules = [
                        r for r in stratum.rules if id(r) not in recursive
                    ]
                    # Rules with no recursive dependency run exactly once.
                    for rule in once_rules:
                        plan = self._plans[(rule_index[id(rule)], None)]
                        self._apply_plan(plan, None, stratum)
                    if stratum.recursive_rules:
                        if self.naive:
                            self._solve_stratum_naive(stratum, rule_index)
                        else:
                            self._solve_stratum_seminaive(stratum, rule_index)
                self.last_completed_stratum = index
        except ReproError as err:
            self.stats.seconds = time.monotonic() - start
            self._record_manager_stats()
            if err.stats is None:
                err.stats = self.stats
            if err.completed_strata is None:
                err.completed_strata = self.last_completed_stratum + 1
            if err.stratum is None and self._current_stratum is not None:
                err.stratum = sorted(self._current_stratum.predicates)
            raise
        finally:
            self.manager.clear_watchdog()
            self._watchdog = None
            self._current_stratum = None
            self._current_stratum_index = None
        self.stats.seconds = time.monotonic() - start
        self._record_manager_stats()
        self._solved = True
        return self.stats

    def _record_manager_stats(self) -> None:
        m = self.manager
        self.stats.peak_nodes = m.peak_nodes
        entries = m.cache_entries()
        if entries > m.peak_cache_entries:
            m.peak_cache_entries = entries
        self.stats.peak_cache_entries = m.peak_cache_entries
        self.stats.cache_clears = m.cache_clears
        self.stats.backend = m.backend_name

    def _iteration_limit(self) -> int:
        if self.budget is not None and self.budget.max_iterations is not None:
            return self.budget.max_iterations
        return _MAX_ITERATIONS

    def _iteration_limit_error(self, stratum: Stratum, limit: int) -> IterationLimitExceeded:
        rules = [str(rule) for rule in stratum.recursive_rules]
        return IterationLimitExceeded(
            f"stratum {sorted(stratum.predicates)} did not converge within "
            f"{limit} iterations (rules: {'; '.join(rules)})",
            iterations=limit,
            rules=rules,
            stratum=sorted(stratum.predicates),
        )

    def _solve_stratum_seminaive(
        self, stratum: Stratum, rule_index: Dict[int, int]
    ) -> None:
        m = self.manager
        deltas: Dict[str, int] = {}
        for pred in stratum.predicates:
            deltas[pred] = self.relations[pred].node
        limit = self._iteration_limit()
        for iteration in range(limit):
            self.stats.iterations += 1
            if faults.armed:
                faults.fire("solver.stratum")
            if self._watchdog is not None:
                self._watchdog.check()
            contributions: Dict[str, int] = {p: FALSE for p in stratum.predicates}
            for rule in stratum.recursive_rules:
                ridx = rule_index[id(rule)]
                for atom_pos, atom in enumerate(rule.positive_atoms):
                    if atom.relation not in stratum.predicates:
                        continue
                    if deltas.get(atom.relation, FALSE) == FALSE:
                        continue  # nothing new flows through this variant
                    plan = self._plans[(ridx, atom_pos)]
                    result = self._apply_plan(plan, deltas, stratum, defer=True)
                    head = plan.head_relation
                    contributions[head] = m.or_(contributions[head], result)
            progressed = False
            for pred in stratum.predicates:
                rel = self.relations[pred]
                delta = m.diff(contributions[pred], rel.node)
                deltas[pred] = delta
                if delta != FALSE:
                    rel.set_node(m.or_(rel.node, delta))
                    progressed = True
            if not progressed:
                return
            if self.manager.node_count() >= self.gc_threshold:
                preds = list(deltas)
                roots = [deltas[p] for p in preds]
                self._maybe_gc(extra_roots=roots)
                deltas = dict(zip(preds, roots))
            elif self.manager.cache_entries() > self.cache_limit:
                # Operation caches dominate memory on long fixpoints; the
                # lost memoization is recomputed cheaply against the
                # (small) deltas of later iterations.
                self.manager.clear_caches()
        raise self._iteration_limit_error(stratum, limit)

    def _solve_stratum_naive(self, stratum: Stratum, rule_index: Dict[int, int]) -> None:
        """Reference evaluation without incrementalization (ablation)."""
        limit = self._iteration_limit()
        for iteration in range(limit):
            self.stats.iterations += 1
            if self._watchdog is not None:
                self._watchdog.check()
            progressed = False
            for rule in stratum.recursive_rules:
                plan = self._plans[(rule_index[id(rule)], None)]
                delta = self._apply_plan(plan, None, stratum)
                if delta != FALSE:
                    progressed = True
            if not progressed:
                return
        raise self._iteration_limit_error(stratum, limit)

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------

    def _apply_plan(
        self,
        plan: RulePlan,
        deltas: Optional[Dict[str, int]],
        stratum: Stratum,
        defer: bool = False,
    ) -> int:
        """Execute one compiled rule variant.

        When ``defer`` is set, the resulting head tuples are returned
        without being merged into the head relation (the semi-naive loop
        batches contributions per iteration); otherwise the head relation is
        updated and the delta returned.
        """
        self.stats.rule_applications += 1
        if self._watchdog is not None:
            self._watchdog.check()
        profile = self._profiles[self._rule_of_plan[id(plan)]]
        profile.applications += 1
        apply_start = time.monotonic()
        m = self.manager
        current = TRUE
        first = True
        for step in plan.steps:
            if isinstance(step, AtomStep):
                node = self._prep_node(plan, step, deltas, stratum)
                if first:
                    current = node
                    first = False
                else:
                    varset = m.varset(self._levels(step.join_project))
                    current = m.rel_prod(current, node, varset)
            elif isinstance(step, UniverseStep):
                dom = self._pool[step.phys]
                current = m.and_(current, dom.full_bdd())
                first = False
            elif isinstance(step, ComparisonStep):
                left = self._pool[step.left_phys]
                if step.right_phys is not None:
                    probe = equality_relation(left, self._pool[step.right_phys])
                else:
                    value = self.resolve_const(step.left_phys[0], step.right_const)
                    probe = left.eq_const(value)
                if step.op == "=":
                    current = m.and_(current, probe)
                else:
                    current = m.diff(current, probe)
                if step.project_after:
                    current = m.exist(
                        current, m.varset(self._levels(step.project_after))
                    )
            elif isinstance(step, NegAtomStep):
                node = self._prep_only(step.prep)
                current = m.diff(current, node)
                if step.project_after:
                    current = m.exist(
                        current, m.varset(self._levels(step.project_after))
                    )
            if current == FALSE:
                break
        # Final projection and rename into the head schema.
        final = plan.final
        if current != FALSE:
            if final.project:
                current = m.exist(current, m.varset(self._levels(final.project)))
            if final.rename:
                current = m.replace(current, self._rename_id(final.rename))
            for phys, term in final.head_consts:
                value = self.resolve_const(phys[0], term)
                current = m.and_(current, self._pool[phys].eq_const(value))
            for keep, dup in final.head_equalities:
                current = m.and_(
                    current, equality_relation(self._pool[keep], self._pool[dup])
                )
        profile.seconds += time.monotonic() - apply_start
        if defer:
            if current != FALSE:
                profile.tuples_produced += 1
            return current
        delta = self.relations[plan.head_relation].union_node(current)
        if delta != FALSE:
            profile.tuples_produced += 1
        return delta

    def _prep_node(
        self,
        plan: RulePlan,
        step: AtomStep,
        deltas: Optional[Dict[str, int]],
        stratum: Stratum,
    ) -> int:
        prep = step.prep
        rel = self.relations[prep.relation]
        if step.use_delta:
            if deltas is None:
                raise DatalogError("delta variant executed without deltas")
            base = deltas.get(prep.relation, FALSE)
            return self._prep_transform(prep, base)
        # Loop-invariant caching: relations outside the current stratum
        # cannot change while it iterates.
        cacheable = prep.relation not in stratum.predicates
        key = (id(plan), id(step))
        if cacheable:
            hit = self._prep_cache.get(key)
            if hit is not None and hit[0] == rel.version:
                return hit[1]
        node = self._prep_transform(prep, rel.node)
        if cacheable:
            self._prep_cache[key] = (rel.version, node)
        return node

    def _prep_only(self, prep: AtomPrep) -> int:
        return self._prep_transform(prep, self.relations[prep.relation].node)

    def _prep_transform(self, prep: AtomPrep, node: int) -> int:
        m = self.manager
        for phys, term in prep.const_filters:
            value = self.resolve_const(phys[0], term)
            node = m.and_(node, self._pool[phys].eq_const(value))
        for keep, dup in prep.dup_equalities:
            node = m.and_(node, equality_relation(self._pool[keep], self._pool[dup]))
        if prep.project:
            node = m.exist(node, m.varset(self._levels(prep.project)))
        if prep.rename:
            node = m.replace(node, self._rename_id(prep.rename))
        return node

    def _levels(self, refs: Iterable[PhysRef]) -> List[int]:
        out: List[int] = []
        for ref in refs:
            out.extend(self._pool[ref].levels)
        return out

    def _rename_id(self, mapping: Dict[PhysRef, PhysRef]) -> int:
        level_map: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_dom, dst_dom = self._pool[src], self._pool[dst]
            if dst_dom.bits < src_dom.bits:
                raise BDDError(
                    f"rename {src} -> {dst} narrows {src_dom.bits} bits to "
                    f"{dst_dom.bits}"
                )
            for i in range(src_dom.bits):
                s = src_dom.levels[src_dom.bits - 1 - i]
                d = dst_dom.levels[dst_dom.bits - 1 - i]
                if s != d:
                    level_map[s] = d
        return self.manager.replace_map(level_map)

    def rule_profile(self) -> List[RuleProfile]:
        """Per-rule evaluation profile, most expensive first."""
        return sorted(
            self._profiles.values(), key=lambda p: p.seconds, reverse=True
        )

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _maybe_gc(self, extra_roots: Optional[List[int]] = None) -> None:
        if self.manager.node_count() < self.gc_threshold:
            return
        roots = [rel.node for rel in self.relations.values()]
        cached = list(self._prep_cache.items())
        roots.extend(node for _, (_, node) in cached)
        if extra_roots:
            roots.extend(extra_roots)
        mapping = self.manager.collect_garbage(roots)
        for rel in self.relations.values():
            rel.remap(mapping)
        self._prep_cache = {
            key: (version, mapping[node]) for key, (version, node) in cached
        }
        if extra_roots:
            extra_roots[:] = [mapping[n] for n in extra_roots]
