"""Semi-naive BDD-based Datalog solver (the bddbddb engine, Section 2.4).

The solver owns the BDD manager, the pool of physical finite domains, and
one :class:`~repro.datalog.relation.Relation` per declared predicate.  It
evaluates the program stratum by stratum; within a recursive stratum it
runs *incrementalized* (semi-naive) fixpoint iteration: each rule is
compiled into one plan per choice of "delta atom", and only tuples that are
new since the previous iteration flow through the rule bodies.  Rules whose
body does not mention the stratum's predicates are applied exactly once
("rule application order" optimization).  A ``naive=True`` switch disables
incrementalization for the ablation benchmark.

Since the plan-IR refactor the solver is an *executor*: rules are lowered
to the register op programs of :mod:`repro.datalog.plan`, the optimizer
passes of :mod:`repro.datalog.passes` rewrite them (attribute assignment,
rename coalescing, loop-invariant hoisting into stratum preamble slots,
profile-guided rule reordering), and :meth:`Solver._apply_plan` interprets
the result op by op, tallying executed operations per kind into
``SolveStats.plan_ops`` and — under ``trace_ops=True`` — recording per-op
timing and result sizes for ``repro datalog --explain-plan``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..bdd import (
    BDDError,
    Domain,
    FALSE,
    TRUE,
    bits_for,
    create_kernel,
    resolve_backend_name,
)
from ..bdd.domain import equality_relation
from ..bdd.ordering import assign_levels
from ..runtime import faults
from ..runtime.budget import ResourceBudget, Watchdog
from ..runtime.errors import IterationLimitExceeded, ReproError
from .ast import DatalogError, NamedConst, NumberConst, ProgramAST, Term
from .compiler import PhysRef, _Allocator, compile_rule
from .passes import PassOptions, run_pipeline
from .plan import Op, PlanUnit, RulePlan, format_unit
from .relation import Attribute, Relation, bdd_size
from .stratify import Stratum, stratify

__all__ = ["RuleProfile", "Solver", "SolveStats"]

_MAX_ITERATIONS = 100_000


@dataclass
class RuleProfile:
    """Per-rule evaluation profile (the data behind bddbddb's rule-order
    optimization: expensive rules are candidates for reordering)."""

    rule: str
    applications: int = 0
    seconds: float = 0.0
    tuples_produced: int = 0  # number of applications yielding new tuples


@dataclass
class SolveStats:
    """Counters the benchmark harness reports (Figure 4 columns)."""

    seconds: float = 0.0
    iterations: int = 0
    rule_applications: int = 0
    peak_nodes: int = 0
    strata: int = 0
    # Operation-cache pressure: the high-water entry count across the
    # manager's caches and how often the cap cleared them.  Cached entries
    # also count toward the node budget (see Watchdog.check).
    peak_cache_entries: int = 0
    cache_clears: int = 0
    # Which BddKernel backend produced these numbers (provenance for the
    # benchmark tables and the differential harness).
    backend: str = ""
    # Executed plan operations by op kind ("replace", "rel_prod", ...):
    # the observable the plan optimizer exists to shrink.  Ops inside
    # hoisted preamble slots count only when the slot actually
    # re-evaluates, so a hoisting win shows up here directly.
    plan_ops: Dict[str, int] = field(default_factory=dict)

    @property
    def peak_bytes(self) -> int:
        """Memory proxy: 16 bytes per BDD node (var + low + high + hash)."""
        return self.peak_nodes * 16


class Solver:
    """Evaluate a parsed Datalog program over BDD relations."""

    def __init__(
        self,
        program: ProgramAST,
        order_spec: Optional[str] = None,
        name_maps: Optional[Dict[str, Sequence[str]]] = None,
        naive: bool = False,
        gc_threshold: int = 4_000_000,
        cache_limit: int = 2_000_000,
        budget: Optional[ResourceBudget] = None,
        backend: Optional[str] = None,
        optimize: Optional[bool] = None,
        disabled_passes: Optional[Sequence[str]] = None,
        trace_ops: bool = False,
    ) -> None:
        self.program = program
        self.naive = naive
        self.budget = budget
        # Resolve the kernel backend once (explicit argument beats the
        # REPRO_BDD_BACKEND environment variable beats the default) so the
        # choice is recorded even if the environment later changes.
        self.backend = resolve_backend_name(backend)
        self.gc_threshold = gc_threshold
        self.cache_limit = cache_limit
        self.trace_ops = trace_ops
        self.pass_options = PassOptions.resolve(optimize, disabled_passes)
        self.name_maps: Dict[str, List[str]] = {
            k: list(v) for k, v in (name_maps or {}).items()
        }
        self._reverse_maps: Dict[str, Dict[str, int]] = {
            dom: {name: i for i, name in enumerate(names)}
            for dom, names in self.name_maps.items()
        }
        # Compile every rule variant once; the allocator's high-water marks
        # tell us how many physical instances each logical domain needs.
        # The optimizer never changes this pool (that would change BDD
        # levels): it may only re-place variables within it.
        allocator = _Allocator()
        for decl in program.relations.values():
            for attr, inst in zip(decl.attributes, decl.resolved_instances()):
                allocator.note((attr.domain, inst))
        self._plans: Dict[Tuple[int, Optional[int]], RulePlan] = {}
        for rule_idx, rule in enumerate(program.rules):
            n_pos = len(rule.positive_atoms)
            variants: List[Optional[int]] = [None]
            variants.extend(range(n_pos))
            for variant in variants:
                self._plans[(rule_idx, variant)] = compile_rule(
                    program, rule, variant, allocator
                )
        self._instances = dict(allocator.high_water)
        # Optimize the lowered plans before any BDD state exists.
        self._strata = stratify(program)
        self._stratum_index = {id(s): i for i, s in enumerate(self._strata)}
        self.plan_unit = PlanUnit(
            program=program, plans=self._plans, instances=self._instances
        )
        run_pipeline(self.plan_unit, self._strata, self.pass_options)
        # Build the physical domain pool under the requested variable order.
        domain_bits: Dict[str, int] = {}
        for logical, count in self._instances.items():
            size = program.domains[logical].size
            for i in range(count):
                domain_bits[f"{logical}{i}"] = bits_for(size)
        self.order_spec = (
            self._expand_order_spec(order_spec)
            if order_spec
            else self.default_order_spec()
        )
        levels = assign_levels(self.order_spec, domain_bits)
        total_bits = sum(domain_bits.values())
        self.manager = create_kernel(
            num_vars=total_bits, cache_limit=cache_limit, backend=self.backend
        )
        self._pool: Dict[PhysRef, Domain] = {}
        for logical, count in self._instances.items():
            size = program.domains[logical].size
            for i in range(count):
                name = f"{logical}{i}"
                self._pool[(logical, i)] = Domain(
                    self.manager, name, size, levels[name]
                )
        # One runtime relation per declaration.
        self.relations: Dict[str, Relation] = {}
        for decl in program.relations.values():
            attrs = []
            for attr, inst in zip(decl.attributes, decl.resolved_instances()):
                attrs.append(
                    Attribute(attr.name, attr.domain, self._pool[(attr.domain, inst)])
                )
            self.relations[decl.name] = Relation(self.manager, decl.name, attrs)
        # Hoisted-slot value cache: slot id -> (relation version, node).
        self._hoist_cache: Dict[int, Tuple[int, int]] = {}
        self.stats = SolveStats()
        self._profiles: Dict[int, RuleProfile] = {
            i: RuleProfile(rule=str(rule))
            for i, rule in enumerate(program.rules)
        }
        self._rule_of_plan: Dict[int, int] = {}
        for (rule_idx, _variant), plan in self._plans.items():
            self._rule_of_plan[id(plan)] = rule_idx
        self._solved = False
        self._watchdog: Optional[Watchdog] = None
        # External delta nodes solve_incremental must keep alive (and
        # remapped) across garbage collections.
        self._gc_protect: Optional[List[int]] = None
        # Resume bookkeeping: index of the last stratum that reached
        # fixpoint, and the one executing when a budget fault fired.
        self.last_completed_stratum = -1
        self._current_stratum: Optional[Stratum] = None
        self._current_stratum_index: Optional[int] = None

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _expand_order_spec(self, spec: str) -> str:
        """Expand logical domain names in an order spec to their physical
        instances: ``"C_V0xV1"`` becomes ``"C0xC1_V0xV1"`` when C has two
        instances.  Physical names pass through unchanged.  Domains the
        spec does not mention are appended at the end (each logical
        domain's instances interleaved), so partial specs stay valid when
        a program grows new domains."""
        groups_out = []
        mentioned = set()
        for group in spec.split("_"):
            members = []
            for member in group.split("x"):
                if member in self.program.domains:
                    count = self._instances.get(member, 0)
                    expanded = [f"{member}{i}" for i in range(count)]
                    members.extend(expanded)
                    mentioned.update(expanded)
                else:
                    members.append(member)
                    mentioned.add(member)
            if members:
                groups_out.append("x".join(members))
        for logical in self.program.domains:
            count = self._instances.get(logical, 0)
            missing = [
                f"{logical}{i}"
                for i in range(count)
                if f"{logical}{i}" not in mentioned
            ]
            if missing:
                groups_out.append("x".join(missing))
        return "_".join(groups_out)

    def default_order_spec(self) -> str:
        """Interleave all instances of each logical domain, groups in
        declaration order — the shape bddbddb's order search converges to
        for these programs (related attributes adjacent)."""
        groups = []
        for logical in self.program.domains:
            count = self._instances.get(logical, 0)
            if count == 0:
                continue
            groups.append("x".join(f"{logical}{i}" for i in range(count)))
        return "_".join(groups)

    def phys_domain(self, logical: str, instance: int = 0) -> Domain:
        return self._pool[(logical, instance)]

    def relation(self, name: str) -> Relation:
        rel = self.relations.get(name)
        if rel is None:
            raise DatalogError(f"unknown relation {name}")
        return rel

    def add_tuples(self, name: str, tuples: Iterable[Sequence[int]]) -> None:
        rel = self.relation(name)
        # Each tuple cube is a disjoint minterm, so any OR association
        # yields the same canonical BDD; or_all lets the backend pick
        # the cheapest reduction shape (balanced tree, batched sweeps).
        nodes = [rel._tuple_node(values) for values in tuples]
        if nodes:
            rel.set_node(
                self.manager.or_(rel.node, self.manager.or_all(nodes))
            )

    def set_node(self, name: str, node: int) -> None:
        """Install a pre-built BDD (e.g. the IEC relation of Algorithm 4)."""
        self.relation(name).set_node(node)

    def named_tuples(self, name: str):
        """Iterate tuples with ordinals translated through the name maps."""
        rel = self.relation(name)
        maps = [self.name_maps.get(a.logical) for a in rel.attributes]
        for values in rel.tuples():
            yield tuple(
                m[v] if m is not None and v < len(m) else v
                for m, v in zip(maps, values)
            )

    def resolve_const(self, logical: str, term: Term) -> int:
        if isinstance(term, NumberConst):
            value = term.value
        elif isinstance(term, NamedConst):
            table = self._reverse_maps.get(logical)
            if table is None or term.name not in table:
                raise DatalogError(
                    f'named constant "{term.name}" not found in domain {logical}'
                )
            value = table[term.name]
        else:
            raise DatalogError(f"not a constant term: {term}")
        size = self.program.domains[logical].size
        if not 0 <= value < size:
            raise DatalogError(
                f"constant {value} out of range for domain {logical} (size {size})"
            )
        return value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def solve(self, start_stratum: int = 0) -> SolveStats:
        """Run the program to fixpoint; returns evaluation statistics.

        ``start_stratum`` skips strata that are already at fixpoint — used
        when resuming from a checkpoint (semi-naive evaluation restarts
        the interrupted stratum with full deltas, which is sound because
        relations only grow toward the fixpoint).

        When a :class:`ResourceBudget` is attached, budget faults surface
        as :class:`ReproError` subclasses carrying the partial statistics
        and the stratum that was executing.
        """
        start = time.monotonic()
        strata = self._strata
        self.stats.strata = len(strata)
        rule_index = {id(rule): i for i, rule in enumerate(self.program.rules)}
        self.last_completed_stratum = start_stratum - 1
        if self.budget is not None:
            self._watchdog = Watchdog(self.budget, self.manager)
            self.manager.set_watchdog(
                self._watchdog.check, stride=self._watchdog.stride
            )
        try:
            for index, stratum in enumerate(strata):
                if index < start_stratum:
                    continue
                self._current_stratum = stratum
                self._current_stratum_index = index
                if faults.armed:
                    faults.fire("solver.stratum")
                if stratum.rules:
                    self._run_stratum(stratum, rule_index)
                self.last_completed_stratum = index
        except ReproError as err:
            self.stats.seconds = time.monotonic() - start
            self._record_manager_stats()
            if err.stats is None:
                err.stats = self.stats
            if err.completed_strata is None:
                err.completed_strata = self.last_completed_stratum + 1
            if err.stratum is None and self._current_stratum is not None:
                err.stratum = sorted(self._current_stratum.predicates)
            raise
        finally:
            self.manager.clear_watchdog()
            self._watchdog = None
            self._current_stratum = None
            self._current_stratum_index = None
        self.stats.seconds = time.monotonic() - start
        self._record_manager_stats()
        self._solved = True
        return self.stats

    def _run_stratum(self, stratum: Stratum, rule_index: Dict[int, int]) -> None:
        """Evaluate one stratum from its current relation state."""
        recursive = set(map(id, stratum.recursive_rules))
        once_rules = [r for r in stratum.rules if id(r) not in recursive]
        # Rules with no recursive dependency run exactly once.
        for rule in once_rules:
            plan = self._plans[(rule_index[id(rule)], None)]
            self._apply_plan(plan, None)
        if stratum.recursive_rules:
            if self.naive:
                self._solve_stratum_naive(stratum, rule_index)
            else:
                self._solve_stratum_seminaive(stratum, rule_index)

    def dependents(self, changed: Iterable[str]) -> Set[str]:
        """Transitive closure of ``changed`` under body -> head rule edges
        (both positive and negated occurrences propagate influence)."""
        out = set(changed)
        grew = True
        while grew:
            grew = False
            for rule in self.program.rules:
                head = rule.head.relation
                if head in out:
                    continue
                for atom in rule.positive_atoms + rule.negative_atoms:
                    if atom.relation in out:
                        out.add(head)
                        grew = True
                        break
        return out

    def solve_incremental(
        self, added: Dict[str, int], dirty: Iterable[str] = ()
    ) -> SolveStats:
        """Re-solve after an *input edit*, reusing the previous fixpoint.

        Preconditions: every relation currently holds its value at the
        previous fixpoint, except the edited inputs, which already hold
        their **new** values.  ``added[name]`` is the BDD of tuples newly
        added to input ``name``; names in ``dirty`` are inputs that may
        have *lost* tuples.

        Strata are processed in order.  A stratum none of whose rules read
        a changed relation is skipped — its previous values are already
        the fixpoint.  A stratum whose changed dependencies are all
        grow-only and read through positive atoms is continued
        *semi-naively*: the pending deltas are pushed through the delta
        rule variants (sound and complete because the previous fixpoint is
        a model of the previous inputs, so every genuinely new derivation
        must involve at least one added tuple).  A stratum that reads a
        shrunk relation, or negates a changed one, cannot be patched
        monotonically: its derived relations are reset and the stratum is
        recomputed from the (settled) lower strata — recompute-from-support
        scoped to the affected strata, never the whole program.
        """
        start = time.monotonic()
        m = self.manager
        pending: Dict[str, int] = {
            name: node for name, node in added.items() if node != FALSE
        }
        shrunk: Set[str] = set(dirty)
        rule_index = {id(rule): i for i, rule in enumerate(self.program.rules)}
        self.stats.strata = len(self._strata)
        if self.budget is not None:
            self._watchdog = Watchdog(self.budget, self.manager)
            self.manager.set_watchdog(
                self._watchdog.check, stride=self._watchdog.stride
            )
        try:
            for index, stratum in enumerate(self._strata):
                if not stratum.rules:
                    continue
                self._current_stratum = stratum
                self._current_stratum_index = index
                if faults.armed:
                    faults.fire("solver.stratum")
                changed = set(pending) | shrunk
                reads_shrunk = False
                reads_grown = False
                negates_changed = False
                # An *externally* grown stratum-internal predicate (an
                # input with rules — magic-rewritten programs seed their
                # recursive magic relations this way) restarts this
                # stratum's own semi-naive loop from that delta.
                grows_internal = any(p in pending for p in stratum.predicates)
                for rule in stratum.rules:
                    for atom in rule.positive_atoms:
                        name = atom.relation
                        if name in stratum.predicates:
                            continue
                        if name in shrunk:
                            reads_shrunk = True
                        if name in pending:
                            reads_grown = True
                    for atom in rule.negative_atoms:
                        if atom.relation in changed:
                            negates_changed = True
                if not (
                    reads_shrunk or reads_grown or negates_changed
                    or grows_internal
                ):
                    self.last_completed_stratum = index
                    continue
                before = {
                    p: self.relations[p].node for p in stratum.predicates
                }
                if reads_shrunk or negates_changed:
                    # Non-monotone dependency: recompute the stratum from
                    # the settled lower strata.
                    for pred in stratum.predicates:
                        self.relations[pred].clear()
                    self._run_stratum(stratum, rule_index)
                else:
                    self._push_deltas(stratum, rule_index, pending)
                for pred in stratum.predicates:
                    node = self.relations[pred].node
                    grown = m.diff(node, before[pred])
                    if grown != FALSE:
                        pending[pred] = m.or_(pending.get(pred, FALSE), grown)
                    if m.diff(before[pred], node) != FALSE:
                        shrunk.add(pred)
                self.last_completed_stratum = index
        except ReproError as err:
            self.stats.seconds += time.monotonic() - start
            self._record_manager_stats()
            if err.stats is None:
                err.stats = self.stats
            if err.completed_strata is None:
                err.completed_strata = self.last_completed_stratum + 1
            if err.stratum is None and self._current_stratum is not None:
                err.stratum = sorted(self._current_stratum.predicates)
            raise
        finally:
            self.manager.clear_watchdog()
            self._watchdog = None
            self._current_stratum = None
            self._current_stratum_index = None
        self.stats.seconds += time.monotonic() - start
        self._record_manager_stats()
        self._solved = True
        return self.stats

    def solve_demand(
        self,
        seeds: Dict[str, Iterable[Sequence[int]]],
        budget: Optional[ResourceBudget] = None,
    ) -> SolveStats:
        """Goal-directed (re-)solve for a magic-rewritten program.

        ``seeds`` maps magic input relations (see
        :mod:`repro.datalog.magic`) to the query-constant tuples that
        should be added to them.  The first call runs a full — but
        goal-restricted — :meth:`solve`; later calls push only the *new*
        seed tuples through the delta rule variants
        (:meth:`solve_incremental`), so previously derived sub-relations
        are reused verbatim: the solver itself is the warm cache.

        ``budget`` temporarily overrides the solver budget for this call
        (the per-query :class:`ResourceBudget` of the serve engine).  On
        a budget fault the solver is left resumable: relations hold a
        monotone partial state and ``_solved`` is cleared, so the next
        call re-runs the (goal-restricted) fixpoint from where it
        stopped instead of trusting a half-pushed delta.
        """
        m = self.manager
        added: Dict[str, int] = {}
        for name, tuples in seeds.items():
            rel = self.relation(name)
            nodes = [rel._tuple_node(values) for values in tuples]
            if not nodes:
                continue
            node = m.or_all(nodes)
            delta = m.diff(node, rel.node)
            if delta == FALSE:
                continue
            rel.set_node(m.or_(rel.node, delta))
            added[name] = delta
        previous_budget = self.budget
        if budget is not None:
            self.budget = budget
        try:
            if not self._solved:
                # Also covers resumption after a mid-solve budget fault:
                # semi-naive restart with full deltas from the partial
                # (monotone) state is sound.
                return self.solve()
            if added:
                try:
                    return self.solve_incremental(added)
                except ReproError:
                    # The delta push may have committed derivations whose
                    # consequences were never propagated; replaying the
                    # same deltas would miss them.  Fall back to a full
                    # goal-restricted re-solve on the next attempt.
                    self._solved = False
                    raise
            return self.stats
        finally:
            self.budget = previous_budget

    def _push_deltas(
        self,
        stratum: Stratum,
        rule_index: Dict[int, int],
        pending: Dict[str, int],
    ) -> None:
        """Seed a stratum's semi-naive loop from external deltas.

        Every rule variant whose delta atom is a changed *non-stratum*
        relation runs once against the pending deltas (other atoms load
        full relations, which already include the new tuples, so mixed
        old x new combinations are covered across variants).  The merged
        contributions become the initial deltas of the ordinary
        semi-naive loop.
        """
        m = self.manager
        init: Dict[str, int] = {p: FALSE for p in stratum.predicates}
        for rule in stratum.rules:
            ridx = rule_index[id(rule)]
            for atom_pos, atom in enumerate(rule.positive_atoms):
                name = atom.relation
                if name in stratum.predicates or name not in pending:
                    continue
                plan = self._plans[(ridx, atom_pos)]
                result = self._apply_plan(plan, pending, defer=True)
                head = plan.head_relation
                init[head] = m.or_(init[head], result)
        deltas: Dict[str, int] = {}
        progressed = False
        for pred in stratum.predicates:
            rel = self.relations[pred]
            delta = m.diff(init[pred], rel.node)
            if delta != FALSE:
                rel.set_node(m.or_(rel.node, delta))
                progressed = True
            # Externally added tuples of a stratum-internal predicate
            # (already stored in the relation by the caller) must still
            # seed the loop — diff against the stored value misses them.
            internal = pending.get(pred)
            if internal is not None and internal != FALSE:
                delta = m.or_(delta, internal)
                progressed = True
            deltas[pred] = delta
        if progressed and stratum.recursive_rules:
            if self.naive:
                self._solve_stratum_naive(stratum, rule_index)
            else:
                # Protect the caller's pending deltas across any GC the
                # fixpoint loop triggers.
                keys = list(pending)
                guard = [pending[k] for k in keys]
                self._gc_protect = guard
                try:
                    self._solve_stratum_seminaive(
                        stratum, rule_index, seed_deltas=deltas
                    )
                finally:
                    self._gc_protect = None
                pending.update(zip(keys, guard))

    def _record_manager_stats(self) -> None:
        m = self.manager
        self.stats.peak_nodes = m.peak_nodes
        entries = m.cache_entries()
        if entries > m.peak_cache_entries:
            m.peak_cache_entries = entries
        self.stats.peak_cache_entries = m.peak_cache_entries
        self.stats.cache_clears = m.cache_clears
        self.stats.backend = m.backend_name

    def _iteration_limit(self) -> int:
        if self.budget is not None and self.budget.max_iterations is not None:
            return self.budget.max_iterations
        return _MAX_ITERATIONS

    def _iteration_limit_error(self, stratum: Stratum, limit: int) -> IterationLimitExceeded:
        rules = [str(rule) for rule in stratum.recursive_rules]
        return IterationLimitExceeded(
            f"stratum {sorted(stratum.predicates)} did not converge within "
            f"{limit} iterations (rules: {'; '.join(rules)})",
            iterations=limit,
            rules=rules,
            stratum=sorted(stratum.predicates),
        )

    def _recursive_rule_order(
        self, stratum: Stratum, rule_index: Dict[int, int], iteration: int
    ) -> List:
        """Iteration's rule application order.  With the ``reorder-rules``
        pass on, sort most-productive-first from the second iteration
        (contributions are OR-accumulated per iteration, so order never
        changes the fixpoint — only operation-cache warmth).  The sort key
        is integer-only so the order is deterministic across machines."""
        rules = list(stratum.recursive_rules)
        if not self.plan_unit.reorder_rules or iteration == 0:
            return rules

        def key(pair):
            pos, rule = pair
            prof = self._profiles[rule_index[id(rule)]]
            if prof.applications == 0:
                return (0, pos)
            # Productivity in milli-hits per application, negated so the
            # most productive rule runs first; original position breaks
            # ties stably.
            return (-(prof.tuples_produced * 1000) // prof.applications, pos)

        return [rule for _, rule in sorted(enumerate(rules), key=key)]

    def _solve_stratum_seminaive(
        self,
        stratum: Stratum,
        rule_index: Dict[int, int],
        seed_deltas: Optional[Dict[str, int]] = None,
    ) -> None:
        m = self.manager
        deltas: Dict[str, int] = {}
        for pred in stratum.predicates:
            # A fresh solve starts with full relations as deltas; an
            # incremental continuation (solve_incremental) seeds only the
            # genuinely new tuples.
            if seed_deltas is not None:
                deltas[pred] = seed_deltas.get(pred, FALSE)
            else:
                deltas[pred] = self.relations[pred].node
        limit = self._iteration_limit()
        s_idx = self._stratum_index.get(id(stratum))
        shared_slots = (
            self.plan_unit.stratum_shared.get(s_idx, []) if s_idx is not None else []
        )
        for iteration in range(limit):
            self.stats.iterations += 1
            if faults.armed:
                faults.fire("solver.stratum")
            if self._watchdog is not None:
                self._watchdog.check()
            # One pass over the stratum's shared operands: every plan in
            # this iteration reads these slots instead of re-resolving its
            # delta/recursive-relation loads.
            shared: Optional[Dict[int, int]] = None
            if shared_slots:
                shared = {}
                for slot in shared_slots:
                    if slot.use_delta:
                        shared[slot.slot] = deltas.get(slot.relation, FALSE)
                    else:
                        shared[slot.slot] = self.relations[slot.relation].node
            contributions: Dict[str, int] = {p: FALSE for p in stratum.predicates}
            for rule in self._recursive_rule_order(stratum, rule_index, iteration):
                ridx = rule_index[id(rule)]
                for atom_pos, atom in enumerate(rule.positive_atoms):
                    if atom.relation not in stratum.predicates:
                        continue
                    if deltas.get(atom.relation, FALSE) == FALSE:
                        continue  # nothing new flows through this variant
                    plan = self._plans[(ridx, atom_pos)]
                    result = self._apply_plan(plan, deltas, defer=True, shared=shared)
                    head = plan.head_relation
                    contributions[head] = m.or_(contributions[head], result)
            progressed = False
            for pred in stratum.predicates:
                rel = self.relations[pred]
                delta = m.diff(contributions[pred], rel.node)
                deltas[pred] = delta
                if delta != FALSE:
                    rel.set_node(m.or_(rel.node, delta))
                    progressed = True
            if not progressed:
                return
            if self.manager.node_count() >= self.gc_threshold:
                preds = list(deltas)
                roots = [deltas[p] for p in preds]
                self._maybe_gc(extra_roots=roots)
                deltas = dict(zip(preds, roots))
            elif self.manager.cache_entries() > self.cache_limit:
                # Operation caches dominate memory on long fixpoints; the
                # lost memoization is recomputed cheaply against the
                # (small) deltas of later iterations.
                self.manager.clear_caches()
        raise self._iteration_limit_error(stratum, limit)

    def _solve_stratum_naive(self, stratum: Stratum, rule_index: Dict[int, int]) -> None:
        """Reference evaluation without incrementalization (ablation)."""
        limit = self._iteration_limit()
        for iteration in range(limit):
            self.stats.iterations += 1
            if self._watchdog is not None:
                self._watchdog.check()
            progressed = False
            for rule in stratum.recursive_rules:
                plan = self._plans[(rule_index[id(rule)], None)]
                delta = self._apply_plan(plan, None)
                if delta != FALSE:
                    progressed = True
            if not progressed:
                return
        raise self._iteration_limit_error(stratum, limit)

    # ------------------------------------------------------------------
    # Plan execution (the IR interpreter)
    # ------------------------------------------------------------------

    def _eval_op(
        self,
        op: Op,
        regs: List[int],
        deltas: Optional[Dict[str, int]],
        shared: Optional[Dict[int, int]] = None,
    ) -> int:
        """Evaluate one non-terminator op against the register file."""
        m = self.manager
        kind = op.kind
        if kind == "load":
            if op.use_delta:
                if deltas is None:
                    raise DatalogError(
                        f"delta load of {op.relation} executed without deltas"
                    )
                return deltas.get(op.relation, FALSE)
            return self.relations[op.relation].node
        if kind == "shared_load":
            # Inside the semi-naive loop the stratum operand table holds
            # the slot; on other paths the op self-evaluates.
            if shared is not None:
                node = shared.get(op.slot)
                if node is not None:
                    return node
            if op.use_delta:
                if deltas is None:
                    raise DatalogError(
                        f"delta load of {op.relation} executed without deltas"
                    )
                return deltas.get(op.relation, FALSE)
            return self.relations[op.relation].node
        if kind == "load_hoisted":
            return self._hoisted_node(op.slot)
        if kind == "top":
            return TRUE
        if kind == "const":
            value = self.resolve_const(op.phys[0], op.term)
            return self._pool[op.phys].eq_const(value)
        if kind == "equal":
            return equality_relation(self._pool[op.a], self._pool[op.b])
        if kind == "universe":
            return self._pool[op.phys].full_bdd()
        if kind == "and":
            return m.and_(regs[op.lhs], regs[op.rhs])
        if kind == "diff":
            return m.diff(regs[op.lhs], regs[op.rhs])
        if kind == "exist":
            return m.exist(regs[op.src], m.varset(self._levels(op.refs)))
        if kind == "replace":
            return m.replace(regs[op.src], self._rename_id(dict(op.mapping)))
        if kind == "rel_prod":
            return m.rel_prod(
                regs[op.lhs], regs[op.rhs], m.varset(self._levels(op.refs))
            )
        if kind == "rel_prod_replace":
            return m.rel_prod_replace(
                regs[op.lhs],
                regs[op.rhs],
                m.varset(self._levels(op.refs)),
                self._rename_id(dict(op.mapping)),
            )
        if kind == "and_exist":
            # exist(and(a, b), vs) is exactly rel_prod — one kernel call.
            return m.rel_prod(
                regs[op.lhs], regs[op.rhs], m.varset(self._levels(op.refs))
            )
        raise DatalogError(f"executor: unknown op kind {kind!r}")

    def _hoisted_node(self, slot_id: int) -> int:
        """Evaluate a stratum-preamble slot, cached on relation version.
        The relation is loop-invariant within its stratum, so the cache
        hits on every iteration after the first."""
        slot = self.plan_unit.hoisted[slot_id]
        rel = self.relations[slot.relation]
        hit = self._hoist_cache.get(slot_id)
        if hit is not None and hit[0] == rel.version:
            return hit[1]
        regs = [FALSE] * len(slot.ops)
        tallies = self.stats.plan_ops
        for op in slot.ops:
            regs[op.out] = self._eval_op(op, regs, None)
            tallies[op.kind] = tallies.get(op.kind, 0) + 1
        node = regs[slot.ops[-1].out]
        self._hoist_cache[slot_id] = (rel.version, node)
        return node

    def _apply_plan(
        self,
        plan: RulePlan,
        deltas: Optional[Dict[str, int]],
        defer: bool = False,
        shared: Optional[Dict[int, int]] = None,
    ) -> int:
        """Execute one compiled rule variant's op program.

        A ``FALSE`` value on the accumulator spine short-circuits the rest
        of the plan (the body cannot produce tuples).  When ``defer`` is
        set, the resulting head tuples are returned without being merged
        into the head relation (the semi-naive loop batches contributions
        per iteration); otherwise the head relation is updated and the
        delta returned.
        """
        self.stats.rule_applications += 1
        if self._watchdog is not None:
            self._watchdog.check()
        profile = self._profiles[self._rule_of_plan[id(plan)]]
        profile.applications += 1
        apply_start = time.monotonic()
        ops = plan.ops
        regs = [FALSE] * len(ops)
        tallies = self.stats.plan_ops
        traces = None
        if self.trace_ops:
            if plan.traces is None or len(plan.traces) != len(ops):
                plan.traces = [[0, 0.0, 0] for _ in ops]
            traces = plan.traces
        current = FALSE
        for i, op in enumerate(ops):
            if op.kind == "copy_into":
                current = regs[op.src]
                tallies["copy_into"] = tallies.get("copy_into", 0) + 1
                if traces is not None:
                    traces[i][0] += 1
                break
            t0 = time.monotonic() if traces is not None else 0.0
            node = self._eval_op(op, regs, deltas, shared)
            regs[op.out] = node
            tallies[op.kind] = tallies.get(op.kind, 0) + 1
            if traces is not None:
                tr = traces[i]
                tr[0] += 1
                tr[1] += time.monotonic() - t0
                tr[2] = max(tr[2], bdd_size(self.manager, node))
            if op.spine and node == FALSE:
                current = FALSE
                break
        profile.seconds += time.monotonic() - apply_start
        if defer:
            if current != FALSE:
                profile.tuples_produced += 1
            return current
        delta = self.relations[plan.head_relation].union_node(current)
        if delta != FALSE:
            profile.tuples_produced += 1
        return delta

    def _levels(self, refs: Iterable[PhysRef]) -> List[int]:
        out: List[int] = []
        for ref in refs:
            out.extend(self._pool[ref].levels)
        return out

    def _rename_id(self, mapping: Dict[PhysRef, PhysRef]) -> int:
        level_map: Dict[int, int] = {}
        for src, dst in mapping.items():
            src_dom, dst_dom = self._pool[src], self._pool[dst]
            if dst_dom.bits < src_dom.bits:
                raise BDDError(
                    f"rename {src} -> {dst} narrows {src_dom.bits} bits to "
                    f"{dst_dom.bits}"
                )
            for i in range(src_dom.bits):
                s = src_dom.levels[src_dom.bits - 1 - i]
                d = dst_dom.levels[dst_dom.bits - 1 - i]
                if s != d:
                    level_map[s] = d
        return self.manager.replace_map(level_map)

    # ------------------------------------------------------------------
    # Introspection (--profile, --explain-plan)
    # ------------------------------------------------------------------

    def rule_profile(self) -> List[RuleProfile]:
        """Per-rule evaluation profile, most expensive first."""
        return sorted(
            self._profiles.values(), key=lambda p: p.seconds, reverse=True
        )

    def explain_plans(self, executed_only: bool = False) -> str:
        """Render the (optimized) plans for ``repro datalog --explain-plan``.
        Run :meth:`solve` with ``trace_ops=True`` first to get the
        cost annotations (execution counts, seconds, peak result nodes)."""
        return format_unit(
            self.plan_unit, self._strata, executed_only=executed_only
        )

    def plan_op_counts(self) -> Dict[str, int]:
        """Static per-kind op counts over all compiled plans and slots
        (the compile-time view; ``stats.plan_ops`` is the executed view)."""
        counts: Dict[str, int] = {}
        for plan in self._plans.values():
            for op in plan.ops:
                counts[op.kind] = counts.get(op.kind, 0) + 1
        for slot in self.plan_unit.hoisted.values():
            for op in slot.ops:
                counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _maybe_gc(self, extra_roots: Optional[List[int]] = None) -> None:
        if self.manager.node_count() < self.gc_threshold:
            return
        roots = [rel.node for rel in self.relations.values()]
        cached = list(self._hoist_cache.items())
        roots.extend(node for _, (_, node) in cached)
        if extra_roots:
            roots.extend(extra_roots)
        if self._gc_protect:
            roots.extend(self._gc_protect)
        mapping = self.manager.collect_garbage(roots)
        for rel in self.relations.values():
            rel.remap(mapping)
        self._hoist_cache = {
            key: (version, mapping[node]) for key, (version, node) in cached
        }
        if extra_roots:
            extra_roots[:] = [mapping[n] for n in extra_roots]
        if self._gc_protect:
            self._gc_protect[:] = [mapping[n] for n in self._gc_protect]
