"""Abstract syntax for the Datalog dialect of Section 2.1.

A program has three sections — domains, relations, rules — exactly like the
listings in the paper (Algorithms 1–7).  Terms are variables, ``_``
don't-cares, numeric constants, or quoted named constants resolved through a
domain's name map.  Body predicates may be negated (``!``), and the built-in
comparisons ``=`` and ``!=`` are supported (used by the paper's type
refinement and escape queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DatalogError",
    "DomainDecl",
    "AttributeDecl",
    "RelationDecl",
    "Variable",
    "DontCare",
    "NumberConst",
    "NamedConst",
    "Term",
    "Atom",
    "Comparison",
    "Rule",
    "ProgramAST",
]


class DatalogError(Exception):
    """Raised on syntax or semantic errors in a Datalog program."""


@dataclass(frozen=True)
class DomainDecl:
    """``V 262144 variable.map`` — name, size, optional name-map file."""

    name: str
    size: int
    map_file: Optional[str] = None


@dataclass(frozen=True)
class AttributeDecl:
    """One attribute of a relation: ``variable : V`` or ``dest : V1``.

    ``instance`` selects the physical domain copy (``V0``, ``V1``, ...);
    ``None`` means "assign by position among same-domain attributes".
    """

    name: str
    domain: str
    instance: Optional[int] = None


@dataclass(frozen=True)
class RelationDecl:
    """``vP (variable : V, heap : H) output``."""

    name: str
    attributes: Tuple[AttributeDecl, ...]
    is_input: bool = False
    is_output: bool = False

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def resolved_instances(self) -> Tuple[int, ...]:
        """Physical instance index for each attribute, defaults filled in.

        Memoized: the compiler and the optimizer passes consult this for
        every atom they lower, and the decl is immutable.
        """
        cached = self.__dict__.get("_resolved_instances")
        if cached is not None:
            return cached
        counts: Dict[str, int] = {}
        out = []
        for attr in self.attributes:
            if attr.instance is not None:
                idx = attr.instance
                counts[attr.domain] = max(counts.get(attr.domain, 0), idx + 1)
            else:
                idx = counts.get(attr.domain, 0)
                counts[attr.domain] = idx + 1
            out.append(idx)
        result = tuple(out)
        object.__setattr__(self, "_resolved_instances", result)
        return result


@dataclass(frozen=True)
class Variable:
    name: str


@dataclass(frozen=True)
class DontCare:
    pass


@dataclass(frozen=True)
class NumberConst:
    value: int


@dataclass(frozen=True)
class NamedConst:
    name: str


Term = Union[Variable, DontCare, NumberConst, NamedConst]


@dataclass(frozen=True)
class Atom:
    """A predicate occurrence ``[!] name(t1, ..., tn)``."""

    relation: str
    terms: Tuple[Term, ...]
    negated: bool = False

    def variables(self) -> List[str]:
        return [t.name for t in self.terms if isinstance(t, Variable)]


@dataclass(frozen=True)
class Comparison:
    """Built-in ``left OP right`` with OP in {=, !=}."""

    left: Term
    op: str  # "=" or "!="
    right: Term

    def variables(self) -> List[str]:
        out = []
        for t in (self.left, self.right):
            if isinstance(t, Variable):
                out.append(t.name)
        return out


@dataclass(frozen=True)
class Rule:
    """``head :- body.`` — ``body`` may be empty (a fact rule)."""

    head: Atom
    body: Tuple[Union[Atom, Comparison], ...] = ()
    line: int = 0

    @property
    def positive_atoms(self) -> List[Atom]:
        return [a for a in self.body if isinstance(a, Atom) and not a.negated]

    @property
    def negative_atoms(self) -> List[Atom]:
        return [a for a in self.body if isinstance(a, Atom) and a.negated]

    @property
    def comparisons(self) -> List[Comparison]:
        return [c for c in self.body if isinstance(c, Comparison)]

    def __str__(self) -> str:
        def term_str(t: Term) -> str:
            if isinstance(t, Variable):
                return t.name
            if isinstance(t, DontCare):
                return "_"
            if isinstance(t, NumberConst):
                return str(t.value)
            return f'"{t.name}"'

        def atom_str(a) -> str:
            if isinstance(a, Comparison):
                return f"{term_str(a.left)} {a.op} {term_str(a.right)}"
            body = ", ".join(term_str(t) for t in a.terms)
            bang = "!" if a.negated else ""
            return f"{bang}{a.relation}({body})"

        head = atom_str(self.head)
        if not self.body:
            return f"{head}."
        return f"{head} :- {', '.join(atom_str(a) for a in self.body)}."


@dataclass
class ProgramAST:
    """A parsed Datalog program."""

    domains: Dict[str, DomainDecl] = field(default_factory=dict)
    relations: Dict[str, RelationDecl] = field(default_factory=dict)
    rules: List[Rule] = field(default_factory=list)

    def validate(self) -> None:
        """Semantic checks: declared names, arities, and rule safety."""
        for rel in self.relations.values():
            for attr in rel.attributes:
                if attr.domain not in self.domains:
                    raise DatalogError(
                        f"relation {rel.name}: unknown domain {attr.domain}"
                    )
        for rule in self.rules:
            self._validate_rule(rule)

    def _validate_rule(self, rule: Rule) -> None:
        where = f"rule at line {rule.line} ({rule})"
        for atom in [rule.head] + list(rule.body):
            if isinstance(atom, Comparison):
                continue
            decl = self.relations.get(atom.relation)
            if decl is None:
                raise DatalogError(f"{where}: unknown relation {atom.relation}")
            if len(atom.terms) != decl.arity:
                raise DatalogError(
                    f"{where}: {atom.relation} expects {decl.arity} terms, "
                    f"got {len(atom.terms)}"
                )
        if any(isinstance(t, DontCare) for t in rule.head.terms):
            raise DatalogError(f"{where}: don't-care not allowed in rule head")
        # Infer each variable's logical domain and check consistency.
        var_domains: Dict[str, str] = {}
        for atom in [rule.head] + list(rule.body):
            if isinstance(atom, Comparison):
                continue
            decl = self.relations[atom.relation]
            for term, attr in zip(atom.terms, decl.attributes):
                if not isinstance(term, Variable):
                    continue
                seen = var_domains.get(term.name)
                if seen is None:
                    var_domains[term.name] = attr.domain
                elif seen != attr.domain:
                    raise DatalogError(
                        f"{where}: variable {term.name} used with domains "
                        f"{seen} and {attr.domain}"
                    )
        for comp in rule.comparisons:
            doms = {
                var_domains[v]
                for v in comp.variables()
                if v in var_domains
            }
            if len(doms) > 1:
                raise DatalogError(
                    f"{where}: comparison mixes domains {sorted(doms)}"
                )
            for v in comp.variables():
                if v not in var_domains:
                    raise DatalogError(
                        f"{where}: comparison variable {v} not bound by any atom"
                    )

    def variable_domains(self, rule: Rule) -> Dict[str, str]:
        """Map each rule variable to its logical domain (post-validate)."""
        var_domains: Dict[str, str] = {}
        for atom in [rule.head] + list(rule.body):
            if isinstance(atom, Comparison):
                continue
            decl = self.relations[atom.relation]
            for term, attr in zip(atom.terms, decl.attributes):
                if isinstance(term, Variable):
                    var_domains.setdefault(term.name, attr.domain)
        return var_domains
