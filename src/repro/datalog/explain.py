"""Provenance: explain why a tuple is in a solved relation.

The paper recounts how painful debugging hand-written BDD analyses was
("we found a subtle bug months after the implementation was completed").
A deductive database can do better: since every derived tuple must be
produced by some rule from facts that themselves hold, we can reconstruct
a *derivation tree* after the fact.

:func:`explain` finds, for a given tuple of a given relation, a rule whose
body is satisfiable with the head bound to that tuple, picks one witness
instantiation per body atom, and recurses (to a bounded depth).  Input
tuples terminate the recursion.  The search runs against the *solved*
relations, so every step is guaranteed to reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .ast import (
    Atom,
    Comparison,
    DatalogError,
    DontCare,
    NamedConst,
    NumberConst,
    Rule,
    Variable,
)
from .solver import Solver

__all__ = ["Derivation", "explain", "format_derivation"]


@dataclass
class Derivation:
    """One node of a derivation tree."""

    relation: str
    values: Tuple[int, ...]
    rule: Optional[Rule] = None          # None => input fact
    children: List["Derivation"] = field(default_factory=list)

    @property
    def is_fact(self) -> bool:
        return self.rule is None


def _bind_head(rule: Rule, values: Sequence[int], solver: Solver) -> Optional[Dict[str, int]]:
    """Unify the head atom with concrete values; None on mismatch."""
    decl = solver.program.relations[rule.head.relation]
    binding: Dict[str, int] = {}
    for term, attr, value in zip(rule.head.terms, decl.attributes, values):
        if isinstance(term, Variable):
            seen = binding.get(term.name)
            if seen is not None and seen != value:
                return None
            binding[term.name] = value
        elif isinstance(term, (NumberConst, NamedConst)):
            if solver.resolve_const(attr.domain, term) != value:
                return None
    return binding


_WITNESS_LIMIT = 64


def _match_atom(
    atom: Atom, binding: Dict[str, int], solver: Solver
):
    """Yield tuples of ``atom``'s relation consistent with ``binding``.

    Each yield is ``(witness tuple, extended binding)``.  The relation is
    first restricted by the bound attributes at the BDD level, so only the
    consistent slice is enumerated (up to a witness limit).
    """
    rel = solver.relation(atom.relation)
    constraints: Dict[str, int] = {}
    for term, attr in zip(atom.terms, rel.attributes):
        if isinstance(term, Variable) and term.name in binding:
            constraints[attr.name] = binding[term.name]
        elif isinstance(term, (NumberConst, NamedConst)):
            constraints[attr.name] = solver.resolve_const(attr.logical, term)
    node = rel.node
    manager = rel.manager
    for name, value in constraints.items():
        node = manager.and_(node, rel.attribute(name).phys.eq_const(value))
    if node == 0:
        return
    levels = rel.levels()
    emitted = 0
    for witness_bits in manager.iter_assignments(node, levels):
        values: List[int] = []
        pos = 0
        in_domain = True
        for attr in rel.attributes:
            width = attr.phys.bits
            value = attr.phys.decode(witness_bits[pos : pos + width])
            pos += width
            if value >= attr.phys.size:
                in_domain = False
                break
            values.append(value)
        if not in_domain:
            continue
        extended = dict(binding)
        repeated_ok = True
        for term, value in zip(atom.terms, values):
            if isinstance(term, Variable):
                seen = extended.get(term.name)
                if seen is not None and seen != value:
                    repeated_ok = False
                    break
                extended[term.name] = value
        if not repeated_ok:
            continue
        yield tuple(values), extended
        emitted += 1
        if emitted >= _WITNESS_LIMIT:
            return


def _check_comparison(comp: Comparison, binding: Dict[str, int], solver: Solver) -> bool:
    def value_of(term) -> Optional[int]:
        if isinstance(term, Variable):
            return binding.get(term.name)
        return None if isinstance(term, DontCare) else term.value if isinstance(term, NumberConst) else None

    left = value_of(comp.left)
    right = value_of(comp.right)
    if left is None or right is None:
        return True  # unconstrained; witness search already satisfied it
    return (left == right) if comp.op == "=" else (left != right)


def explain(
    solver: Solver,
    relation_name: str,
    values: Sequence[int],
    max_depth: int = 8,
) -> Derivation:
    """Build a derivation tree for ``relation_name(values)``.

    Raises :class:`DatalogError` if the tuple is not actually in the
    relation.  Input relations (and depth-exhausted nodes) become leaf
    facts.

    Sub-derivations are memoized per call keyed on
    ``(relation, values, remaining depth)``, so diamond-shaped rule sets
    (two rules deriving the same intermediate tuple) re-derive each
    shared witness once instead of once per path — without the depth in
    the key, a witness first derived near the depth limit could be
    reused where more depth remained and silently truncate the tree.
    The returned tree shares ``Derivation`` nodes for shared witnesses.
    """
    return _explain(solver, relation_name, values, max_depth, {})


def _explain(
    solver: Solver,
    relation_name: str,
    values: Sequence[int],
    max_depth: int,
    memo: Dict[Tuple[str, Tuple[int, ...], int], Derivation],
) -> Derivation:
    values = tuple(values)
    memo_key = (relation_name, values, max_depth)
    hit = memo.get(memo_key)
    if hit is not None:
        return hit
    rel = solver.relation(relation_name)
    if not rel.contains(values):
        raise DatalogError(
            f"{relation_name}{values} does not hold in the solved program"
        )
    decl = solver.program.relations[relation_name]
    if decl.is_input or max_depth <= 0:
        leaf = Derivation(relation=relation_name, values=values)
        memo[memo_key] = leaf
        return leaf

    head_key = (relation_name, values)
    for rule in solver.program.rules:
        if rule.head.relation != relation_name:
            continue
        binding = _bind_head(rule, values, solver)
        if binding is None:
            continue
        positives = [
            item for item in rule.body
            if isinstance(item, Atom) and not item.negated
        ]
        others = [
            item for item in rule.body
            if not (isinstance(item, Atom) and not item.negated)
        ]

        def search(index: int, current: Dict[str, int], chosen):
            """Backtracking over witness choices for the positive atoms."""
            if index == len(positives):
                for item in others:
                    if isinstance(item, Comparison):
                        if not _check_comparison(item, current, solver):
                            return None
                    else:  # negated atom
                        fully_bound = all(
                            (not isinstance(t, Variable)) or t.name in current
                            for t in item.terms
                        )
                        if fully_bound and next(
                            _match_atom(item, current, solver), None
                        ) is not None:
                            return None
                return list(chosen)
            atom = positives[index]
            for wvalues, extended in _match_atom(atom, current, solver):
                # Never let a tuple support itself directly.
                if (atom.relation, wvalues) == head_key:
                    continue
                result = search(index + 1, extended, chosen + [(atom.relation, wvalues)])
                if result is not None:
                    return result
            return None

        chosen = search(0, binding, [])
        if chosen is None:
            continue
        node = Derivation(relation=relation_name, values=values, rule=rule)
        # Memoize before recursing: a diamond's shared witness reuses
        # this node instead of re-running the backtracking search.
        memo[memo_key] = node
        for child_rel, child_values in chosen:
            node.children.append(
                _explain(solver, child_rel, child_values, max_depth - 1, memo)
            )
        return node
    # No rule reproduced it at this depth: report as a leaf.
    leaf = Derivation(relation=relation_name, values=values)
    memo[memo_key] = leaf
    return leaf


def format_derivation(
    derivation: Derivation, solver: Solver, indent: int = 0
) -> str:
    """Human-readable tree, with ordinals translated through name maps."""
    rel = solver.relation(derivation.relation)
    parts = []
    for attr, value in zip(rel.attributes, derivation.values):
        names = solver.name_maps.get(attr.logical)
        if names is not None and value < len(names):
            parts.append(str(names[value]))
        else:
            parts.append(str(value))
    head = f"{'  ' * indent}{derivation.relation}({', '.join(parts)})"
    if derivation.rule is not None:
        head += f"   [by rule: {derivation.rule}]"
    elif indent:
        head += "   [fact]"
    lines = [head]
    for child in derivation.children:
        lines.append(format_derivation(child, solver, indent + 1))
    return "\n".join(lines)
