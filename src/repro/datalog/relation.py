"""Attributed relations represented as BDDs (Section 2.4.2).

A :class:`Relation` binds a name and a tuple of attributes — each attribute
living in a *physical* finite domain — to a BDD node.  "A relation
``R : D1 x ... x Dn`` is represented as a boolean function
``f : D1 x ... x Dn -> {0,1}`` such that ``(d1,...,dn) in R`` iff
``f(d1,...,dn) = 1``."

Relations are mutable holders: the solver updates ``node`` as the fixpoint
iteration proceeds, bumping ``version`` so cached rule inputs (the
loop-invariant optimization of Section 2.4.1) can detect staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..bdd import BDD, BDDError, Domain, FALSE, TRUE
from ..runtime.errors import InvalidInputError

__all__ = ["Attribute", "Relation", "bdd_size"]


def bdd_size(manager: BDD, node: int) -> int:
    """Number of non-terminal nodes reachable from ``node`` (the cost
    metric the plan executor records in its per-op traces)."""
    seen = {FALSE, TRUE}
    stack = [node]
    count = 0
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        count += 1
        stack.append(manager.low(n))
        stack.append(manager.high(n))
    return count


@dataclass(frozen=True)
class Attribute:
    """One column: its name, logical domain name, and physical domain."""

    name: str
    logical: str
    phys: Domain


class Relation:
    """A named BDD relation over a fixed attribute schema."""

    def __init__(self, manager: BDD, name: str, attributes: Sequence[Attribute]):
        self.manager = manager
        self.name = name
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        self.node: int = FALSE
        self.version: int = 0
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise BDDError(f"relation {name}: duplicate attribute names {names}")
        phys = [a.phys.name for a in self.attributes]
        if len(set(phys)) != len(phys):
            raise BDDError(
                f"relation {name}: attributes share a physical domain {phys}"
            )

    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise BDDError(f"relation {self.name}: no attribute {name!r}")

    def levels(self) -> List[int]:
        out: List[int] = []
        for a in self.attributes:
            out.extend(a.phys.levels)
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def set_node(self, node: int) -> None:
        if node != self.node:
            self.node = node
            self.version += 1

    def union_node(self, node: int) -> int:
        """OR ``node`` in; returns the delta (tuples actually new)."""
        delta = self.manager.diff(node, self.node)
        if delta != FALSE:
            self.set_node(self.manager.or_(self.node, delta))
        return delta

    def clear(self) -> None:
        self.set_node(FALSE)

    def add_tuple(self, values: Sequence[int]) -> None:
        self.set_node(self.manager.or_(self.node, self._tuple_node(values)))

    def set_tuples(self, tuples: Iterable[Sequence[int]]) -> None:
        node = FALSE
        for values in tuples:
            node = self.manager.or_(node, self._tuple_node(values))
        self.set_node(node)

    def _tuple_node(self, values: Sequence[int]) -> int:
        if len(values) != self.arity:
            raise BDDError(
                f"relation {self.name}: tuple {tuple(values)} has arity "
                f"{len(values)}, expected {self.arity}"
            )
        literals = []
        for attr, value in zip(self.attributes, values):
            if not isinstance(value, int) or not 0 <= value < attr.phys.size:
                raise InvalidInputError(
                    f"relation {self.name}: value {value!r} for attribute "
                    f"{attr.name!r} is outside domain {attr.logical} "
                    f"(size {attr.phys.size})",
                    predicate=self.name,
                    attribute=attr.name,
                    value=value,
                )
            phys = attr.phys
            for i, level in enumerate(phys.levels):
                literals.append(
                    (level, bool((value >> (phys.bits - 1 - i)) & 1))
                )
        # A tuple is one minterm over the concatenated attribute levels:
        # a single cube call builds it bottom-up in one pass instead of
        # arity-many eq_const cubes glued together with and_.
        return self.manager.cube(literals)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        return self.node == FALSE

    def count(self) -> int:
        """Exact tuple count (arbitrary precision)."""
        if self.node == FALSE:
            return 0
        # Count over all attribute bits, then discard assignments with
        # out-of-domain values by intersecting with validity constraints.
        valid = self.node
        for a in self.attributes:
            size = a.phys.size
            if size < (1 << a.phys.bits):
                valid = self.manager.and_(valid, a.phys.full_bdd())
        return self.manager.sat_count(valid, self.levels())

    def tuples(self) -> Iterator[Tuple[int, ...]]:
        """Iterate decoded tuples (ordinal values per attribute)."""
        levels = self.levels()
        widths = [a.phys.bits for a in self.attributes]
        for bits in self.manager.iter_assignments(self.node, levels):
            out = []
            pos = 0
            valid = True
            for attr, width in zip(self.attributes, widths):
                value = attr.phys.decode(bits[pos : pos + width])
                pos += width
                if value >= attr.phys.size:
                    valid = False
                    break
                out.append(value)
            if valid:
                yield tuple(out)

    def contains(self, values: Sequence[int]) -> bool:
        probe = self._tuple_node(values)
        return self.manager.and_(probe, self.node) == probe

    def select(self, **constants: int) -> "Relation":
        """New relation with some attributes fixed to constants and removed."""
        node = self.node
        keep = []
        project = []
        for a in self.attributes:
            if a.name in constants:
                node = self.manager.and_(node, a.phys.eq_const(constants[a.name]))
                project.extend(a.phys.levels)
            else:
                keep.append(a)
        unknown = set(constants) - {a.name for a in self.attributes}
        if unknown:
            raise BDDError(f"relation {self.name}: unknown attributes {sorted(unknown)}")
        node = self.manager.exist(node, self.manager.varset(project))
        result = Relation(self.manager, f"{self.name}_sel", keep)
        result.set_node(node)
        return result

    def project(self, *names: str) -> "Relation":
        """New relation keeping only the named attributes."""
        keep = [a for a in self.attributes if a.name in names]
        if len(keep) != len(names):
            missing = set(names) - {a.name for a in keep}
            raise BDDError(f"relation {self.name}: unknown attributes {sorted(missing)}")
        drop_levels = []
        for a in self.attributes:
            if a.name not in names:
                drop_levels.extend(a.phys.levels)
        node = self.manager.exist(self.node, self.manager.varset(drop_levels))
        result = Relation(self.manager, f"{self.name}_proj", keep)
        result.set_node(node)
        return result

    def remap(self, mapping: Dict[int, int]) -> None:
        """Update the held node after a manager garbage collection."""
        self.node = mapping[self.node]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        attrs = ", ".join(f"{a.name}:{a.phys.name}" for a in self.attributes)
        return f"<Relation {self.name}({attrs})>"
