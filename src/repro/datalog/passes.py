"""The plan optimizer: bddbddb's query optimizations as IR passes.

The greedy lowering in :mod:`repro.datalog.compiler` is locally sensible
but globally naive: it places each variable on the first collision-free
physical domain it sees, so a recursive rule routinely pays two or three
BDD ``replace`` operations *per fixpoint iteration* that a better global
placement avoids entirely (the paper's §4 "attribute assignment").  This
module rewrites the lowered :class:`~repro.datalog.plan.RulePlan` ops:

``assign-domains``
    Conflict-graph coloring of each rule variant's variables onto the
    existing physical-domain pool, weighted by how often each atom's
    preparation actually executes (delta and stratum-recursive atoms run
    every iteration; loop-invariant atoms are cached).  The rule is
    re-lowered with the coloring as assignment hints and the candidate
    plan replaces the greedy one only if it executes strictly fewer
    weighted ``Replace`` ops — and only if it stays inside the pool the
    greedy compilation sized (the optimizer must never change the BDD
    variable order, so solved relations stay bit-identical).

``coalesce``
    Merge single-use ``Exist``/``Exist`` and ``Replace``/``Replace``
    chains into one operation.

``dead-op``
    Simplify identities (empty projections/renames, conjunction with
    ``Top``) and drop ops whose results are never used.

``hoist`` / ``cse``
    Move loop-invariant atom-preparation chains into stratum preamble
    slots evaluated at most once per relation version; ``cse``
    additionally shares structurally identical slots across plans (the
    delta variants of a rule usually prepare the same invariant atoms).

``fuse``
    Merge adjacent op pairs into fused superops (``Replace`` consuming a
    single-use ``RelProd`` becomes :class:`RelProdReplace`; ``Exist``
    consuming a single-use ``And`` becomes :class:`AndExist`) so one
    kernel call does what two did, and group the operand loads the
    independent recursive plans of a stratum re-issue every fixpoint
    iteration into shared per-stratum slots (:class:`SharedLoad`).

``reorder-rules``
    Profile-guided: within a fixpoint iteration, apply recursive rules
    most-productive-first (contributions are OR-accumulated per
    iteration, so order cannot change the result — only cache warmth).

Pass selection: ``PassOptions.resolve`` honours the ``REPRO_PLAN_OPT``
(off/0/false disables the whole pipeline) and ``REPRO_PLAN_DISABLE``
(comma-separated pass names) environment variables, overridden by the
explicit ``optimize=`` / ``disabled_passes=`` solver arguments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .ast import Atom, DatalogError, ProgramAST, Rule, Variable
from .compiler import (
    _Allocator,
    _atom_schema,
    _last_use_positions,
    _order_positive_atoms,
    compile_rule,
)
from .plan import (
    And,
    AndExist,
    CopyInto,
    Diff,
    Exist,
    HoistedSlot,
    Load,
    LoadHoisted,
    Op,
    PhysRef,
    PlanUnit,
    Replace,
    RelProd,
    RelProdReplace,
    RulePlan,
    SharedLoad,
    SharedSlot,
    Top,
    validate_plan,
)
from .stratify import Stratum

__all__ = [
    "PASS_NAMES",
    "PassOptions",
    "run_pipeline",
    "replace_cost",
]

PASS_NAMES: Tuple[str, ...] = (
    "assign-domains",
    "coalesce",
    "dead-op",
    "hoist",
    "cse",
    "fuse",
    "reorder-rules",
)

#: Environment switches (exported by the CLI so supervised workers and
#: subprocesses inherit the choice).
OPT_ENV_VAR = "REPRO_PLAN_OPT"
DISABLE_ENV_VAR = "REPRO_PLAN_DISABLE"

#: Relative execution frequency of a loop-invariant (hoistable) atom
#: preparation versus one that runs every fixpoint iteration.
_INVARIANT_WEIGHT = 0.05


@dataclass(frozen=True)
class PassOptions:
    """Which passes run.  Immutable; build via :meth:`resolve`."""

    enabled: bool = True
    disabled: FrozenSet[str] = frozenset()

    @staticmethod
    def resolve(
        optimize: Optional[bool] = None,
        disabled_passes: Optional[Sequence[str]] = None,
    ) -> "PassOptions":
        if optimize is None:
            raw = os.environ.get(OPT_ENV_VAR, "on").strip().lower()
            optimize = raw not in ("off", "0", "false", "no", "none")
        if disabled_passes is None:
            raw = os.environ.get(DISABLE_ENV_VAR, "")
            disabled_passes = [p.strip() for p in raw.split(",") if p.strip()]
        unknown = set(disabled_passes) - set(PASS_NAMES)
        if unknown:
            raise DatalogError(
                f"unknown optimizer pass(es) {sorted(unknown)}; "
                f"known passes: {', '.join(PASS_NAMES)}"
            )
        return PassOptions(bool(optimize), frozenset(disabled_passes))

    def runs(self, name: str) -> bool:
        return self.enabled and name not in self.disabled


# ----------------------------------------------------------------------
# Shared rewriting machinery
# ----------------------------------------------------------------------


def _remap_inputs(op: Op, f) -> None:
    if isinstance(op, (And, Diff, RelProd, RelProdReplace, AndExist)):
        op.lhs = f(op.lhs)
        op.rhs = f(op.rhs)
    elif isinstance(op, (Exist, Replace, CopyInto)):
        op.src = f(op.src)


def _rebuild(
    plan: RulePlan,
    alias: Optional[Dict[int, int]] = None,
    drop: Optional[Set[int]] = None,
    dce: bool = True,
) -> None:
    """Drop ops, redirect readers through ``alias``, eliminate dead ops,
    and renumber so ``op.out == index`` again (the executor invariant)."""
    alias = alias or {}
    drop = set(drop or ())

    def resolve(r: int) -> int:
        while r in alias:
            r = alias[r]
        return r

    kept = [op for op in plan.ops if op.out not in drop]
    for op in kept:
        _remap_inputs(op, resolve)
    if dce and kept:
        by_out = {op.out: op for op in kept}
        live: Set[int] = set()
        stack = [kept[-1].out]
        while stack:
            r = stack.pop()
            if r in live:
                continue
            live.add(r)
            stack.extend(by_out[r].inputs())
        kept = [op for op in kept if op.out in live]
    reg_map: Dict[int, int] = {}
    for idx, op in enumerate(kept):
        _remap_inputs(op, lambda r: reg_map[r])
        reg_map[op.out] = idx
        op.out = idx
    plan.ops = kept


# ----------------------------------------------------------------------
# assign-domains: conflict-graph coloring of variables onto the pool
# ----------------------------------------------------------------------


def replace_cost(plan: RulePlan, stratum_preds: Set[str]) -> float:
    """Weighted count of the plan's ``Replace`` ops: renames in
    loop-invariant preparation chains are nearly free (cached after the
    hoist pass), everything else runs every iteration."""
    cost = 0.0
    for op in plan.ops:
        if isinstance(op, Replace):
            weight = 1.0
            if op.origin is not None:
                relation, use_delta, _pos = op.origin
                if not use_delta and relation not in stratum_preds:
                    weight = _INVARIANT_WEIGHT
            cost += weight
    return cost


def _color_rule(
    program: ProgramAST,
    rule: Rule,
    delta_index: Optional[int],
    stratum_preds: Set[str],
    instances: Dict[str, int],
) -> Dict[str, PhysRef]:
    """Color the rule variant's variables onto physical domains.

    Two variables of the same logical domain *conflict* when their live
    ranges overlap (closed intervals over the execution sequence — a
    variable introduced exactly where another dies still conflicts,
    because the join sees both).  Each variable's candidate colors are
    the physical attributes it occurs at (body atoms and head), weighted
    by the execution frequency of the occurrence's atom; a satisfied
    candidate means that occurrence needs no rename.  Greedy assignment
    in descending weight order; infeasible variables are left uncolored
    (the lowering's greedy fallback handles them).
    """
    ordered = _order_positive_atoms(rule, delta_index)
    tail = list(rule.comparisons) + list(rule.negative_atoms)
    last_use = _last_use_positions(program, rule, ordered, tail)
    base = len(ordered)

    occ: Dict[str, Dict[PhysRef, float]] = {}
    first: Dict[str, int] = {}

    def note(var: str, phys: PhysRef, weight: float, pos: int) -> None:
        weights = occ.setdefault(var, {})
        weights[phys] = weights.get(phys, 0.0) + weight
        if var not in first or pos < first[var]:
            first[var] = pos

    for pos, (atom_idx, atom) in enumerate(ordered):
        use_delta = delta_index is not None and atom_idx == delta_index
        invariant = (not use_delta) and atom.relation not in stratum_preds
        weight = _INVARIANT_WEIGHT if invariant else 1.0
        seen: Set[str] = set()
        for term, _logical, phys in _atom_schema(program, atom):
            if isinstance(term, Variable) and term.name not in seen:
                seen.add(term.name)
                note(term.name, phys, weight, pos)
    for i, item in enumerate(tail):
        pos = base + i
        if isinstance(item, Atom):
            invariant = item.relation not in stratum_preds
            weight = _INVARIANT_WEIGHT if invariant else 1.0
            seen = set()
            for term, _logical, phys in _atom_schema(program, item):
                if isinstance(term, Variable) and term.name not in seen:
                    seen.add(term.name)
                    note(term.name, phys, weight, pos)
        else:
            for var in item.variables():
                occ.setdefault(var, {})
                first.setdefault(var, pos)
    # Head occurrences: a variable already sitting on its head attribute
    # needs no final rename.  Unsafe (universe-bound) variables become
    # live where the universe binding happens.
    seen = set()
    for term, _logical, phys in _atom_schema(program, rule.head):
        if isinstance(term, Variable) and term.name not in seen:
            seen.add(term.name)
            note(term.name, phys, 1.0, first.get(term.name, base))

    interval = {
        var: (first.get(var, base), last_use.get(var, base))
        for var in occ
    }

    def conflicts(a: str, b: str) -> bool:
        lo_a, hi_a = interval[a]
        lo_b, hi_b = interval[b]
        return not (hi_a < lo_b or hi_b < lo_a)

    order = sorted(
        occ, key=lambda v: (-sum(occ[v].values()), v)
    )
    assigned: Dict[str, PhysRef] = {}
    for var in order:
        candidates = sorted(
            occ[var].items(), key=lambda kv: (-kv[1], kv[0])
        )
        for phys, _weight in candidates:
            logical, idx = phys
            if idx >= instances.get(logical, 0):
                continue  # outside the pool the greedy compilation sized
            taken = any(
                assigned.get(other) == phys and conflicts(var, other)
                for other in assigned
            )
            if not taken:
                assigned[var] = phys
                break
    return assigned


def _pass_assign_domains(
    unit: PlanUnit, rule_preds: Dict[int, Set[str]]
) -> int:
    """Re-lower every plan under its coloring; keep strict improvements.

    Returns the number of plans replaced.
    """
    program = unit.program
    improved = 0
    base_water: Dict[str, int] = {}
    for decl in program.relations.values():
        for attr, inst in zip(decl.attributes, decl.resolved_instances()):
            if inst + 1 > base_water.get(attr.domain, 0):
                base_water[attr.domain] = inst + 1
    for key, plan in list(unit.plans.items()):
        rule_idx, variant = key
        rule = program.rules[rule_idx]
        preds = rule_preds.get(id(rule), set())
        if replace_cost(plan, preds) <= 0:
            continue  # already rename-free; no candidate can beat it
        assignment = _color_rule(program, rule, variant, preds, unit.instances)
        if not assignment:
            continue
        # A coloring that agrees with every binding the greedy lowering
        # already chose would re-lower to the identical plan; hints for
        # variables the lowering never bound are never consulted.
        targets = plan.var_targets
        if all(targets.get(v, p) == p for v, p in assignment.items()):
            continue
        local = _Allocator()
        local.high_water = dict(base_water)
        try:
            candidate = compile_rule(program, rule, variant, local, assignment)
        except DatalogError:
            continue
        # The pool is sized from the greedy compilation; a candidate that
        # needs a new instance would change BDD levels — reject it.
        if any(
            idx >= unit.instances.get(logical, 0)
            for logical, idx in candidate.phys_refs()
        ):
            continue
        if replace_cost(candidate, preds) < replace_cost(plan, preds) - 1e-9:
            try:
                validate_plan(program, candidate)
            except DatalogError:
                continue
            candidate.source = "optimized"
            unit.plans[key] = candidate
            improved += 1
    return improved


# ----------------------------------------------------------------------
# coalesce: merge single-use Exist/Exist and Replace/Replace chains
# ----------------------------------------------------------------------


def _compose_renames(
    inner: Tuple[Tuple[PhysRef, PhysRef], ...],
    outer: Tuple[Tuple[PhysRef, PhysRef], ...],
) -> Tuple[Tuple[PhysRef, PhysRef], ...]:
    inner_map = dict(inner)
    outer_map = dict(outer)
    inner_targets = set(inner_map.values())
    composed: Dict[PhysRef, PhysRef] = {}
    for src, dst in inner_map.items():
        composed[src] = outer_map.get(dst, dst)
    for src, dst in outer_map.items():
        if src not in inner_targets:
            composed[src] = dst
    return tuple(sorted((s, d) for s, d in composed.items() if s != d))


def _coalesce_plan(plan: RulePlan) -> None:
    while True:
        by_out = {op.out: op for op in plan.ops}
        uses: Dict[int, int] = {}
        for op in plan.ops:
            for r in op.inputs():
                uses[r] = uses.get(r, 0) + 1
        merged = False
        for op in plan.ops:
            if isinstance(op, Exist):
                src = by_out[op.src]
                if isinstance(src, Exist) and uses.get(src.out, 0) == 1:
                    op.src = src.src
                    op.refs = tuple(sorted(set(src.refs) | set(op.refs)))
                    _rebuild(plan, drop={src.out}, dce=False)
                    merged = True
                    break
            elif isinstance(op, Replace):
                src = by_out[op.src]
                if isinstance(src, Replace) and uses.get(src.out, 0) == 1:
                    op.mapping = _compose_renames(src.mapping, op.mapping)
                    op.src = src.src
                    _rebuild(plan, drop={src.out}, dce=False)
                    merged = True
                    break
        if not merged:
            return


# ----------------------------------------------------------------------
# dead-op: identity simplification + dead code elimination
# ----------------------------------------------------------------------


def _dead_op_plan(plan: RulePlan) -> None:
    while True:
        by_out = {op.out: op for op in plan.ops}
        alias: Dict[int, int] = {}
        drop: Set[int] = set()
        for op in plan.ops:
            if isinstance(op, Exist) and not op.refs:
                alias[op.out] = op.src
                drop.add(op.out)
            elif isinstance(op, Replace) and not op.mapping:
                alias[op.out] = op.src
                drop.add(op.out)
            elif isinstance(op, And):
                if isinstance(by_out[op.lhs], Top):
                    alias[op.out] = op.rhs
                    drop.add(op.out)
                elif isinstance(by_out[op.rhs], Top):
                    alias[op.out] = op.lhs
                    drop.add(op.out)
        _rebuild(plan, alias, drop, dce=True)
        if not alias and not drop:
            return


# ----------------------------------------------------------------------
# hoist (+ cse): loop-invariant preparation chains -> preamble slots
# ----------------------------------------------------------------------


def _block_key(block: List[Op]) -> Tuple:
    index = {op.out: k for k, op in enumerate(block)}
    return tuple(
        (op.kind, op.schema, op.args_key(), tuple(index[r] for r in op.inputs()))
        for op in block
    )


def _block_closed(block: List[Op]) -> bool:
    outs = {op.out for op in block}
    first = block[0]
    if first.inputs():
        return False
    return all(set(op.inputs()) <= outs for op in block[1:])


def _pass_hoist(
    unit: PlanUnit,
    strata: Sequence[Stratum],
    rule_stratum: Dict[int, int],
    share: bool,
) -> None:
    slot_by_key: Dict[Tuple, int] = {}
    stratum_slots: Dict[int, Set[int]] = {}
    for key, plan in unit.plans.items():
        rule_idx, variant = key
        rule = unit.program.rules[rule_idx]
        s_idx = rule_stratum.get(id(rule))
        if s_idx is None:
            continue
        stratum = strata[s_idx]
        if id(rule) not in set(map(id, stratum.recursive_rules)):
            continue  # only loops benefit from hoisting
        new_ops: List[Op] = []
        changed = False
        i = 0
        while i < len(plan.ops):
            op = plan.ops[i]
            origin = op.origin
            hoistable = (
                origin is not None
                and not origin[1]  # not the delta atom
                and origin[0] not in stratum.predicates  # loop-invariant
            )
            if not hoistable:
                new_ops.append(op)
                i += 1
                continue
            j = i
            block: List[Op] = []
            while j < len(plan.ops) and plan.ops[j].origin == origin:
                block.append(plan.ops[j])
                j += 1
            # A bare Load is already just a node read — nothing to hoist.
            if len(block) < 2 or not _block_closed(block):
                new_ops.extend(block)
                i = j
                continue
            cache_scope = None if share else id(plan)
            slot_key = (cache_scope, origin[0]) + _block_key(block)
            # Capture the plan-level result register/spine before the block
            # ops are renumbered into slot-local registers.
            result_reg = block[-1].out
            result_spine = block[-1].spine
            slot_id = slot_by_key.get(slot_key)
            if slot_id is None:
                slot_id = len(unit.hoisted)
                slot_by_key[slot_key] = slot_id
                local_index = {op_.out: k for k, op_ in enumerate(block)}
                for k, op_ in enumerate(block):
                    _remap_inputs(op_, lambda r: local_index[r])
                    op_.out = k
                    op_.spine = False
                unit.hoisted[slot_id] = HoistedSlot(
                    slot=slot_id,
                    relation=origin[0],
                    ops=block,
                    key=slot_key,
                )
            slot_last = unit.hoisted[slot_id].ops[-1]
            load = LoadHoisted(result_reg, slot_last.schema, slot_id)
            load.spine = result_spine
            load.origin = origin
            unit.hoisted[slot_id].shared_by.append(
                f"{plan.head_relation}#{rule_idx}/{variant}"
            )
            new_ops.append(load)
            stratum_slots.setdefault(s_idx, set()).add(slot_id)
            changed = True
            i = j
        if changed:
            plan.ops = new_ops
            _rebuild(plan, dce=False)
    unit.stratum_slots = {
        s_idx: sorted(slots) for s_idx, slots in stratum_slots.items()
    }


# ----------------------------------------------------------------------
# fuse: superop fusion + stratum shared-operand grouping
# ----------------------------------------------------------------------


def _renumber_ops(ops: List[Op]) -> None:
    reg_map: Dict[int, int] = {}
    for idx, op in enumerate(ops):
        _remap_inputs(op, lambda r: reg_map[r])
        reg_map[op.out] = idx
        op.out = idx


def _fuse_ops(ops: List[Op]) -> List[Op]:
    """Merge ``Replace(RelProd(...))`` and ``Exist(And(...))`` pairs where
    the rename/projection is the producer's only reader."""
    while True:
        by_out = {op.out: op for op in ops}
        uses: Dict[int, int] = {}
        for op in ops:
            for r in op.inputs():
                uses[r] = uses.get(r, 0) + 1
        merged = False
        for i, op in enumerate(ops):
            fused: Optional[Op] = None
            src: Optional[Op] = None
            if isinstance(op, Replace):
                src = by_out[op.src]
                if isinstance(src, RelProd) and uses.get(src.out, 0) == 1:
                    fused = RelProdReplace(
                        op.out, op.schema, src.lhs, src.rhs, src.refs, op.mapping
                    )
            elif isinstance(op, Exist):
                src = by_out[op.src]
                if isinstance(src, And) and uses.get(src.out, 0) == 1:
                    fused = AndExist(
                        op.out, op.schema, src.lhs, src.rhs, op.refs
                    )
            if fused is not None:
                fused.spine = op.spine or src.spine
                fused.origin = op.origin
                out = [o for o in ops[:i] if o.out != src.out]
                out.append(fused)
                out.extend(ops[i + 1:])
                _renumber_ops(out)
                ops = out
                merged = True
                break
        if not merged:
            return ops


def _pass_fuse(
    unit: PlanUnit,
    strata: Sequence[Stratum],
    rule_stratum: Dict[int, int],
) -> None:
    """Fuse adjacent superop pairs in every plan and hoisted slot, then
    group the loads the independent recursive plans of a stratum re-issue
    every fixpoint iteration into per-stratum shared-operand slots."""
    for plan in unit.plans.values():
        plan.ops = _fuse_ops(plan.ops)
    for slot in unit.hoisted.values():
        slot.ops = _fuse_ops(slot.ops)

    # Group per-iteration operand loads.  Only the delta variants whose
    # delta atom is a stratum predicate run inside the fixpoint loop;
    # other variants keep plain loads (SharedLoad self-evaluates anyway).
    rule_index = {id(rule): i for i, rule in enumerate(unit.program.rules)}
    in_loop: Dict[int, List[Tuple[str, RulePlan]]] = {}
    for key, plan in unit.plans.items():
        rule_idx, variant = key
        if variant is None:
            continue
        rule = unit.program.rules[rule_idx]
        s_idx = rule_stratum.get(id(rule))
        if s_idx is None:
            continue
        stratum = strata[s_idx]
        atom = rule.positive_atoms[variant]
        if atom.relation not in stratum.predicates:
            continue
        label = f"{plan.head_relation}#{rule_index[id(rule)]}/{variant}"
        in_loop.setdefault(s_idx, []).append((label, plan))

    stratum_shared: Dict[int, List[SharedSlot]] = {}
    slot_counter = 0
    for s_idx in sorted(in_loop):
        plans = in_loop[s_idx]
        counts: Dict[Tuple[str, bool], int] = {}
        for _label, plan in plans:
            seen: Set[Tuple[str, bool]] = set()
            for op in plan.ops:
                if isinstance(op, Load):
                    k = (op.relation, op.use_delta)
                    if k not in seen:
                        seen.add(k)
                        counts[k] = counts.get(k, 0) + 1
        slots: Dict[Tuple[str, bool], SharedSlot] = {}
        for label, plan in plans:
            for i, op in enumerate(plan.ops):
                if not isinstance(op, Load):
                    continue
                k = (op.relation, op.use_delta)
                if counts.get(k, 0) < 2:
                    continue
                slot = slots.get(k)
                if slot is None:
                    slot = SharedSlot(
                        slot_counter, op.relation, op.use_delta, op.schema
                    )
                    slot_counter += 1
                    slots[k] = slot
                load = SharedLoad(
                    op.out, op.schema, slot.slot, op.relation, op.use_delta
                )
                load.spine = op.spine
                load.origin = op.origin
                plan.ops[i] = load
                if label not in slot.shared_by:
                    slot.shared_by.append(label)
        if slots:
            stratum_shared[s_idx] = sorted(
                slots.values(), key=lambda s: s.slot
            )
    unit.stratum_shared = stratum_shared


# ----------------------------------------------------------------------
# Pipeline driver
# ----------------------------------------------------------------------


def run_pipeline(
    unit: PlanUnit,
    strata: Sequence[Stratum],
    options: PassOptions,
) -> PlanUnit:
    """Run the enabled passes over ``unit`` in place; returns it.

    Every plan is re-validated afterwards: an optimizer bug must surface
    as a loud :class:`DatalogError` at solver construction, never as a
    silently wrong fixpoint.
    """
    if not options.enabled:
        unit.applied_passes = []
        return unit
    rule_preds: Dict[int, Set[str]] = {}
    rule_stratum: Dict[int, int] = {}
    for s_idx, stratum in enumerate(strata):
        for rule in stratum.rules:
            rule_preds[id(rule)] = stratum.predicates
            rule_stratum[id(rule)] = s_idx
    applied: List[str] = []
    if options.runs("assign-domains"):
        _pass_assign_domains(unit, rule_preds)
        applied.append("assign-domains")
    if options.runs("coalesce"):
        for plan in unit.plans.values():
            _coalesce_plan(plan)
        applied.append("coalesce")
    if options.runs("dead-op"):
        for plan in unit.plans.values():
            _dead_op_plan(plan)
        applied.append("dead-op")
    if options.runs("hoist"):
        _pass_hoist(unit, strata, rule_stratum, share=options.runs("cse"))
        applied.append("hoist")
        if options.runs("cse"):
            applied.append("cse")
    if options.runs("fuse"):
        _pass_fuse(unit, strata, rule_stratum)
        applied.append("fuse")
    if options.runs("reorder-rules"):
        unit.reorder_rules = True
        applied.append("reorder-rules")
    all_shared = {
        slot.slot: slot
        for slots in unit.stratum_shared.values()
        for slot in slots
    }
    for plan in unit.plans.values():
        validate_plan(unit.program, plan, unit.hoisted, all_shared)
    unit.applied_passes = applied
    return unit
