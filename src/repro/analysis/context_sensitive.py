"""Cloning-based context-sensitive points-to analysis (Algorithms 4 + 5).

The driver:

1. obtains a call graph (by default the one discovered by Algorithm 3,
   as Section 4.2 prescribes: "a pre-computed call graph created, for
   example, by using a context-insensitive points-to analysis"),
2. numbers all reduced call paths with Algorithm 4
   (:mod:`repro.callgraph.numbering`) — exact big-integer counts,
3. sizes the ``C`` domain to the clone count, builds the ``IEC`` (and
   ``MC``) BDDs from contiguous-range and add-constant primitives,
4. runs the Algorithm 5 Datalog program.

The result exposes the context-sensitive ``vPC`` plus its projection to a
context-insensitive view (Figure 6's "projected" columns).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..callgraph import (
    CallGraph,
    ContextNumbering,
    cha_call_graph,
    number_call_graph,
    number_call_graph_1cfa,
)
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program
from .base import AnalysisError, AnalysisResult, load_datalog_source, make_solver
from .context_insensitive import ContextInsensitiveAnalysis

__all__ = ["ContextSensitiveAnalysis", "ContextSensitiveResult"]


@dataclass
class ContextSensitiveResult(AnalysisResult):
    """Result of Algorithm 5: ``vPC``, ``hP``, and the numbering."""

    numbering: Optional[ContextNumbering] = None
    call_graph: Optional[CallGraph] = None

    def _points_to_tuples(self):
        # Project the context away for the name-level helpers.
        projected = self.solver.relation("vPC").project("variable", "heap")
        return projected.tuples()

    @property
    def vPC(self):
        return self.solver.relation("vPC")

    @property
    def hP(self):
        return self.solver.relation("hP")

    def num_contexts(self, method: str) -> int:
        return self.numbering.num_contexts(self.facts.method_id(method))

    def max_paths(self) -> int:
        return self.numbering.max_paths()

    def points_to_in_context(self, method: str, var: str, context: int) -> Set[str]:
        v = self.facts.var_id(method, var)
        heaps = self.facts.maps["H"]
        sel = self.vPC.select(context=context, variable=v)
        return {heaps[h] for (h,) in sel.tuples()}

    def contexts_of_fact(self, method: str, var: str, heap_name: str) -> Set[int]:
        """Contexts under which ``var`` may point to the named heap object."""
        v = self.facts.var_id(method, var)
        h = self.facts.id_of("H", heap_name)
        sel = self.vPC.select(variable=v, heap=h)
        return {c for (c,) in sel.tuples()}


class ContextSensitiveAnalysis:
    """Driver for Algorithms 4 + 5 (and, via subclassing, 6)."""

    algorithm = "algorithm5"

    def __init__(
        self,
        program: Optional[Program] = None,
        facts: Optional[Facts] = None,
        call_graph: Optional[CallGraph] = None,
        use_cha_graph: bool = False,
        context_cap: Optional[int] = None,
        context_policy: str = "paths",
        order_spec: Optional[str] = None,
        naive: bool = False,
        query_fragments: Sequence[str] = (),
        extra_text: str = "",
    ) -> None:
        if facts is None:
            if program is None:
                raise AnalysisError("provide a Program or extracted Facts")
            facts = extract_facts(program)
        if context_policy not in ("paths", "1cfa"):
            raise AnalysisError(
                f"context_policy must be 'paths' or '1cfa', got {context_policy!r}"
            )
        self.facts = facts
        self.call_graph = call_graph
        self.use_cha_graph = use_cha_graph
        self.context_cap = context_cap
        self.context_policy = context_policy
        self.order_spec = order_spec
        self.naive = naive
        self.query_fragments = tuple(query_fragments)
        self.extra_text = extra_text

    # ------------------------------------------------------------------

    def _obtain_call_graph(self) -> CallGraph:
        if self.call_graph is not None:
            return self.call_graph
        if self.use_cha_graph:
            return cha_call_graph(self.facts)
        ci = ContextInsensitiveAnalysis(
            facts=self.facts, type_filtering=True, discover_call_graph=True
        ).run()
        return ci.discovered_call_graph

    def run(self) -> ContextSensitiveResult:
        start = time.monotonic()
        facts = self.facts
        graph = self._obtain_call_graph()
        entries = facts.entry_method_ids()
        if self.context_policy == "1cfa":
            numbering = number_call_graph_1cfa(graph, entries=entries)
        else:
            numbering = number_call_graph(
                graph, entries=entries, cap=self.context_cap
            )
        c_size = numbering.context_domain_size()

        source = load_datalog_source(self.algorithm, self.query_fragments)
        solver = make_solver(
            facts,
            source,
            size_overrides={"C": c_size},
            order_spec=self.order_spec,
            naive=self.naive,
            extra_text=self.extra_text,
        )
        self._install_numbering(solver, numbering, graph)
        solver.solve()
        seconds = time.monotonic() - start
        return self._wrap_result(solver, numbering, graph, seconds)

    def _install_numbering(
        self, solver, numbering: ContextNumbering, graph: CallGraph
    ) -> None:
        facts = self.facts
        iec = solver.relation("IEC")
        c0 = iec.attribute("caller").phys
        i0 = iec.attribute("invoke").phys
        c1 = iec.attribute("callee").phys
        m0 = iec.attribute("tgt").phys
        entry = facts.method_id(facts.program.entry.qualified)
        node = numbering.build_iec(
            solver.manager,
            c0,
            i0,
            c1,
            m0,
            alloc_sites=facts.alloc_sites,
            global_site=facts.global_site,
            global_method=entry,
        )
        solver.set_node("IEC", node)
        mc = solver.relation("MC")
        mc_node = numbering.build_mc(
            solver.manager,
            mc.attribute("context").phys,
            mc.attribute("method").phys,
        )
        solver.set_node("MC", mc_node)

    def _wrap_result(self, solver, numbering, graph, seconds):
        return ContextSensitiveResult(
            facts=self.facts,
            solver=solver,
            seconds=seconds,
            numbering=numbering,
            call_graph=graph,
        )
