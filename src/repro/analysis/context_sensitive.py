"""Cloning-based context-sensitive points-to analysis (Algorithms 4 + 5).

The driver:

1. obtains a call graph (by default the one discovered by Algorithm 3,
   as Section 4.2 prescribes: "a pre-computed call graph created, for
   example, by using a context-insensitive points-to analysis"),
2. numbers all reduced call paths with Algorithm 4
   (:mod:`repro.callgraph.numbering`) — exact big-integer counts,
3. sizes the ``C`` domain to the clone count, builds the ``IEC`` (and
   ``MC``) BDDs from contiguous-range and add-constant primitives,
4. runs the Algorithm 5 Datalog program.

The result exposes the context-sensitive ``vPC`` plus its projection to a
context-insensitive view (Figure 6's "projected" columns).
"""

from __future__ import annotations

import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..callgraph import (
    CallGraph,
    ContextNumbering,
    cha_call_graph,
    number_call_graph,
    number_call_graph_1cfa,
)
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program
from ..runtime import (
    Attempt,
    DegradationReport,
    NodeBudgetExceeded,
    ReproError,
    ResourceBudget,
    load_checkpoint,
    save_checkpoint,
)
from .base import (
    AnalysisError,
    AnalysisResult,
    improved_order_spec,
    load_datalog_source,
    make_solver,
    outcome_of,
)
from .context_insensitive import ContextInsensitiveAnalysis

__all__ = ["ContextSensitiveAnalysis", "ContextSensitiveResult"]


@dataclass
class ContextSensitiveResult(AnalysisResult):
    """Result of Algorithm 5: ``vPC``, ``hP``, and the numbering."""

    numbering: Optional[ContextNumbering] = None
    call_graph: Optional[CallGraph] = None

    def _points_to_tuples(self):
        # Project the context away for the name-level helpers.
        projected = self.solver.relation("vPC").project("variable", "heap")
        return projected.tuples()

    @property
    def vPC(self):
        return self.solver.relation("vPC")

    @property
    def hP(self):
        return self.solver.relation("hP")

    def num_contexts(self, method: str) -> int:
        return self.numbering.num_contexts(self.facts.method_id(method))

    def max_paths(self) -> int:
        return self.numbering.max_paths()

    def points_to_in_context(self, method: str, var: str, context: int) -> Set[str]:
        v = self.facts.var_id(method, var)
        heaps = self.facts.maps["H"]
        sel = self.vPC.select(context=context, variable=v)
        return {heaps[h] for (h,) in sel.tuples()}

    def contexts_of_fact(self, method: str, var: str, heap_name: str) -> Set[int]:
        """Contexts under which ``var`` may point to the named heap object."""
        v = self.facts.var_id(method, var)
        h = self.facts.id_of("H", heap_name)
        sel = self.vPC.select(variable=v, heap=h)
        return {c for (c,) in sel.tuples()}


class ContextSensitiveAnalysis:
    """Driver for Algorithms 4 + 5 (and, via subclassing, 6)."""

    algorithm = "algorithm5"

    def __init__(
        self,
        program: Optional[Program] = None,
        facts: Optional[Facts] = None,
        call_graph: Optional[CallGraph] = None,
        use_cha_graph: bool = False,
        context_cap: Optional[int] = None,
        context_policy: str = "paths",
        order_spec: Optional[str] = None,
        naive: bool = False,
        query_fragments: Sequence[str] = (),
        extra_text: str = "",
        budget: Optional[ResourceBudget] = None,
        checkpoint_dir: Optional[str] = None,
        degrade: bool = True,
        truncate_cap: int = 64,
        backend: Optional[str] = None,
        optimize: Optional[bool] = None,
        disabled_passes: Optional[Sequence[str]] = None,
        trace_ops: bool = False,
    ) -> None:
        if facts is None:
            if program is None:
                raise AnalysisError("provide a Program or extracted Facts")
            facts = extract_facts(program)
        if context_policy not in ("paths", "1cfa"):
            raise AnalysisError(
                f"context_policy must be 'paths' or '1cfa', got {context_policy!r}"
            )
        self.facts = facts
        self.call_graph = call_graph
        self.use_cha_graph = use_cha_graph
        self.context_cap = context_cap
        self.context_policy = context_policy
        self.order_spec = order_spec
        self.naive = naive
        self.query_fragments = tuple(query_fragments)
        self.extra_text = extra_text
        self.budget = budget
        self.checkpoint_dir = checkpoint_dir
        self.degrade = degrade
        self.truncate_cap = truncate_cap
        self.backend = backend
        self.optimize = optimize
        self.disabled_passes = disabled_passes
        self.trace_ops = trace_ops

    # ------------------------------------------------------------------

    def _obtain_call_graph(self) -> CallGraph:
        if self.call_graph is not None:
            return self.call_graph
        if self.use_cha_graph:
            return cha_call_graph(self.facts)
        ci = ContextInsensitiveAnalysis(
            facts=self.facts,
            type_filtering=True,
            discover_call_graph=True,
            backend=self.backend,
            optimize=self.optimize,
            disabled_passes=self.disabled_passes,
        ).run()
        return ci.discovered_call_graph

    def _number(self, graph: CallGraph, cap: Optional[int] = None) -> ContextNumbering:
        entries = self.facts.entry_method_ids()
        if cap is None and self.context_policy == "1cfa":
            return number_call_graph_1cfa(graph, entries=entries)
        use_cap = cap if cap is not None else self.context_cap
        return number_call_graph(graph, entries=entries, cap=use_cap)

    def _build_solver(
        self,
        numbering: ContextNumbering,
        graph: CallGraph,
        order_spec: Optional[str],
        budget: Optional[ResourceBudget] = None,
        install: bool = True,
    ):
        source = load_datalog_source(self.algorithm, self.query_fragments)
        solver = make_solver(
            self.facts,
            source,
            size_overrides={"C": numbering.context_domain_size()},
            order_spec=order_spec,
            naive=self.naive,
            extra_text=self.extra_text,
            budget=budget,
            backend=self.backend,
            optimize=self.optimize,
            disabled_passes=self.disabled_passes,
            trace_ops=self.trace_ops,
        )
        if install:
            self._install_numbering(solver, numbering, graph)
        return solver

    def run(self) -> AnalysisResult:
        """Run the analysis; with a budget attached, run *governed*.

        An ungoverned run (no budget) behaves exactly as before: any
        blowup runs to completion or the process dies with it.  A
        governed run never escapes with a raw resource fault while a
        cheaper sound configuration remains: it walks the degradation
        ladder (full → reorder-and-resume → k-truncated contexts →
        context-insensitive) and flags the result ``degraded=True`` with
        a :class:`DegradationReport` when the first rung did not produce
        the answer.  With ``degrade=False`` the budget is enforced but
        faults propagate to the caller after the first attempt.
        """
        if self.budget is None or not self.degrade:
            return self._run_once()
        return self._run_governed()

    def _run_once(self) -> ContextSensitiveResult:
        start = time.monotonic()
        graph = self._obtain_call_graph()
        numbering = self._number(graph)
        solver = self._build_solver(
            numbering, graph, self.order_spec, budget=self.budget
        )
        solver.solve()
        seconds = time.monotonic() - start
        return self._wrap_result(solver, numbering, graph, seconds)

    def run_rung(self, mode: str = "full") -> AnalysisResult:
        """Run exactly *one* ladder rung — the unit a process supervisor
        retries and steps down.

        Unlike :meth:`_run_governed`, which walks the whole ladder inside
        one process, ``run_rung`` runs the named mode and lets faults
        propagate: the supervisor (another process) owns the retry and
        step-down policy.  Two supervisor-facing behaviors:

        * with ``checkpoint_dir`` set, a ``full`` rung resumes from an
          existing checkpoint and, on *any* exception, checkpoints the
          strata completed so far before re-raising — so a retried
          attempt does not redo finished work;
        * the result's ``resumed`` attribute reports whether a checkpoint
          was consumed.
        """
        start = time.monotonic()
        if mode == "context_insensitive":
            result = ContextInsensitiveAnalysis(
                facts=self.facts,
                type_filtering=True,
                discover_call_graph=True,
                budget=self.budget,
                backend=self.backend,
                optimize=self.optimize,
                disabled_passes=self.disabled_passes,
            ).run()
            result.degraded = True
            result.resumed = False
            result.seconds = time.monotonic() - start
            return result

        graph = self._obtain_call_graph()
        if mode == "truncated":
            numbering = self._number(graph, cap=self.truncate_cap)
        elif mode == "full":
            numbering = self._number(graph)
        else:
            raise AnalysisError(
                f"run_rung mode must be one of 'full', 'truncated', "
                f"'context_insensitive', got {mode!r}"
            )

        ckpt_path = None
        resume_meta = None
        if mode == "full" and self.checkpoint_dir is not None:
            ckpt_path = pathlib.Path(self.checkpoint_dir) / "context_sensitive.ckpt"
            if not ckpt_path.exists():
                ckpt_path.parent.mkdir(parents=True, exist_ok=True)

        solver = self._build_solver(
            numbering, graph, self.order_spec, budget=self.budget,
            install=not (ckpt_path is not None and ckpt_path.exists()),
        )
        if ckpt_path is not None and ckpt_path.exists():
            resume_meta = load_checkpoint(solver, ckpt_path)
        try:
            if resume_meta is not None:
                solver.solve(start_stratum=resume_meta.next_stratum)
            else:
                solver.solve()
        except BaseException:
            # Checkpoint whatever is at fixpoint so the *next* attempt
            # (ours or a fresh process) starts from here, then let the
            # fault travel to the supervisor.
            if ckpt_path is not None:
                try:
                    save_checkpoint(
                        solver, ckpt_path,
                        next_stratum=solver.last_completed_stratum + 1,
                        extra_meta={"reason": "interrupted"},
                    )
                except Exception:
                    pass  # the original fault matters more
            raise
        result = self._wrap_result(
            solver, numbering, graph, time.monotonic() - start,
            degraded=(mode != "full"),
        )
        result.resumed = resume_meta is not None
        if ckpt_path is not None and ckpt_path.exists():
            ckpt_path.unlink()  # consumed: a later run must start fresh
        return result

    def _run_governed(self) -> AnalysisResult:
        budget = self.budget.start()
        report = DegradationReport()
        start = time.monotonic()

        # Obtain the call graph.  When we discover it ourselves the
        # context-insensitive baseline comes for free and doubles as the
        # ladder's last rung.
        ci_result = None
        graph = self.call_graph
        if graph is None:
            if self.use_cha_graph:
                graph = cha_call_graph(self.facts)
            else:
                ci_result = ContextInsensitiveAnalysis(
                    facts=self.facts,
                    type_filtering=True,
                    discover_call_graph=True,
                    budget=budget.share_deadline(),
                    backend=self.backend,
                    optimize=self.optimize,
                    disabled_passes=self.disabled_passes,
                ).run()
                graph = ci_result.discovered_call_graph

        ckpt_dir = self.checkpoint_dir
        tmp_holder = None
        if ckpt_dir is None:
            tmp_holder = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            ckpt_dir = tmp_holder.name
        try:
            full_budget = budget.share_deadline(
                node_budget=budget.node_budget,
                max_iterations=budget.max_iterations,
            )

            # Rung 1: the requested analysis.
            numbering = self._number(graph)
            solver = self._build_solver(
                numbering, graph, self.order_spec, budget=full_budget
            )
            t0 = time.monotonic()
            try:
                solver.solve()
                report.record(
                    Attempt("full", "ok", time.monotonic() - t0,
                            solver.manager.peak_nodes)
                )
                report.final_mode = "full"
                return self._wrap_result(
                    solver, numbering, graph, time.monotonic() - start,
                    degraded=False, report=report,
                )
            except ReproError as err:
                report.record(
                    Attempt("full", outcome_of(err), time.monotonic() - t0,
                            solver.manager.peak_nodes, detail=str(err))
                )
                first_err = err

            # Rung 2: retry-with-reorder.  Only worth it after a node
            # blowup — sifting cannot buy back an expired deadline.
            if isinstance(first_err, NodeBudgetExceeded) and not budget.expired():
                path = pathlib.Path(ckpt_dir) / "context_sensitive.ckpt"
                resume_from = max(first_err.completed_strata or 0, 0)
                save_checkpoint(
                    solver, path, next_stratum=resume_from,
                    extra_meta={"reason": outcome_of(first_err)},
                )
                new_spec = improved_order_spec(solver)
                del solver
                retry = self._build_solver(
                    numbering, graph, new_spec,
                    budget=budget.share_deadline(
                        node_budget=budget.node_budget,
                        max_iterations=budget.max_iterations,
                    ),
                    install=False,
                )
                meta = load_checkpoint(retry, path)
                t0 = time.monotonic()
                try:
                    retry.solve(start_stratum=meta.next_stratum)
                    report.record(
                        Attempt("reorder", "ok", time.monotonic() - t0,
                                retry.manager.peak_nodes,
                                detail=f"order={new_spec}")
                    )
                    report.degraded = True
                    report.final_mode = "reorder"
                    return self._wrap_result(
                        retry, numbering, graph, time.monotonic() - start,
                        degraded=True, report=report,
                    )
                except ReproError as err:
                    report.record(
                        Attempt("reorder", outcome_of(err),
                                time.monotonic() - t0,
                                retry.manager.peak_nodes, detail=str(err))
                    )
                    del retry

            # Rung 3: k-truncated context numbering.
            if not budget.expired():
                trunc = self._number(graph, cap=self.truncate_cap)
                tsolver = self._build_solver(
                    trunc, graph, self.order_spec,
                    budget=budget.share_deadline(
                        node_budget=budget.node_budget,
                        max_iterations=budget.max_iterations,
                    ),
                )
                t0 = time.monotonic()
                try:
                    tsolver.solve()
                    report.record(
                        Attempt("truncated", "ok", time.monotonic() - t0,
                                tsolver.manager.peak_nodes,
                                detail=f"cap={self.truncate_cap}")
                    )
                    report.degraded = True
                    report.final_mode = "truncated"
                    return self._wrap_result(
                        tsolver, trunc, graph, time.monotonic() - start,
                        degraded=True, report=report,
                    )
                except ReproError as err:
                    report.record(
                        Attempt("truncated", outcome_of(err),
                                time.monotonic() - t0,
                                tsolver.manager.peak_nodes, detail=str(err))
                    )
                    del tsolver

            # Rung 4: the context-insensitive answer — sound by
            # construction, and already computed when we discovered the
            # call graph ourselves.  Runs deadline-only: a node budget
            # that defeated every context-sensitive rung must not also
            # starve the fallback.
            t0 = time.monotonic()
            try:
                if ci_result is None:
                    ci_result = ContextInsensitiveAnalysis(
                        facts=self.facts,
                        type_filtering=True,
                        discover_call_graph=True,
                        budget=budget.share_deadline(),
                        backend=self.backend,
                        optimize=self.optimize,
                        disabled_passes=self.disabled_passes,
                    ).run()
            except ReproError as err:
                report.record(
                    Attempt("context_insensitive", outcome_of(err),
                            time.monotonic() - t0, 0, detail=str(err))
                )
                err.degradation = report
                raise
            report.record(
                Attempt("context_insensitive", "ok",
                        time.monotonic() - t0, ci_result.peak_nodes)
            )
            report.degraded = True
            report.final_mode = "context_insensitive"
            ci_result.degraded = True
            ci_result.degradation = report
            ci_result.seconds = time.monotonic() - start
            return ci_result
        finally:
            if tmp_holder is not None:
                tmp_holder.cleanup()

    def _install_numbering(
        self, solver, numbering: ContextNumbering, graph: CallGraph
    ) -> None:
        facts = self.facts
        iec = solver.relation("IEC")
        c0 = iec.attribute("caller").phys
        i0 = iec.attribute("invoke").phys
        c1 = iec.attribute("callee").phys
        m0 = iec.attribute("tgt").phys
        entry = facts.method_id(facts.program.entry.qualified)
        node = numbering.build_iec(
            solver.manager,
            c0,
            i0,
            c1,
            m0,
            alloc_sites=facts.alloc_sites,
            global_site=facts.global_site,
            global_method=entry,
        )
        solver.set_node("IEC", node)
        mc = solver.relation("MC")
        mc_node = numbering.build_mc(
            solver.manager,
            mc.attribute("context").phys,
            mc.attribute("method").phys,
        )
        solver.set_node("MC", mc_node)

    def _wrap_result(
        self, solver, numbering, graph, seconds, degraded=False, report=None
    ):
        return ContextSensitiveResult(
            facts=self.facts,
            solver=solver,
            seconds=seconds,
            numbering=numbering,
            call_graph=graph,
            degraded=degraded,
            degradation=report,
        )
