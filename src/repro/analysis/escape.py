"""Thread escape analysis (Algorithm 7, Section 5.6).

Thread contexts: context 0 is the shared/global context, context 1 the
main thread, and every thread allocation site gets **two** contexts — "to
distinguish between thread instances created at the same site, we create
two thread contexts to represent two separate thread instances.  If an
object created by one instance is not accessed by its clone, then it is
not accessed by any other instances created by the same call site."

The driver computes, from the (discovered) call graph:

* per-thread reachability — methods transitively invoked from a context's
  ``run()`` method, *not* descending through further ``start -> run``
  dispatch edges (those belong to the spawned thread),
* ``HT(c, h)`` — non-thread allocation sites each context may execute,
* ``vP0T`` — creator and ``this`` bindings for thread objects, and the
  global object visible from every context under the single context 0,
* ``assign`` — call-graph parameter/return bindings minus the
  ``start -> run`` receiver binding (covered by ``vP0T``), plus residual
  locals,

then runs the Algorithm 7 Datalog program, whose output includes the
``escaped`` / ``captured`` / ``neededSyncs`` queries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..callgraph import CallGraph, cha_call_graph
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program
from .base import AnalysisError, AnalysisResult, load_datalog_source, make_solver
from .context_insensitive import (
    ContextInsensitiveAnalysis,
    assign_edges_from_call_graph,
)

__all__ = [
    "ThreadEscapeAnalysis",
    "EscapeResult",
    "EscapeInputs",
    "thread_alloc_sites",
    "build_escape_inputs",
]

GLOBAL_CONTEXT = 0
MAIN_CONTEXT = 1


def thread_alloc_sites(facts: Facts) -> List[Tuple[int, int]]:
    """(heap id, run-method id) for every thread allocation site.

    Needs the type hierarchy, so it only works on full extracted
    :class:`Facts`; program-free fact sets (``repro.incremental``) store
    the result instead and bypass this via the ``thread_sites`` override.
    """
    hierarchy = facts.hierarchy
    type_names = facts.maps["T"]
    out = []
    for h, t in facts.relations["hT"]:
        cls = type_names[t]
        if cls == "Object" or not hierarchy.is_thread_type(cls):
            continue
        run = hierarchy.resolve(cls, "run")
        if run is None:
            continue
        out.append((h, facts.method_id(run.qualified)))
    return sorted(out)


@dataclass
class EscapeInputs:
    """The driver-computed input relations of the Algorithm 7 solver.

    Everything the Datalog program needs beyond the raw fact tables:
    the thread-context assignment, the sized ``C`` domain, and the
    ``assign`` / ``HT`` / ``vP0T`` / ``vP0`` tuple sets.  The incremental
    driver recomputes these from edited facts and diffs them against a
    checkpointed solver's inputs.
    """

    contexts: Dict[int, Tuple[int, int]]
    c_size: int
    assign: List[Tuple[int, int]]
    ht: List[Tuple[int, int]]
    vp0t: List[Tuple[int, int, int, int]]
    vp0: List[Tuple[int, int]]


def _reachable_without_spawn(
    graph: CallGraph, roots: Sequence[int], start_sites: Set[int]
) -> Set[int]:
    seen: Set[int] = set()
    stack = list(roots)
    while stack:
        m = stack.pop()
        if m in seen:
            continue
        seen.add(m)
        for edge in graph.successors(m):
            if edge.site in start_sites:
                continue  # crossing into another thread
            stack.append(edge.callee)
    return seen


def build_escape_inputs(
    facts: Facts,
    graph: CallGraph,
    thread_sites: Sequence[Tuple[int, int]],
) -> EscapeInputs:
    """Compute the Algorithm 7 inputs from facts + call graph.

    Pure bookkeeping over the fact tables and the graph — no hierarchy
    access, so it accepts both full :class:`Facts` and the program-free
    fact sets of :mod:`repro.incremental`.
    """
    start_name = (
        facts.id_of("N", "start") if "start" in facts.maps["N"] else None
    )
    start_sites = {i for _, i, n in facts.relations["mI"] if n == start_name}

    # Context assignment: two contexts per thread allocation site.
    contexts: Dict[int, Tuple[int, int]] = {}
    next_ctx = 2
    for h, _run in thread_sites:
        contexts[h] = (next_ctx, next_ctx + 1)
        next_ctx += 2
    c_size = max(next_ctx, 2)

    # Per-context reachable methods (main thread also runs the class
    # initializers).
    reach: Dict[int, Set[int]] = {
        MAIN_CONTEXT: _reachable_without_spawn(
            graph, facts.entry_method_ids(), start_sites
        )
    }
    for h, run in thread_sites:
        methods = _reachable_without_spawn(graph, [run], start_sites)
        for ctx in contexts[h]:
            reach[ctx] = methods

    # HT: non-thread allocation sites each context may execute.
    thread_heap_ids = {h for h, _ in thread_sites}
    ht: Set[Tuple[int, int]] = set()
    for ctx, methods in reach.items():
        for m in methods:
            for h in facts.alloc_sites.get(m, ()):
                if h not in thread_heap_ids:
                    ht.add((ctx, h))

    # vP0T: thread-object bindings and the global object.
    creator_var: Dict[int, int] = {}
    for v, h in facts.relations["vP0"]:
        if h in thread_heap_ids:
            creator_var[h] = v
    vp0t: Set[Tuple[int, int, int, int]] = set()
    for h, run in thread_sites:
        owner = facts.site_method.get(h)
        creator_ctxs = [c for c, methods in reach.items() if owner in methods]
        dst = creator_var.get(h)
        for ct in contexts[h]:
            if dst is not None:
                for cc in creator_ctxs:
                    vp0t.add((cc, dst, ct, h))
            # The run() clone's `this` points to its own thread object.
            for m, z, v in facts.relations["formal"]:
                if m == run and z == 0:
                    vp0t.add((ct, v, ct, h))
    global_v = facts.id_of("V", "<global>")
    global_h = facts.id_of("H", "<global>")
    for ctx in range(c_size):
        vp0t.add((ctx, global_v, GLOBAL_CONTEXT, global_h))

    # assign: call-graph bindings minus start->run receivers.
    assign = list(
        assign_edges_from_call_graph(facts, graph, skip_thread_start=True)
    )
    assign.extend(facts.relations["assign0"])

    # Exclude the global's own vP0 tuple: it is modeled through vP0T
    # with the shared context.
    vp0 = [
        (v, h)
        for v, h in facts.relations["vP0"]
        if (v, h) != (global_v, global_h)
    ]
    return EscapeInputs(
        contexts=contexts,
        c_size=c_size,
        assign=sorted(set(assign)),
        ht=sorted(ht),
        vp0t=sorted(vp0t),
        vp0=sorted(vp0),
    )


@dataclass
class EscapeResult(AnalysisResult):
    """Result of Algorithm 7 plus the escape queries."""

    thread_contexts: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def vPT(self):
        return self.solver.relation("vPT")

    def _points_to_tuples(self):
        return self.vPT.project("variable", "heap").tuples()

    def escaped_heaps(self) -> Set[int]:
        rel = self.solver.relation("escaped").project("heap")
        return {h for (h,) in rel.tuples()}

    def captured_heaps(self) -> Set[int]:
        rel = self.solver.relation("captured").project("heap")
        return {h for (h,) in rel.tuples()} - self.escaped_heaps()

    def needed_sync_vars(self) -> Set[int]:
        rel = self.solver.relation("neededSyncs").project("var")
        return {v for (v,) in rel.tuples()}

    def unneeded_sync_vars(self) -> Set[int]:
        all_syncs = {v for (v,) in self.facts.relations["sync"]}
        return all_syncs - self.needed_sync_vars()

    def needed_syncs_by_context(self) -> Dict[int, Set[int]]:
        """Per-thread-context needed synchronizations.

        "Notice that neededSyncs is context-sensitive.  Thus, we can
        distinguish when a synchronization is necessary only for certain
        threads, and generate specialized versions of methods for those
        threads."
        """
        out: Dict[int, Set[int]] = {}
        for c, v in self.solver.relation("neededSyncs").tuples():
            out.setdefault(c, set()).add(v)
        return out

    def sync_specialization(self) -> Dict[str, Dict[int, bool]]:
        """For every sync'd variable: context -> is the sync needed there?

        A variable needed in some contexts but not others is a candidate
        for thread-specialized method versions.
        """
        needed = self.needed_syncs_by_context()
        all_contexts = set(range(max(self.thread_contexts_count(), 2)))
        out: Dict[str, Dict[int, bool]] = {}
        for (v,) in self.facts.relations["sync"]:
            name = self.facts.maps["V"][v]
            out[name] = {
                c: v in needed.get(c, set()) for c in sorted(all_contexts)
            }
        return out

    def thread_contexts_count(self) -> int:
        highest = max(
            (c2 for _, (c1, c2) in self.thread_contexts.items()), default=1
        )
        return highest + 1

    def summary(self) -> Dict[str, int]:
        """The four columns of Figure 5."""
        return {
            "captured": len(self.captured_heaps()),
            "escaped": len(self.escaped_heaps()),
            "sync_unneeded": len(self.unneeded_sync_vars()),
            "sync_needed": len(self.needed_sync_vars()),
        }

    def is_captured(self, heap_name: str) -> bool:
        h = self.facts.id_of("H", heap_name)
        return h in self.captured_heaps()


class ThreadEscapeAnalysis:
    """Driver for Algorithm 7."""

    def __init__(
        self,
        program: Optional[Program] = None,
        facts: Optional[Facts] = None,
        call_graph: Optional[CallGraph] = None,
        use_cha_graph: bool = False,
        order_spec: Optional[str] = None,
        budget=None,
        backend: Optional[str] = None,
        optimize: Optional[bool] = None,
        disabled_passes: Optional[Sequence[str]] = None,
        trace_ops: bool = False,
        thread_sites: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        if facts is None:
            if program is None:
                raise AnalysisError("provide a Program or extracted Facts")
            facts = extract_facts(program)
        self.facts = facts
        self.thread_sites = thread_sites
        self.call_graph = call_graph
        self.use_cha_graph = use_cha_graph
        self.order_spec = order_spec
        self.budget = budget
        self.backend = backend
        self.optimize = optimize
        self.disabled_passes = disabled_passes
        self.trace_ops = trace_ops

    # ------------------------------------------------------------------

    def _obtain_call_graph(self) -> CallGraph:
        if self.call_graph is not None:
            return self.call_graph
        if self.use_cha_graph:
            return cha_call_graph(self.facts)
        ci = ContextInsensitiveAnalysis(
            facts=self.facts,
            type_filtering=True,
            discover_call_graph=True,
            backend=self.backend,
            optimize=self.optimize,
            disabled_passes=self.disabled_passes,
        ).run()
        return ci.discovered_call_graph

    def _thread_alloc_sites(self) -> List[Tuple[int, int]]:
        if self.thread_sites is not None:
            return sorted(tuple(site) for site in self.thread_sites)
        return thread_alloc_sites(self.facts)

    def run(self) -> EscapeResult:
        start_time = time.monotonic()
        facts = self.facts
        graph = self._obtain_call_graph()
        inputs = build_escape_inputs(facts, graph, self._thread_alloc_sites())

        source = load_datalog_source("algorithm7")
        solver = make_solver(
            facts,
            source,
            size_overrides={"C": inputs.c_size},
            order_spec=self.order_spec,
            budget=self.budget,
            backend=self.backend,
            optimize=self.optimize,
            disabled_passes=self.disabled_passes,
            trace_ops=self.trace_ops,
        )
        solver.add_tuples("assign", inputs.assign)
        solver.add_tuples("HT", inputs.ht)
        solver.add_tuples("vP0T", inputs.vp0t)
        solver.relation("vP0").set_tuples(inputs.vp0)
        solver.solve()
        seconds = time.monotonic() - start_time
        return EscapeResult(
            facts=facts,
            solver=solver,
            seconds=seconds,
            thread_contexts=inputs.contexts,
        )
