"""Precision comparison between analysis results.

Figure 6 measures precision through the type-refinement client.  This
module adds the other standard yardsticks used in the points-to
literature so analyses can be compared directly:

* average and maximum points-to set size per variable,
* share of singleton points-to sets (devirtualization/inlining headroom),
* pairwise alias-set comparison between two analyses,
* per-variable diff: which variables did a more precise analysis improve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .base import AnalysisError

__all__ = ["PrecisionStats", "precision_stats", "compare_precision", "PrecisionDiff"]


def _points_to_map(result) -> Dict[int, Set[int]]:
    out: Dict[int, Set[int]] = {}
    for v, h in result._points_to_tuples():
        out.setdefault(v, set()).add(h)
    return out


@dataclass(frozen=True)
class PrecisionStats:
    """Classic points-to precision metrics for one analysis result."""

    variables_with_targets: int
    total_pairs: int
    average_set_size: float
    max_set_size: int
    singleton_ratio: float

    def as_row(self) -> Tuple[float, float, float]:
        return (self.average_set_size, self.max_set_size, self.singleton_ratio)


def precision_stats(result) -> PrecisionStats:
    """Compute the metrics over the (projected) points-to relation."""
    pts = _points_to_map(result)
    if not pts:
        return PrecisionStats(0, 0, 0.0, 0, 1.0)
    sizes = [len(hs) for hs in pts.values()]
    singletons = sum(1 for s in sizes if s == 1)
    return PrecisionStats(
        variables_with_targets=len(pts),
        total_pairs=sum(sizes),
        average_set_size=sum(sizes) / len(sizes),
        max_set_size=max(sizes),
        singleton_ratio=singletons / len(pts),
    )


@dataclass
class PrecisionDiff:
    """Per-variable comparison of a precise result against a baseline."""

    improved: List[str]     # strictly smaller points-to set
    unchanged: int
    regressed: List[str]    # would indicate an unsoundness — must be empty
    baseline: PrecisionStats
    precise: PrecisionStats

    @property
    def improvement_ratio(self) -> float:
        total = len(self.improved) + self.unchanged
        return len(self.improved) / total if total else 0.0


def compare_precision(baseline, precise) -> PrecisionDiff:
    """Compare two results over the same facts.

    ``precise`` is expected to be at least as precise as ``baseline`` on
    every variable (e.g. Algorithm 5 projected vs Algorithm 3); any
    variable where it sees *more* is reported in ``regressed`` — the
    caller should treat that as a soundness alarm.
    """
    if baseline.facts is not precise.facts:
        raise AnalysisError("compare_precision requires results on the same facts")
    names = baseline.facts.maps["V"]
    base_pts = _points_to_map(baseline)
    prec_pts = _points_to_map(precise)
    improved: List[str] = []
    regressed: List[str] = []
    unchanged = 0
    for v, base_set in base_pts.items():
        prec_set = prec_pts.get(v, set())
        if prec_set < base_set:
            improved.append(names[v])
        elif prec_set == base_set:
            unchanged += 1
        else:
            regressed.append(names[v])
    for v in prec_pts:
        if v not in base_pts:
            regressed.append(names[v])
    return PrecisionDiff(
        improved=sorted(improved),
        unchanged=unchanged,
        regressed=sorted(regressed),
        baseline=precision_stats(baseline),
        precise=precision_stats(precise),
    )
