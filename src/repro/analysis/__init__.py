"""The paper's analyses: Algorithms 1–7 and the Section 5 queries.

Drivers
-------
* :class:`ContextInsensitiveAnalysis` — Algorithms 1, 2 (precomputed CHA
  call graph) and 3 (on-the-fly call graph discovery),
* :class:`ContextSensitiveAnalysis` — Algorithms 4 + 5 (cloning-based
  context-sensitive points-to),
* :class:`ContextSensitiveTypeAnalysis` — Algorithm 6,
* :class:`ThreadEscapeAnalysis` — Algorithm 7 with the escape queries,
* :mod:`repro.analysis.queries` — leak debugging, the JCE audit, type
  refinement, and mod-ref.

The Datalog programs themselves live in ``repro/analysis/datalog/*.dl``,
written as in the paper's listings.
"""

from .base import AnalysisError, AnalysisResult, load_datalog_source, make_solver
from .context_insensitive import (
    ContextInsensitiveAnalysis,
    ContextInsensitiveResult,
    assign_edges_from_call_graph,
)
from .context_sensitive import ContextSensitiveAnalysis, ContextSensitiveResult
from .type_analysis import ContextSensitiveTypeAnalysis, TypeAnalysisResult
from .escape import EscapeResult, ThreadEscapeAnalysis
from .compare import PrecisionDiff, PrecisionStats, compare_precision, precision_stats
from . import queries

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "ContextInsensitiveAnalysis",
    "ContextInsensitiveResult",
    "ContextSensitiveAnalysis",
    "ContextSensitiveResult",
    "ContextSensitiveTypeAnalysis",
    "EscapeResult",
    "PrecisionDiff",
    "PrecisionStats",
    "ThreadEscapeAnalysis",
    "TypeAnalysisResult",
    "assign_edges_from_call_graph",
    "compare_precision",
    "precision_stats",
    "load_datalog_source",
    "make_solver",
    "queries",
    "run_analysis",
]


def run_analysis(program, context_sensitive=False, **kwargs):
    """One-call entry point used by :func:`repro.analyze`.

    Runs Algorithm 3 (context-insensitive, on-the-fly call graph) or, when
    ``context_sensitive`` is set, Algorithms 4 + 5 on top of it.
    """
    if context_sensitive:
        return ContextSensitiveAnalysis(program=program, **kwargs).run()
    return ContextInsensitiveAnalysis(program=program, **kwargs).run()
