"""The Section 5 queries: memory-leak debugging, JCE security audit,
type refinement, and mod-ref analysis.

Each query is a few Datalog rules appended to the analysis program —
"using the same declarative programming interface, we can conveniently
query the results and extract exactly the information we are interested
in."  Queries with program-specific constants (an allocation site, a
method name) generate their rule text at call time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.facts import Facts
from .base import AnalysisError
from .context_insensitive import ContextInsensitiveAnalysis
from .context_sensitive import ContextSensitiveAnalysis, ContextSensitiveResult
from .type_analysis import ContextSensitiveTypeAnalysis

__all__ = [
    "RefinementStats",
    "refinement_stats",
    "memory_leak_query",
    "security_vulnerability_query",
    "LeakReport",
    "VulnReport",
    "mod_ref",
    "CastReport",
    "cast_safety",
    "DevirtReport",
    "devirtualization",
]


# ----------------------------------------------------------------------
# Type refinement (Sections 5.3 and 6.3, Figure 6)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RefinementStats:
    """One Figure 6 cell pair: % multi-typed and % refinable variables."""

    multi: float
    refinable: float
    num_vars: int

    def as_row(self) -> Tuple[float, float]:
        return (self.multi, self.refinable)


def _percentages(facts: Facts, multi_vars: Set[int], refinable_vars: Set[int]) -> RefinementStats:
    total = len(facts.maps["V"])
    return RefinementStats(
        multi=100.0 * len(multi_vars) / total,
        refinable=100.0 * len(refinable_vars) / total,
        num_vars=total,
    )


def refinement_stats(result, variant: str = "auto") -> RefinementStats:
    """Compute refinement precision from a result whose solver ran with a
    refinement query fragment.

    ``variant`` selects the relations: ``"ci"`` (multiType/refinable),
    ``"projected"`` (multiTypeP/refinableP) or ``"full"``
    (multiTypeC/refinableC).  ``"auto"`` picks ``"ci"`` when present.
    """
    solver = result.solver
    if variant == "auto":
        variant = "ci" if "multiType" in solver.relations else "projected"
    suffix = {"ci": "", "projected": "P", "full": "C"}[variant]
    multi = {v for (v,) in solver.relation(f"multiType{suffix}").tuples()}
    refinable = {
        v for v, _ in solver.relation(f"refinable{suffix}").tuples()
    }
    return _percentages(result.facts, multi, refinable)


# ----------------------------------------------------------------------
# Memory leak debugging (Section 5.1)
# ----------------------------------------------------------------------


@dataclass
class LeakReport:
    """Who may hold the leaked object, and who stored the pointers."""

    heap_name: str
    holders: List[Tuple[str, str]]          # (holding heap object, field)
    writers: List[Tuple[int, str, str, str]]  # (context, var, field, var)


def memory_leak_query(
    result: ContextSensitiveResult, heap_name: str
) -> LeakReport:
    """The Section 5.1 queries, evaluated against a solved Algorithm 5.

    ``whoPointsTo(h, f) :- hP(h, f, "<site>").`` finds objects/fields that
    may point to the leaked object; ``whoDunnit(c, v1, f, v2)`` finds the
    store instructions (and their contexts) creating those references.
    """
    facts = result.facts
    h_leak = facts.id_of("H", heap_name)
    heaps = facts.maps["H"]
    fields = facts.maps["F"]
    variables = facts.maps["V"]

    holders = []
    for h1, f, h2 in result.solver.relation("hP").tuples():
        if h2 == h_leak:
            holders.append((heaps[h1], fields[f]))

    # whoDunnit: store(v1, f, v2), vPC(c, v2, "<site>").
    writers = []
    pointing = result.solver.relation("vPC").select(heap=h_leak)
    pointing_pairs = set(pointing.tuples())  # (context, variable)
    by_var: Dict[int, Set[int]] = {}
    for c, v in pointing_pairs:
        by_var.setdefault(v, set()).add(c)
    for v1, f, v2 in facts.relations["store"]:
        for c in by_var.get(v2, ()):
            writers.append((c, variables[v1], fields[f], variables[v2]))
    return LeakReport(heap_name=heap_name, holders=sorted(set(holders)), writers=sorted(set(writers)))


# ----------------------------------------------------------------------
# Security vulnerability (Section 5.2)
# ----------------------------------------------------------------------


@dataclass
class VulnReport:
    """Invocations of PBEKeySpec.init whose key derives from a String."""

    vulnerable_sites: List[Tuple[int, str]]  # (context, invocation site name)

    def __bool__(self) -> bool:
        return bool(self.vulnerable_sites)


def security_vulnerability_query(
    result: ContextSensitiveResult,
    ie_tuples: Sequence[Tuple[int, int]],
    sink_method: str = "PBEKeySpec.init",
    source_class: str = "String",
) -> VulnReport:
    """The Section 5.2 audit over a solved Algorithm 5.

    ``fromString(h)`` holds for objects returned by any method of
    ``source_class``; an invocation of ``sink_method`` is flagged when its
    first argument may point to such an object.  ``ie_tuples`` supplies the
    resolved invocation edges (from Algorithm 3 or CHA).
    """
    facts = result.facts
    # fromString(h) :- cha("String", _, m), Mret(m, v), vPC(_, v, h).
    t_string = facts.id_of("T", source_class)
    string_methods = {
        m for t, _n, m in facts.relations["cha"] if t == t_string
    }
    # Include statics declared on the source class.
    for m_id, name in enumerate(facts.maps["M"]):
        if name.startswith(source_class + "."):
            string_methods.add(m_id)
    ret_vars = {
        v for m, v in facts.relations["Mret"] if m in string_methods
    }
    from_string: Set[int] = set()
    vpc = result.solver.relation("vPC").project("variable", "heap")
    var_heaps: Dict[int, Set[int]] = {}
    for v, h in vpc.tuples():
        var_heaps.setdefault(v, set()).add(h)
    for v in ret_vars:
        from_string |= var_heaps.get(v, set())

    # vuln(c, i) :- IE(i, "PBEKeySpec.init"), actual(i, 1, v),
    #               vPC(c, v, h), fromString(h).
    try:
        m_sink = facts.method_id(sink_method)
    except Exception:
        return VulnReport(vulnerable_sites=[])
    sink_sites = {i for i, m in ie_tuples if m == m_sink}
    first_args = {
        i: v for i, z, v in facts.relations["actual"] if z == 1 and i in sink_sites
    }
    sites = facts.maps["I"]
    found = []
    vpc_full = result.solver.relation("vPC")
    for i, v in first_args.items():
        heaps = var_heaps.get(v, set())
        if heaps & from_string:
            contexts = {
                c
                for c, vv, h in vpc_full.tuples()
                if vv == v and h in (heaps & from_string)
            }
            for c in contexts:
                found.append((c, sites[i]))
    return VulnReport(vulnerable_sites=sorted(found))


# ----------------------------------------------------------------------
# Mod-ref (Section 5.4)
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# Cast safety ("reduce overheads in cast operations", Section 5.3)
# ----------------------------------------------------------------------


@dataclass
class CastReport:
    """Downcast checkability: which casts can never fail at runtime."""

    safe: List[str]      # variable names whose cast always succeeds
    failing: List[str]   # variable names whose cast may fail
    evidence: Dict[str, List[str]]  # failing var -> offending heap names

    @property
    def safe_ratio(self) -> float:
        total = len(self.safe) + len(self.failing)
        return len(self.safe) / total if total else 1.0


def cast_safety(result) -> CastReport:
    """Classify every cast using a points-to result.

    Requires a context-insensitive analysis run with
    ``query_fragments=["query_casts"]``.
    """
    solver = result.solver
    if "safeCast" not in solver.relations:
        raise AnalysisError(
            "run ContextInsensitiveAnalysis(query_fragments=['query_casts'])"
        )
    facts = result.facts
    variables, heaps = facts.maps["V"], facts.maps["H"]
    safe = sorted(variables[v] for (v,) in solver.relation("safeCast").tuples())
    failing_ids = {v for (v,) in solver.relation("failingCast").tuples()}
    failing = sorted(variables[v] for v in failing_ids)
    evidence: Dict[str, List[str]] = {}
    for v, h in solver.relation("badCast").tuples():
        evidence.setdefault(variables[v], []).append(heaps[h])
    return CastReport(safe=safe, failing=failing, evidence=evidence)


# ----------------------------------------------------------------------
# Devirtualization ("resolve virtual method calls", Section 5.3)
# ----------------------------------------------------------------------


@dataclass
class DevirtReport:
    """Virtual call sites by resolution status."""

    mono: List[str]   # single points-to target: statically bindable
    poly: List[str]   # multiple targets remain
    dead: List[str]   # unreachable virtual sites (no target)
    dead_methods: List[str]

    @property
    def devirt_ratio(self) -> float:
        total = len(self.mono) + len(self.poly)
        return len(self.mono) / total if total else 1.0


def devirtualization(result) -> DevirtReport:
    """Classify virtual invocation sites using discovered call edges.

    Requires Algorithm 3 run with ``query_fragments=["query_devirt"]``.
    """
    solver = result.solver
    if "monoCall" not in solver.relations:
        raise AnalysisError(
            "run ContextInsensitiveAnalysis(query_fragments=['query_devirt'])"
        )
    facts = result.facts
    sites, methods = facts.maps["I"], facts.maps["M"]
    entry = facts.program.entry.qualified
    return DevirtReport(
        mono=sorted(sites[i] for (i,) in solver.relation("monoCall").tuples()),
        poly=sorted(sites[i] for (i,) in solver.relation("polyCall").tuples()),
        dead=sorted(sites[i] for (i,) in solver.relation("deadCall").tuples()),
        dead_methods=sorted(
            methods[m]
            for (m,) in solver.relation("deadMethod").tuples()
            if methods[m] != entry  # the entry point is live by definition
        ),
    )


def mod_ref(
    result: ContextSensitiveResult, method: str, context: Optional[int] = None
) -> Tuple[Set[Tuple[str, str]], Set[Tuple[str, str]]]:
    """(mod, ref) sets of ``method``: (heap object, field) pairs it may
    modify / reference, optionally restricted to one calling context.

    Requires Algorithm 5 to have been run with the ``query_modref``
    fragment.
    """
    solver = result.solver
    if "mod" not in solver.relations:
        raise AnalysisError(
            "run ContextSensitiveAnalysis(query_fragments=['query_modref'])"
        )
    facts = result.facts
    m_id = facts.method_id(method)
    heaps, fields = facts.maps["H"], facts.maps["F"]

    def collect(rel_name: str) -> Set[Tuple[str, str]]:
        out = set()
        for c, m, h, f in solver.relation(rel_name).tuples():
            if m != m_id:
                continue
            if context is not None and c != context:
                continue
            out.add((heaps[h], fields[f]))
        return out

    return collect("mod"), collect("ref")
