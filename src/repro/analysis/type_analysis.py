"""Context-sensitive type analysis (Algorithm 6, Section 5.5).

The 0-CFA-style type propagation made context-sensitive by the same
Algorithm 4 numbering — "much faster [than the full pointer analysis]
because the number of objects that can be pointed to is much smaller."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from .base import AnalysisResult
from .context_sensitive import ContextSensitiveAnalysis, ContextSensitiveResult

__all__ = ["ContextSensitiveTypeAnalysis", "TypeAnalysisResult"]


@dataclass
class TypeAnalysisResult(ContextSensitiveResult):
    """Result of Algorithm 6: ``vTC`` and ``fT``."""

    @property
    def vTC(self):
        return self.solver.relation("vTC")

    @property
    def fT(self):
        return self.solver.relation("fT")

    def _points_to_tuples(self):
        raise NotImplementedError("type analysis has no points-to relation")

    def types_of(self, method: str, var: str) -> Set[str]:
        """All concrete types ``var`` may refer to, across all contexts."""
        v = self.facts.var_id(method, var)
        projected = self.vTC.project("variable", "type")
        types = self.facts.maps["T"]
        return {types[t] for vv, t in projected.tuples() if vv == v}

    def field_types(self, field_name: str) -> Set[str]:
        f = self.facts.id_of("F", field_name)
        types = self.facts.maps["T"]
        return {types[t] for ff, t in self.fT.tuples() if ff == f}


class ContextSensitiveTypeAnalysis(ContextSensitiveAnalysis):
    """Driver for Algorithm 6 (same setup as Algorithm 5)."""

    algorithm = "algorithm6"

    def _wrap_result(
        self, solver, numbering, graph, seconds, degraded=False, report=None
    ):
        return TypeAnalysisResult(
            facts=self.facts,
            solver=solver,
            seconds=seconds,
            numbering=numbering,
            call_graph=graph,
            degraded=degraded,
            degradation=report,
        )
