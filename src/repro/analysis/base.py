"""Shared infrastructure for the analysis drivers.

Each driver loads one of the Datalog programs shipped in
``repro/analysis/datalog/`` (optionally concatenated with query
fragments), sizes the domains from the extracted facts, loads the input
relations, and wraps the solved relations in a result object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog import Solver, parse_program
from ..datalog.ast import ProgramAST
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program
from ..runtime import (
    DegradationReport,
    IterationLimitExceeded,
    NodeBudgetExceeded,
    ReproError,
    ResourceBudget,
    SolverTimeout,
)

__all__ = [
    "AnalysisError",
    "load_datalog_source",
    "make_solver",
    "AnalysisResult",
    "improved_order_spec",
    "outcome_of",
]

_DATALOG_DIR = Path(__file__).parent / "datalog"


class AnalysisError(Exception):
    """Raised when an analysis is driven incorrectly."""


def load_datalog_source(name: str, fragments: Sequence[str] = ()) -> str:
    """Read an algorithm's Datalog source, appending query fragments."""
    parts = [(_DATALOG_DIR / f"{name}.dl").read_text()]
    for fragment in fragments:
        parts.append((_DATALOG_DIR / f"{fragment}.dl").read_text())
    return "\n".join(parts)


def make_solver(
    facts: Facts,
    source: str,
    size_overrides: Optional[Dict[str, int]] = None,
    order_spec: Optional[str] = None,
    naive: bool = False,
    extra_text: str = "",
    budget: Optional[ResourceBudget] = None,
    backend: Optional[str] = None,
    optimize: Optional[bool] = None,
    disabled_passes: Optional[Sequence[str]] = None,
    trace_ops: bool = False,
    load_facts: bool = True,
) -> Solver:
    """Build a solver for ``source`` sized and named from ``facts``.

    Every declared input relation with a matching fact table is loaded
    automatically; relations like ``IEC`` that are installed as pre-built
    BDDs are left empty for the driver to fill.  ``load_facts=False``
    skips that tuple encoding — for warm starts where a checkpoint is
    about to overwrite every relation anyway, loading the fact tables
    first is pure waste (it dominates the cost of an incremental
    recompile).
    """
    if extra_text:
        source = source + "\n" + extra_text
    # Parse once to learn the declared domains, then re-parse with sizes.
    declared = parse_program(source)
    sizes: Dict[str, int] = {}
    fact_sizes = facts.sizes
    for dom in declared.domains:
        if dom in fact_sizes:
            sizes[dom] = fact_sizes[dom]
    if size_overrides:
        sizes.update(size_overrides)
    program = parse_program(source, domain_sizes=sizes)
    name_maps = {dom: facts.maps[dom] for dom in program.domains if dom in facts.maps}
    name_maps.setdefault("M", facts.maps["M"])
    solver = Solver(
        program,
        order_spec=order_spec,
        name_maps=name_maps,
        naive=naive,
        budget=budget,
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
        trace_ops=trace_ops,
    )
    if load_facts:
        for decl in program.relations.values():
            if decl.is_input and decl.name in facts.relations:
                solver.add_tuples(decl.name, facts.relations[decl.name])
    return solver


def outcome_of(err: ReproError) -> str:
    """Map a budget fault to the ``Attempt.outcome`` vocabulary."""
    if isinstance(err, SolverTimeout):
        return "timeout"
    if isinstance(err, NodeBudgetExceeded):
        return "node_budget"
    if isinstance(err, IterationLimitExceeded):
        return "iteration_limit"
    return "error"


def improved_order_spec(solver: Solver, max_nodes: int = 2_000_000) -> str:
    """One round of block sifting over the solver's live relations.

    The groups of the solver's current order spec (interleaved domain
    blocks like ``C0xC1``) move as units; the best permutation found
    becomes the new spec.  Sifting rebuilds the relations once per
    candidate position, so it is skipped (returning the current spec)
    when the arena is too large for that to be worth it.
    """
    from ..bdd.reorder import sift_order

    if solver.manager.node_count() > max_nodes:
        return solver.order_spec
    groups = solver.order_spec.split("_")
    by_name = {dom.name: dom for dom in solver._pool.values()}
    blocks: Dict[str, List[int]] = {}
    for group in groups:
        levels: List[int] = []
        for member in group.split("x"):
            levels.extend(by_name[member].levels)
        blocks[group] = sorted(levels)
    roots = [rel.node for rel in solver.relations.values()]
    try:
        best_order, _ = sift_order(
            solver.manager, roots, blocks, groups, max_rounds=1
        )
    except Exception:
        return solver.order_spec
    return "_".join(best_order)


@dataclass
class AnalysisResult:
    """Base result: the facts, the solver, and timing/memory statistics.

    ``degraded`` is set when a governed run could not complete the
    requested analysis within its :class:`ResourceBudget` and a cheaper
    configuration produced this answer; ``degradation`` then holds the
    machine-readable ladder transcript.
    """

    facts: Facts
    solver: Solver
    seconds: float = 0.0
    degraded: bool = False
    degradation: Optional[DegradationReport] = None
    resumed: bool = False  # a run_rung attempt consumed a checkpoint

    @property
    def peak_nodes(self) -> int:
        return self.solver.manager.peak_nodes

    @property
    def peak_bytes(self) -> int:
        return self.peak_nodes * 16

    @property
    def iterations(self) -> int:
        return self.solver.stats.iterations

    def relation(self, name: str):
        return self.solver.relation(name)

    def relation_tuples(self, name: str) -> Set[tuple]:
        return set(self.solver.relation(name).tuples())

    # ------------------------------------------------------------------
    # Name-level conveniences shared by all points-to style results.
    # ------------------------------------------------------------------

    def _points_to_tuples(self) -> Iterable[Tuple[int, int]]:
        raise NotImplementedError

    def points_to(self, method: str, var: str) -> Set[str]:
        """Heap names that ``var`` of ``method`` may point to."""
        v = self.facts.var_id(method, var)
        heaps = self.facts.maps["H"]
        return {heaps[h] for vv, h in self._points_to_tuples() if vv == v}

    def may_alias(self, method1: str, var1: str, method2: str, var2: str) -> bool:
        """True when the two variables may point to a common object."""
        v1 = self.facts.var_id(method1, var1)
        v2 = self.facts.var_id(method2, var2)
        h1 = {h for v, h in self._points_to_tuples() if v == v1}
        h2 = {h for v, h in self._points_to_tuples() if v == v2}
        return bool(h1 & h2)
