"""Shared infrastructure for the analysis drivers.

Each driver loads one of the Datalog programs shipped in
``repro/analysis/datalog/`` (optionally concatenated with query
fragments), sizes the domains from the extracted facts, loads the input
relations, and wraps the solved relations in a result object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog import Solver, parse_program
from ..datalog.ast import ProgramAST
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program

__all__ = ["AnalysisError", "load_datalog_source", "make_solver", "AnalysisResult"]

_DATALOG_DIR = Path(__file__).parent / "datalog"


class AnalysisError(Exception):
    """Raised when an analysis is driven incorrectly."""


def load_datalog_source(name: str, fragments: Sequence[str] = ()) -> str:
    """Read an algorithm's Datalog source, appending query fragments."""
    parts = [(_DATALOG_DIR / f"{name}.dl").read_text()]
    for fragment in fragments:
        parts.append((_DATALOG_DIR / f"{fragment}.dl").read_text())
    return "\n".join(parts)


def make_solver(
    facts: Facts,
    source: str,
    size_overrides: Optional[Dict[str, int]] = None,
    order_spec: Optional[str] = None,
    naive: bool = False,
    extra_text: str = "",
) -> Solver:
    """Build a solver for ``source`` sized and named from ``facts``.

    Every declared input relation with a matching fact table is loaded
    automatically; relations like ``IEC`` that are installed as pre-built
    BDDs are left empty for the driver to fill.
    """
    if extra_text:
        source = source + "\n" + extra_text
    # Parse once to learn the declared domains, then re-parse with sizes.
    declared = parse_program(source)
    sizes: Dict[str, int] = {}
    fact_sizes = facts.sizes
    for dom in declared.domains:
        if dom in fact_sizes:
            sizes[dom] = fact_sizes[dom]
    if size_overrides:
        sizes.update(size_overrides)
    program = parse_program(source, domain_sizes=sizes)
    name_maps = {dom: facts.maps[dom] for dom in program.domains if dom in facts.maps}
    name_maps.setdefault("M", facts.maps["M"])
    solver = Solver(program, order_spec=order_spec, name_maps=name_maps, naive=naive)
    for decl in program.relations.values():
        if decl.is_input and decl.name in facts.relations:
            solver.add_tuples(decl.name, facts.relations[decl.name])
    return solver


@dataclass
class AnalysisResult:
    """Base result: the facts, the solver, and timing/memory statistics."""

    facts: Facts
    solver: Solver
    seconds: float = 0.0

    @property
    def peak_nodes(self) -> int:
        return self.solver.manager.peak_nodes

    @property
    def peak_bytes(self) -> int:
        return self.peak_nodes * 16

    @property
    def iterations(self) -> int:
        return self.solver.stats.iterations

    def relation(self, name: str):
        return self.solver.relation(name)

    def relation_tuples(self, name: str) -> Set[tuple]:
        return set(self.solver.relation(name).tuples())

    # ------------------------------------------------------------------
    # Name-level conveniences shared by all points-to style results.
    # ------------------------------------------------------------------

    def _points_to_tuples(self) -> Iterable[Tuple[int, int]]:
        raise NotImplementedError

    def points_to(self, method: str, var: str) -> Set[str]:
        """Heap names that ``var`` of ``method`` may point to."""
        v = self.facts.var_id(method, var)
        heaps = self.facts.maps["H"]
        return {heaps[h] for vv, h in self._points_to_tuples() if vv == v}

    def may_alias(self, method1: str, var1: str, method2: str, var2: str) -> bool:
        """True when the two variables may point to a common object."""
        v1 = self.facts.var_id(method1, var1)
        v2 = self.facts.var_id(method2, var2)
        h1 = {h for v, h in self._points_to_tuples() if v == v1}
        h2 = {h for v, h in self._points_to_tuples() if v == v2}
        return bool(h1 & h2)
