"""Context-insensitive points-to analyses: Algorithms 1, 2 and 3.

* :class:`ContextInsensitiveAnalysis` with ``discover_call_graph=False``
  runs Algorithm 1 (``type_filtering=False``) or Algorithm 2 over a
  precomputed CHA call graph — the ``assign`` relation is derived from the
  graph's parameter/return bindings exactly as Section 2.2 describes.
* With ``discover_call_graph=True`` it runs Algorithm 3: the assign
  relation becomes a computed relation fed by the discovered ``IE`` edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..callgraph import CallGraph, cha_call_graph, call_graph_from_ie
from ..ir.facts import Facts, extract_facts
from ..ir.program import Program
from .base import AnalysisError, AnalysisResult, load_datalog_source, make_solver

__all__ = [
    "ContextInsensitiveAnalysis",
    "ContextInsensitiveResult",
    "assign_edges_from_call_graph",
]


def assign_edges_from_call_graph(
    facts: Facts, graph: CallGraph, skip_thread_start: bool = False
) -> List[Tuple[int, int]]:
    """Parameter- and return-passing assignments induced by a call graph.

    ``assign(v1, v2)`` for each formal ``v1`` of a callee bound to actual
    ``v2`` at an edge's site, and for each caller result variable bound to
    a callee return variable.  ``skip_thread_start`` omits the receiver
    binding of ``start -> run`` dispatch edges (the thread-escape driver
    models those through ``vP0T`` instead).
    """
    formals: Dict[int, List[Tuple[int, int]]] = {}
    for m, z, v in facts.relations["formal"]:
        formals.setdefault(m, []).append((z, v))
    actuals: Dict[int, Dict[int, int]] = {}
    for i, z, v in facts.relations["actual"]:
        actuals.setdefault(i, {})[z] = v
    irets: Dict[int, List[int]] = {}
    for i, v in facts.relations["Iret"]:
        irets.setdefault(i, []).append(v)
    mrets: Dict[int, List[int]] = {}
    for m, v in facts.relations["Mret"]:
        mrets.setdefault(m, []).append(v)
    mthrs: Dict[int, int] = {m: v for m, v in facts.relations["Mthr"]}
    run_targets: Set[Tuple[int, int]] = set()
    if skip_thread_start:
        start_name = None
        if "start" in facts.maps["N"]:
            start_name = facts.id_of("N", "start")
        start_sites = {
            i for _, i, n in facts.relations["mI"] if n == start_name
        }
        run_targets = {(e.site, e.callee) for e in graph.edges if e.site in start_sites}

    edges: Set[Tuple[int, int]] = set()
    for edge in graph.edges:
        site_actuals = actuals.get(edge.site, {})
        is_start_edge = (edge.site, edge.callee) in run_targets
        for z, formal_v in formals.get(edge.callee, ()):
            if is_start_edge and z == 0:
                continue
            actual_v = site_actuals.get(z)
            if actual_v is not None:
                edges.add((formal_v, actual_v))
        for dst in irets.get(edge.site, ()):
            for src in mrets.get(edge.callee, ()):
                edges.add((dst, src))
        # Exceptions: the callee's thrown channel drains into the caller's.
        caller_thr = mthrs.get(edge.caller)
        callee_thr = mthrs.get(edge.callee)
        if caller_thr is not None and callee_thr is not None:
            edges.add((caller_thr, callee_thr))
    return sorted(edges)


@dataclass
class ContextInsensitiveResult(AnalysisResult):
    """Result of Algorithms 1/2/3: ``vP``, ``hP`` and (for 3) ``IE``."""

    discovered_call_graph: Optional[CallGraph] = None

    def _points_to_tuples(self):
        return self.solver.relation("vP").tuples()

    @property
    def vP(self):
        return self.solver.relation("vP")

    @property
    def hP(self):
        return self.solver.relation("hP")

    def call_targets(self, method: str, index: int = 0) -> Set[str]:
        """Resolved targets of the ``index``-th invocation in ``method``."""
        if self.discovered_call_graph is None:
            raise AnalysisError("call graph discovery was not enabled")
        m_id = self.facts.method_id(method)
        sites = sorted(
            i
            for i, m in self.facts.site_method.items()
            if m == m_id and i >= len(self.facts.maps["H"])
        )
        site = sites[index]
        return {
            self.facts.maps["M"][t]
            for t in self.discovered_call_graph.call_targets(site)
        }


class ContextInsensitiveAnalysis:
    """Driver for Algorithms 1, 2 (precomputed CHA graph) and 3."""

    def __init__(
        self,
        program: Optional[Program] = None,
        facts: Optional[Facts] = None,
        type_filtering: bool = True,
        discover_call_graph: bool = True,
        call_graph: Optional[CallGraph] = None,
        order_spec: Optional[str] = None,
        naive: bool = False,
        query_fragments: Sequence[str] = (),
        extra_text: str = "",
        budget=None,
        backend: Optional[str] = None,
        optimize: Optional[bool] = None,
        disabled_passes: Optional[Sequence[str]] = None,
        trace_ops: bool = False,
    ) -> None:
        if facts is None:
            if program is None:
                raise AnalysisError("provide a Program or extracted Facts")
            facts = extract_facts(program)
        self.facts = facts
        self.type_filtering = type_filtering
        self.discover_call_graph = discover_call_graph
        self.call_graph = call_graph
        self.order_spec = order_spec
        self.naive = naive
        self.query_fragments = tuple(query_fragments)
        self.extra_text = extra_text
        self.budget = budget
        self.backend = backend
        self.optimize = optimize
        self.disabled_passes = disabled_passes
        self.trace_ops = trace_ops

    def algorithm_name(self) -> str:
        if self.discover_call_graph:
            return "algorithm3" if self.type_filtering else "algorithm3_nofilter"
        return "algorithm2" if self.type_filtering else "algorithm1"

    def run(self) -> ContextInsensitiveResult:
        start = time.monotonic()
        source = load_datalog_source(self.algorithm_name(), self.query_fragments)
        solver = make_solver(
            self.facts,
            source,
            order_spec=self.order_spec,
            naive=self.naive,
            extra_text=self.extra_text,
            budget=self.budget,
            backend=self.backend,
            optimize=self.optimize,
            disabled_passes=self.disabled_passes,
            trace_ops=self.trace_ops,
        )
        discovered = None
        if self.discover_call_graph:
            solver.solve()
            discovered = call_graph_from_ie(
                self.facts, solver.relation("IE").tuples()
            )
        else:
            graph = self.call_graph or cha_call_graph(self.facts)
            assign = list(assign_edges_from_call_graph(self.facts, graph))
            assign.extend(self.facts.relations["assign0"])
            solver.add_tuples("assign", assign)
            solver.solve()
        seconds = time.monotonic() - start
        return ContextInsensitiveResult(
            facts=self.facts,
            solver=solver,
            seconds=seconds,
            discovered_call_graph=discovered,
        )
