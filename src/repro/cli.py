"""Command-line interface.

::

    python -m repro stats    program.mj
    python -m repro analyze  program.mj --context-sensitive --var Main.main:x
    python -m repro analyze  program.mj --context-sensitive --timeout 60 \
                             --node-budget 2000000 --checkpoint-dir ckpt/
    python -m repro analyze  a.mj b.mj c.mj --context-sensitive \
                             --isolate --jobs 2 --memory-limit 512
    python -m repro query    program.mj --kind escape
    python -m repro query    program.mj --kind vuln
    python -m repro query    program.mj --kind casts
    python -m repro query    program.mj --kind devirt
    python -m repro query    program.mj --kind refinement
    python -m repro datalog  rules.dl --facts facts/ --out out/
    python -m repro compile-db program.mj --out program.ptdb
    python -m repro serve    --db program.ptdb --port 7777
    python -m repro query    --db program.ptdb --kind points-to --var Main.main:x
    python -m repro query    --db program.ptdb --kind aliases --var Main.main:x \
                             --var2 Main.main:y
    python -m repro query    --db program.ptdb --kind mod-ref --method A.run
    python -m repro query    --db program.ptdb --kind callers --method A.run
    python -m repro query    --db program.ptdb --kind escape --heap \
                             'Main.main@3:new A'

``program.mj`` is mini-Java source (see :mod:`repro.ir.frontend`); the
modeled class library is linked in unless ``--no-library`` is given.
The benchmark harness has its own CLI: ``python -m repro.bench.harness``.

Exit codes (sysexits.h-flavoured, stable for scripting):

====  =============================================================
0     success (for ``query --kind vuln``: no vulnerability)
1     ``query --kind vuln`` found a vulnerable path
2     usage error (argparse)
65    malformed input — mini-Java source, Datalog program, fact
      file, or checkpoint (one-line diagnostic with file and line)
66    an input file or directory does not exist
70    a supervised worker process crashed, hung, or was killed
      (``--isolate`` mode) and retries plus degradation could not
      recover an answer
75    resource budget exhausted (timeout / node budget / iteration
      cap) and degradation was disabled or also exhausted
====  =============================================================

Diagnostics are single lines on stderr; a raw traceback escaping this
module is a bug (covered by ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import hashlib
import os
import pathlib
import sys
import time
from typing import List, Optional, Sequence

from .analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ThreadEscapeAnalysis,
)
from .analysis.queries import (
    cast_safety,
    devirtualization,
    refinement_stats,
    security_vulnerability_query,
)
from .bdd import BDDError
from .callgraph import number_call_graph
from .datalog import DatalogError
from .ir.facts import extract_facts
from .ir.frontend import parse_program
from .ir.program import IRError
from .runtime import (
    CheckpointError,
    InvalidInputError,
    ReproError,
    ResourceBudget,
    WorkerCrashed,
)

__all__ = [
    "main",
    "EXIT_OK",
    "EXIT_VULNERABLE",
    "EXIT_USAGE",
    "EXIT_SOLVE_FALLBACK",
    "EXIT_DATAERR",
    "EXIT_NOINPUT",
    "EXIT_UNAVAILABLE",
    "EXIT_WORKER",
    "EXIT_BUDGET",
]

EXIT_OK = 0
EXIT_VULNERABLE = 1
EXIT_USAGE = 2
# The query was answered, but only by solving the whole program because
# no --db was given: scripted callers can branch on this and switch to
# 'repro compile-db' + --db (or --demand for restricted databases).
EXIT_SOLVE_FALLBACK = 3
EXIT_DATAERR = 65
EXIT_NOINPUT = 66
EXIT_UNAVAILABLE = 69  # sysexits EX_UNAVAILABLE: server absent/overloaded
EXIT_WORKER = 70
EXIT_BUDGET = 75


def _budget_of(args) -> Optional[ResourceBudget]:
    """A ResourceBudget from ``--timeout``/``--node-budget``/… or None."""
    if (
        getattr(args, "timeout", None) is None
        and getattr(args, "node_budget", None) is None
        and getattr(args, "max_iterations", None) is None
    ):
        return None
    return ResourceBudget(
        timeout=args.timeout,
        node_budget=args.node_budget,
        max_iterations=args.max_iterations,
    )


def _load(args, path: Optional[str] = None) -> "tuple":
    if path is None:
        path = args.program
    text = pathlib.Path(path).read_text()
    program = parse_program(
        text, main=args.main, include_library=not args.no_library
    )
    return program, extract_facts(program)


def _cmd_stats(args) -> int:
    program, facts = _load(args)
    stats = program.stats()
    ci = ContextInsensitiveAnalysis(
        facts=facts, budget=_budget_of(args), backend=args.backend
    ).run()
    entry = facts.method_id(f"{args.main}.main")
    numbering = number_call_graph(ci.discovered_call_graph, entries=[entry])
    print(f"classes:     {stats['classes']}")
    print(f"methods:     {stats['methods']}")
    print(f"statements:  {stats['statements']}")
    print(f"variables:   {len(facts.maps['V'])}")
    print(f"alloc sites: {stats['allocs']}")
    print(f"call paths:  {numbering.max_paths()}")
    print(f"call edges:  {ci.discovered_call_graph.edge_count()}")
    return EXIT_OK


def _print_degradation(result) -> None:
    if result.degraded and result.degradation is not None:
        print(f"degraded: {result.degradation.summary()}", file=sys.stderr)


def _plan_opts(args):
    """(optimize, disabled_passes) from --no-opt / --disable-pass."""
    optimize = False if getattr(args, "no_opt", False) else None
    disabled: List[str] = []
    for spec in getattr(args, "disable_pass", None) or ():
        disabled.extend(s.strip() for s in spec.split(",") if s.strip())
    return optimize, (disabled or None)


def _print_profile(solver, as_json: bool) -> None:
    """Per-rule profile table (or JSON) for --profile / --profile-json."""
    profiles = solver.rule_profile()
    if as_json:
        import json

        print(
            json.dumps(
                [
                    {
                        "rule": p.rule,
                        "applications": p.applications,
                        "seconds": round(p.seconds, 6),
                        "tuples_produced": p.tuples_produced,
                    }
                    for p in profiles
                ],
                indent=2,
            )
        )
        return
    if not profiles:
        print("rule profile: (no rules applied)")
        return
    width = max(len(p.rule) for p in profiles)
    width = min(width, 60)
    print(f"{'rule':<{width}}  {'applies':>7}  {'hits':>5}  {'seconds':>9}")
    for p in profiles:
        rule = p.rule if len(p.rule) <= width else p.rule[: width - 3] + "..."
        print(
            f"{rule:<{width}}  {p.applications:>7}  "
            f"{p.tuples_produced:>5}  {p.seconds:>9.4f}"
        )


def _cmd_analyze(args) -> int:
    paths: List[str] = list(args.program)
    if args.dump_dir and len(paths) > 1:
        print("repro: --dump-dir takes a single program", file=sys.stderr)
        return EXIT_USAGE
    if args.isolate:
        return _cmd_analyze_isolated(args, paths)
    code = EXIT_OK
    for path in paths:
        if len(paths) > 1:
            print(f"== {path} ==")
        code = _analyze_one(args, path)
        if code != EXIT_OK:
            return code
    return code


def _cmd_analyze_isolated(args, paths: List[str]) -> int:
    """Run each program in a supervised worker process (``--isolate``).

    Aggregate exit code: 70 if any program's worker could not be
    recovered, else 75 if any failed on a cooperative budget, else 0.
    """
    from .runtime.supervisor import (
        Supervisor,
        SupervisorConfig,
        ladder_fallbacks,
    )
    from .runtime.worker import WorkerPool, default_jobs

    jobs = []
    for path in paths:
        jobs.append(
            {
                "kind": "analyze",
                "program_path": path,
                "main": args.main,
                "no_library": args.no_library,
                "context_sensitive": bool(args.context_sensitive),
                "mode": "full",
                "timeout": args.timeout,
                "node_budget": args.node_budget,
                "max_iterations": args.max_iterations,
                "checkpoint_dir": args.checkpoint_dir,
                "vars": list(args.var or ()),
                "backend": args.backend,
                "optimize": _plan_opts(args)[0],
                "disabled_passes": _plan_opts(args)[1],
            }
        )
    # The cooperative --timeout doubles as a hard backstop: a worker that
    # blows through twice its budget (plus startup headroom) is wedged
    # and gets the SIGTERM -> SIGKILL treatment.
    hard_deadline = None
    if args.timeout is not None:
        hard_deadline = args.timeout * 2 + 30
    supervisor = Supervisor(
        SupervisorConfig(
            timeout=hard_deadline,
            memory_limit_mb=args.memory_limit,
            retries=args.retries,
            checkpoint_dir=args.checkpoint_dir,
        )
    )
    fallbacks = None
    if args.context_sensitive and not args.no_degrade:
        fallbacks = ladder_fallbacks
    pool_jobs = args.jobs if args.jobs is not None else default_jobs()
    results = WorkerPool(supervisor, jobs=pool_jobs).run(
        jobs, fallbacks=fallbacks
    )
    code = EXIT_OK
    for path, outcome in zip(paths, results):
        prefix = f"{path}: " if len(paths) > 1 else ""
        if isinstance(outcome, WorkerCrashed):
            print(
                f"repro: {path}: worker failed "
                f"({outcome.classification}): {outcome}",
                file=sys.stderr,
            )
            if outcome.classification == "budget":
                if code == EXIT_OK:
                    code = EXIT_BUDGET
            else:
                code = EXIT_WORKER
            continue
        value = outcome.value
        if outcome.degraded or value.get("degraded"):
            print(
                f"repro: {path}: degraded to mode={outcome.mode} "
                f"after {outcome.retries} retr"
                f"{'y' if outcome.retries == 1 else 'ies'}",
                file=sys.stderr,
            )
        kind = (
            "context-sensitive"
            if value.get("relation") == "vPC"
            else "context-insensitive"
        )
        detail = ""
        if "call_paths" in value:
            detail = f"{value['call_paths']} call paths, "
        print(
            f"{prefix}{kind} points-to: {detail}"
            f"{value['tuples']} tuples, {value['seconds']:.2f}s, "
            f"{value['peak_nodes']} peak BDD nodes"
        )
        for spec, heaps in (value.get("vars") or {}).items():
            print(f"  {spec} ->")
            for heap in heaps:
                print(f"      {heap}")
            if not heaps:
                print("      (empty)")
    return code


def _analyze_one(args, path: str) -> int:
    program, facts = _load(args, path)
    budget = _budget_of(args)
    optimize, disabled = _plan_opts(args)
    if args.context_sensitive:
        result = ContextSensitiveAnalysis(
            facts=facts,
            budget=budget,
            checkpoint_dir=args.checkpoint_dir,
            degrade=not args.no_degrade,
            backend=args.backend,
            optimize=optimize,
            disabled_passes=disabled,
        ).run()
        _print_degradation(result)
        report = result.degradation
        if report is not None and report.final_mode == "context_insensitive":
            print(
                f"context-insensitive points-to (degraded): "
                f"{result.relation('vP').count()} (variable, heap) tuples, "
                f"{result.seconds:.2f}s, {result.peak_nodes} peak BDD nodes"
            )
        else:
            print(
                f"context-sensitive points-to: {result.max_paths()} call paths, "
                f"{result.vPC.count()} (context, variable, heap) tuples, "
                f"{result.seconds:.2f}s, {result.peak_nodes} peak BDD nodes"
            )
    else:
        result = ContextInsensitiveAnalysis(
            facts=facts, budget=budget, backend=args.backend,
            optimize=optimize, disabled_passes=disabled,
        ).run()
        print(
            f"context-insensitive points-to: "
            f"{result.relation('vP').count()} (variable, heap) tuples, "
            f"{result.seconds:.2f}s, {result.peak_nodes} peak BDD nodes"
        )
    if args.profile or args.profile_json:
        _print_profile(result.solver, as_json=args.profile_json)
    for spec in args.var or ():
        method, _, var = spec.rpartition(":")
        if not method:
            print(f"  bad --var {spec!r}: use Method.name:var", file=sys.stderr)
            return EXIT_USAGE
        targets = result.points_to(method, var)
        print(f"  {spec} ->")
        for heap in sorted(targets):
            print(f"      {heap}")
        if not targets:
            print("      (empty)")
    if args.dump_dir:
        from .datalog.io import save_solver_outputs

        counts = save_solver_outputs(result.solver, args.dump_dir)
        print(f"wrote {sum(counts.values())} tuples to {args.dump_dir}/")
    return EXIT_OK


# Query kinds answered from a compiled database (point lookups) versus
# kinds that need a fresh solve of the whole program.  ``escape`` appears
# in both: with --db it is a per-heap verdict, without it the full report.
_DEMAND_KINDS = ("points-to", "aliases", "mod-ref", "callers")
_SOLVE_KINDS = ("escape", "casts", "devirt", "refinement", "vuln")

_QUERY_ERROR_EXITS = {
    "bad-argument": EXIT_USAGE,
    "unknown-query": EXIT_USAGE,
    "not-found": EXIT_DATAERR,
    "unsupported": EXIT_DATAERR,
    "demand-unavailable": EXIT_DATAERR,
    "reload-failed": EXIT_DATAERR,
    "budget-exceeded": EXIT_BUDGET,
    "deadline-exceeded": EXIT_BUDGET,
    # Transport/availability failures: the query was fine, the service
    # was not — sysexits EX_UNAVAILABLE so wrappers can retry.
    "connection-lost": EXIT_UNAVAILABLE,
    "circuit-open": EXIT_UNAVAILABLE,
    "overloaded": EXIT_UNAVAILABLE,
    "shutting-down": EXIT_UNAVAILABLE,
}


def _cmd_query(args) -> int:
    if getattr(args, "server", None):
        return _query_server(args)
    if args.db:
        return _query_db(args)
    if args.kind in _DEMAND_KINDS:
        print(
            f"repro: --kind {args.kind} is a demand query; compile the "
            f"program first ('repro compile-db') and pass --db",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.program is None:
        print("repro: query without --db needs a program file", file=sys.stderr)
        return EXIT_USAGE
    start = time.monotonic()
    code = _query_solve(args)
    elapsed = time.monotonic() - start
    print(
        f"repro: solved the whole program in {elapsed:.2f}s to answer one "
        f"query; run 'repro compile-db {args.program}' once and pass --db "
        f"(add --demand for queries outside the db's budget class) to "
        f"make queries instant",
        file=sys.stderr,
    )
    # A successful answer still exits with a distinct code so scripted
    # callers can tell "answered from a snapshot" (0) apart from
    # "answered, but paid a full solve" (3).  Meaningful non-zero codes
    # (e.g. vuln's EXIT_VULNERABLE) pass through untouched.
    return EXIT_SOLVE_FALLBACK if code == EXIT_OK else code


def _demand_query_args(args) -> dict:
    query_args: dict = {}
    if args.kind == "points-to":
        query_args["variable"] = args.var
        if args.context is not None:
            query_args["context"] = args.context
    elif args.kind == "aliases":
        query_args["variable1"] = args.var
        query_args["variable2"] = args.var2
    elif args.kind == "mod-ref":
        query_args["method"] = args.method
        if args.context is not None:
            query_args["context"] = args.context
    elif args.kind == "callers":
        query_args["method"] = args.method
    elif args.kind == "escape":
        query_args["heap"] = args.heap
    return query_args


def _reject_solve_kind(args) -> bool:
    if args.kind not in _DEMAND_KINDS + ("escape",):
        print(
            f"repro: --kind {args.kind} needs a fresh solve and cannot be "
            f"answered remotely (give the program file instead)",
            file=sys.stderr,
        )
        return True
    return False


def _query_db(args) -> int:
    """Answer a demand query from a compiled ``.ptdb`` (no solving)."""
    from .serve import PointsToDatabase, QueryEngine, QueryError

    if _reject_solve_kind(args):
        return EXIT_USAGE
    db = PointsToDatabase.load(args.db, backend=args.backend)
    engine = QueryEngine(
        db, default_timeout=args.timeout, enable_demand=args.demand
    )
    try:
        result = engine.query(args.kind, _demand_query_args(args))
    except QueryError as err:
        print(f"repro: {err}", file=sys.stderr)
        return _QUERY_ERROR_EXITS.get(err.code, EXIT_DATAERR)
    _print_query_result(args.kind, result)
    return EXIT_OK


def _query_server(args) -> int:
    """Answer a demand query from a running ``repro serve`` instance.

    Uses the resilient client (reconnect, backoff, circuit breaker,
    retry-after honoring); transport failures exit with
    ``EXIT_UNAVAILABLE`` (69) so shell wrappers can distinguish "server
    down" from "query wrong"."""
    from .serve import QueryError, ResilientClient, ServerError

    if _reject_solve_kind(args):
        return EXIT_USAGE
    host, _, port_text = args.server.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"repro: --server wants HOST:PORT, got {args.server!r}",
            file=sys.stderr,
        )
        return EXIT_USAGE
    deadline_ms = None if args.timeout is None else args.timeout * 1000.0
    try:
        with ResilientClient(host, int(port_text)) as client:
            result = client.query(
                args.kind, _demand_query_args(args), deadline_ms=deadline_ms
            )
    except (ServerError, QueryError) as err:
        print(f"repro: {err}", file=sys.stderr)
        return _QUERY_ERROR_EXITS.get(err.code, EXIT_DATAERR)
    _print_query_result(args.kind, result)
    return EXIT_OK


def _print_query_result(kind: str, result: dict) -> None:
    if kind == "points-to":
        where = (
            f" (context {result['context']})"
            if result.get("context") is not None else ""
        )
        print(f"{result['variable']}{where} -> {result['count']} objects")
        for heap in result["heaps"]:
            print(f"  {heap}")
    elif kind == "aliases":
        verdict = "may alias" if result["may_alias"] else "no alias"
        print(f"{result['variable1']} / {result['variable2']}: {verdict}")
        for heap in result["common_heaps"]:
            print(f"  common: {heap}")
    elif kind == "mod-ref":
        print(
            f"{result['method']}: mod {len(result['mod'])}, "
            f"ref {len(result['ref'])}"
        )
        for heap, field in result["mod"]:
            print(f"  mod: {heap}.{field}")
        for heap, field in result["ref"]:
            print(f"  ref: {heap}.{field}")
    elif kind == "callers":
        print(f"{result['method']}: {result['count']} call sites")
        for entry in result["callers"]:
            print(f"  {entry['site']}")
    elif kind == "escape":
        print(f"{result['heap']}: {result['verdict']}")


def _query_solve(args) -> int:
    program, facts = _load(args)
    budget = _budget_of(args)
    if args.kind == "escape":
        result = ThreadEscapeAnalysis(facts=facts, budget=budget).run()
        summary = result.summary()
        print(
            f"captured {summary['captured']}, escaped {summary['escaped']}; "
            f"syncs: {summary['sync_unneeded']} removable, "
            f"{summary['sync_needed']} needed"
        )
        for h in sorted(result.escaped_heaps()):
            print(f"  escaped: {facts.maps['H'][h]}")
        return EXIT_OK
    if args.kind == "casts":
        result = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_casts"], budget=budget
        ).run()
        report = cast_safety(result)
        print(f"{len(report.safe)} safe casts, {len(report.failing)} may fail")
        for var in report.failing:
            print(f"  may fail: {var} (sees {', '.join(report.evidence[var])})")
        return EXIT_OK
    if args.kind == "devirt":
        result = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_devirt"], budget=budget
        ).run()
        report = devirtualization(result)
        print(
            f"{len(report.mono)} monomorphic sites, {len(report.poly)} "
            f"polymorphic, {len(report.dead)} dead; "
            f"{len(report.dead_methods)} dead methods"
        )
        for site in report.mono:
            print(f"  devirtualizable: {site}")
        return EXIT_OK
    if args.kind == "refinement":
        ci = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_refinement_ci"], budget=budget
        ).run()
        cs = ContextSensitiveAnalysis(
            facts=facts,
            call_graph=ci.discovered_call_graph,
            query_fragments=["query_refinement_cs_pointer"],
            budget=budget,
            degrade=False,
        ).run()
        for label, stats in (
            ("context-insensitive", refinement_stats(ci, "ci")),
            ("context-sensitive (projected)", refinement_stats(cs, "projected")),
            ("context-sensitive (full)", refinement_stats(cs, "full")),
        ):
            print(
                f"{label:<32} multi-typed {stats.multi:5.1f}%  "
                f"refinable {stats.refinable:5.1f}%"
            )
        return EXIT_OK
    if args.kind == "vuln":
        ci = ContextInsensitiveAnalysis(facts=facts, budget=budget).run()
        cs = ContextSensitiveAnalysis(
            facts=facts,
            call_graph=ci.discovered_call_graph,
            budget=budget,
            degrade=False,
        ).run()
        report = security_vulnerability_query(
            cs, list(ci.solver.relation("IE").tuples())
        )
        if report:
            for context, site in report.vulnerable_sites:
                print(f"VULNERABLE (context {context}): {site}")
            return EXIT_VULNERABLE
        print("clean: no String-derived key reaches PBEKeySpec.init")
        return EXIT_OK
    print(f"unknown query kind {args.kind!r}", file=sys.stderr)
    return EXIT_USAGE


def _cmd_datalog(args) -> int:
    """Run a raw Datalog program against ``.tuples`` fact files."""
    from .datalog import Solver, parse_program as parse_datalog
    from .datalog.io import load_solver_inputs, save_solver_outputs

    source = pathlib.Path(args.program).read_text()
    sizes = {}
    for spec in args.domain or ():
        name, _, size = spec.partition("=")
        if not size.isdigit():
            print(
                f"  bad --domain {spec!r}: use NAME=SIZE", file=sys.stderr
            )
            return EXIT_USAGE
        sizes[name] = int(size)
    try:
        program = parse_datalog(source, domain_sizes=sizes or None)
    except DatalogError as err:
        raise DatalogError(f"{args.program}: {err}") from err
    optimize, disabled = _plan_opts(args)
    solver = Solver(
        program, naive=args.naive, budget=_budget_of(args),
        backend=args.backend, optimize=optimize, disabled_passes=disabled,
        trace_ops=args.explain_plan,
    )
    if args.facts:
        if not pathlib.Path(args.facts).is_dir():
            raise FileNotFoundError(2, "fact directory not found", args.facts)
        counts = load_solver_inputs(solver, args.facts)
        total = sum(counts.values())
        print(f"loaded {total} tuples from {args.facts}/")
    solver.solve()
    for name in sorted(solver.relations):
        decl = program.relations[name]
        if decl.is_output:
            print(f"{name}: {solver.relation(name).count()} tuples")
    if args.explain_plan:
        print(solver.explain_plans(executed_only=True))
    if args.profile or args.profile_json:
        _print_profile(solver, as_json=args.profile_json)
    if args.out:
        counts = save_solver_outputs(solver, args.out)
        print(f"wrote {sum(counts.values())} tuples to {args.out}/")
    return EXIT_OK


def _cmd_compile_db(args) -> int:
    """Solve once and persist the result as a ``.ptdb`` database."""
    from .incremental import bundle_path_for, write_fixpoint_bundle
    from .serve import compile_database_with_state

    source_text = pathlib.Path(args.program).read_text()
    program = parse_program(
        source_text, main=args.main, include_library=not args.no_library
    )
    out = args.out or str(pathlib.Path(args.program).with_suffix(".ptdb"))
    start = time.monotonic()
    db, state = compile_database_with_state(
        program,
        source_path=args.program,
        source_sha256=hashlib.sha256(source_text.encode()).hexdigest(),
        main=args.main,
        modref=not args.no_modref,
        budget_class=args.budget_class,
        budget=_budget_of(args),
        backend=args.backend,
    )
    solve_seconds = time.monotonic() - start
    nodes = db.save(out)
    size = pathlib.Path(out).stat().st_size
    counts = ", ".join(
        f"{entry['name']} {entry['tuples']}"
        for entry in db.meta["relations"]
    )
    print(
        f"compiled {args.program} -> {out} "
        f"({size} bytes, {nodes} BDD nodes, db {db.db_id})"
    )
    print(f"  relations: {counts}")
    print(f"  call paths: {db.meta['paths']}, solve time {solve_seconds:.2f}s")
    if not args.no_fixpoint:
        fix = write_fixpoint_bundle(
            bundle_path_for(out), db, state, modref=not args.no_modref
        )
        print(f"  fixpoint bundle: {fix} (warm starts for 'repro recompile')")
    return EXIT_OK


def _cmd_recompile(args) -> int:
    """Apply a fact diff to a compiled database: delta in, delta out."""
    from .incremental import (
        bundle_path_for,
        recompile_database,
        write_fixpoint_bundle,
    )

    optimize, disabled = _plan_opts(args)
    start = time.monotonic()
    result = recompile_database(
        args.db,
        args.diff,
        fixpoint_path=args.fixpoint,
        backend=args.backend,
        budget=_budget_of(args),
        optimize=optimize,
        disabled_passes=disabled,
    )
    db = result.db
    nodes = db.save(args.out)
    if result.state is not None and not args.no_fixpoint_out:
        write_fixpoint_bundle(
            bundle_path_for(args.out),
            db,
            result.state,
            modref=bool(db.meta.get("config", {}).get("modref", True)),
        )
    elif result.state is None and not args.no_fixpoint_out:
        # No-op recompile: the parent's fixpoint is still this fixpoint.
        src = pathlib.Path(
            args.fixpoint if args.fixpoint else bundle_path_for(args.db)
        )
        if src.exists():
            from .runtime import atomic_write_text

            atomic_write_text(bundle_path_for(args.out), src.read_text())
    seconds = time.monotonic() - start
    modes = ", ".join(f"{k}={v}" for k, v in sorted(result.modes.items()))
    size = pathlib.Path(args.out).stat().st_size
    print(
        f"recompiled {args.db} + {args.diff} -> {args.out} "
        f"({size} bytes, {nodes} BDD nodes)"
    )
    print(f"  db {result.parent_db_id} -> {db.db_id} ({modes})")
    print(f"  recompile time {seconds:.2f}s")
    if args.notify:
        host, _, port = args.notify.rpartition(":")
        if not host or not port.isdigit():
            print(f"  bad --notify {args.notify!r}: use HOST:PORT",
                  file=sys.stderr)
            return EXIT_USAGE
        from .serve import PointsToClient

        with PointsToClient(host, int(port)) as client:
            reply = client.reload(
                path=str(pathlib.Path(args.out).resolve()),
                expect_db_id=db.db_id,
            )
        print(
            f"  notified {args.notify}: reloaded db {reply.get('db_id')} "
            f"(epoch {reply.get('epoch')})"
        )
    return EXIT_OK


def _cmd_serve(args) -> int:
    """Serve demand queries for a compiled database over TCP."""
    if args.supervised:
        return _serve_supervised(args)
    from .serve import PointsToDatabase, PointsToServer

    db = PointsToDatabase.load(args.db, backend=args.backend)
    server = PointsToServer(
        db,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        default_timeout=args.timeout,
        max_connections=args.max_connections,
        max_requests_per_connection=args.max_requests,
        idle_timeout=args.idle_timeout,
        max_pending=args.max_pending,
        retry_after_ms=args.retry_after_ms,
    )
    # serve_forever installs the SIGHUP -> hot-reload handler itself.
    server.serve_forever()
    return EXIT_OK


def _serve_supervised(args) -> int:
    """Run the server as a supervised child: crash classification,
    restart with backoff, crash reports, SIGHUP forwarding.  The child
    re-runs this same CLI without ``--supervised``; once it announces
    its port, that port is pinned across restarts."""
    from .serve import ServeSupervisor

    child = [
        sys.executable, "-m", "repro", "serve",
        "--db", args.db,
        "--host", args.host,
        "--port", str(args.port),
        "--cache-size", str(args.cache_size),
        "--max-connections", str(args.max_connections),
        "--max-requests", str(args.max_requests),
        "--idle-timeout", str(args.idle_timeout),
        "--max-pending", str(args.max_pending),
        "--retry-after-ms", str(args.retry_after_ms),
    ]
    if args.timeout is not None:
        child += ["--timeout", str(args.timeout)]
    if args.backend is not None:
        child += ["--backend", args.backend]
    supervisor = ServeSupervisor(
        child,
        max_restarts=args.max_restarts,
        crash_dir=args.crash_dir,
    )
    return supervisor.run()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cloning-based context-sensitive pointer analysis (PLDI 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def budget_flags(p):
        p.add_argument(
            "--backend", metavar="NAME",
            help="BDD kernel backend: reference or packed (default: "
            "$REPRO_BDD_BACKEND or 'reference')",
        )
        p.add_argument(
            "--timeout", type=float, metavar="SECONDS",
            help="wall-clock budget for the whole command",
        )
        p.add_argument(
            "--node-budget", type=int, metavar="N",
            help="maximum live BDD nodes before aborting or degrading",
        )
        p.add_argument(
            "--max-iterations", type=int, metavar="N",
            help="per-stratum fixpoint iteration cap",
        )

    def plan_flags(p):
        p.add_argument(
            "--no-opt", action="store_true",
            help="disable the Datalog plan optimizer (run greedy plans; "
            "also $REPRO_PLAN_OPT=off)",
        )
        p.add_argument(
            "--disable-pass", action="append", metavar="NAME",
            help="disable one optimizer pass by name (repeatable or "
            "comma-separated; also $REPRO_PLAN_DISABLE)",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="print the per-rule evaluation profile after solving",
        )
        p.add_argument(
            "--profile-json", action="store_true",
            help="print the per-rule profile as JSON",
        )

    def common(p, multi=False, optional=False):
        if multi:
            p.add_argument(
                "program", nargs="+", help="mini-Java source file(s)"
            )
        elif optional:
            p.add_argument(
                "program", nargs="?",
                help="mini-Java source file (omit when using --db)",
            )
        else:
            p.add_argument("program", help="mini-Java source file")
        p.add_argument("--main", default="Main", help="entry class (default Main)")
        p.add_argument(
            "--no-library", action="store_true", help="do not link the class library"
        )
        budget_flags(p)

    p_stats = sub.add_parser("stats", help="program vitals and call-path count")
    common(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_analyze = sub.add_parser("analyze", help="run the points-to analysis")
    common(p_analyze, multi=True)
    p_analyze.add_argument(
        "--context-sensitive", action="store_true",
        help="run Algorithms 4+5 instead of Algorithm 3",
    )
    p_analyze.add_argument(
        "--var", action="append", metavar="Method.name:var",
        help="print the points-to set of a variable (repeatable)",
    )
    p_analyze.add_argument(
        "--dump-dir", help="write output relations as .tuples files"
    )
    p_analyze.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="directory for mid-solve checkpoints (budgeted runs)",
    )
    p_analyze.add_argument(
        "--no-degrade", action="store_true",
        help="fail with exit code 75 instead of walking the degradation "
        "ladder when the budget is exhausted",
    )
    p_analyze.add_argument(
        "--isolate", action="store_true",
        help="run each program in a supervised worker process with hard "
        "kill/memory enforcement (exit 70 on unrecovered crash)",
    )
    p_analyze.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers with --isolate "
        "(default: cpu count, capped at the pool bound)",
    )
    p_analyze.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retries per crashed worker with --isolate (default 2)",
    )
    p_analyze.add_argument(
        "--memory-limit", type=int, metavar="MB",
        help="hard RLIMIT_AS cap per worker with --isolate",
    )
    plan_flags(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_query = sub.add_parser("query", help="run a Section 5 style query")
    common(p_query, optional=True)
    p_query.add_argument(
        "--kind",
        required=True,
        choices=sorted(set(_SOLVE_KINDS) | set(_DEMAND_KINDS)),
    )
    p_query.add_argument(
        "--db", metavar="FILE.ptdb",
        help="answer from a compiled database instead of re-solving",
    )
    p_query.add_argument(
        "--var", metavar="Method.name:var",
        help="variable for points-to / aliases (with --db)",
    )
    p_query.add_argument(
        "--var2", metavar="Method.name:var",
        help="second variable for aliases (with --db)",
    )
    p_query.add_argument(
        "--method", metavar="Class.method",
        help="method for mod-ref / callers (with --db)",
    )
    p_query.add_argument(
        "--heap", metavar="SITE",
        help="allocation site name for escape (with --db)",
    )
    p_query.add_argument(
        "--context", type=int, metavar="N",
        help="context number for points-to / mod-ref (with --db)",
    )
    p_query.add_argument(
        "--demand", action="store_true",
        help="answer cache misses the database cannot (mod-ref without "
        "the fragment, variables outside --budget-class) by goal-"
        "directed demand evaluation instead of failing",
    )
    p_query.add_argument(
        "--server", metavar="HOST:PORT",
        help="answer from a running 'repro serve' instance (resilient "
        "client: reconnect, backoff, circuit breaker; exit 69 when the "
        "server is unreachable)",
    )
    p_query.set_defaults(func=_cmd_query)

    p_datalog = sub.add_parser(
        "datalog", help="solve a raw Datalog program over .tuples files"
    )
    p_datalog.add_argument("program", help="Datalog source file (.dl)")
    p_datalog.add_argument(
        "--facts", metavar="DIR", help="directory of input .tuples files"
    )
    p_datalog.add_argument(
        "--out", metavar="DIR", help="directory for output .tuples files"
    )
    p_datalog.add_argument(
        "--domain", action="append", metavar="NAME=SIZE",
        help="override a domain size (repeatable)",
    )
    p_datalog.add_argument(
        "--naive", action="store_true", help="disable semi-naive evaluation"
    )
    p_datalog.add_argument(
        "--explain-plan", action="store_true",
        help="print the optimized plans with per-op execution costs",
    )
    budget_flags(p_datalog)
    plan_flags(p_datalog)
    p_datalog.set_defaults(func=_cmd_datalog)

    p_compile = sub.add_parser(
        "compile-db",
        help="solve once and write a .ptdb points-to database",
    )
    common(p_compile)
    p_compile.add_argument(
        "--out", metavar="FILE.ptdb",
        help="output path (default: program path with .ptdb suffix)",
    )
    p_compile.add_argument(
        "--no-modref", action="store_true",
        help="skip the mod-ref fragment (smaller db, no mod-ref queries)",
    )
    p_compile.add_argument(
        "--budget-class", metavar="PATTERN",
        help="restrict the stored vP/vPC to variables of methods whose "
        "qualified name matches PATTERN (fnmatch); queries outside the "
        "class need 'repro query --demand'",
    )
    p_compile.add_argument(
        "--no-fixpoint", action="store_true",
        help="skip the .ptdb.fix fixpoint bundle (smaller output, but "
        "'repro recompile' falls back to from-scratch solves)",
    )
    p_compile.set_defaults(func=_cmd_compile_db)

    p_recompile = sub.add_parser(
        "recompile",
        help="apply a fact diff to a .ptdb: delta facts in, delta db out",
    )
    p_recompile.add_argument(
        "--db", required=True, metavar="OLD.ptdb",
        help="baseline database the diff applies to",
    )
    p_recompile.add_argument(
        "--diff", required=True, metavar="EDIT.json",
        help="fact diff file (see docs/incremental.md for the format)",
    )
    p_recompile.add_argument(
        "-o", "--out", required=True, metavar="NEW.ptdb",
        help="output path for the recompiled database",
    )
    p_recompile.add_argument(
        "--fixpoint", metavar="FILE.fix",
        help="fixpoint bundle for warm starts (default: OLD.ptdb.fix "
        "beside the database; missing or stale bundles degrade to a "
        "cold compile)",
    )
    p_recompile.add_argument(
        "--no-fixpoint-out", action="store_true",
        help="do not write NEW.ptdb.fix beside the output",
    )
    p_recompile.add_argument(
        "--notify", metavar="HOST:PORT",
        help="after writing, ask a running 'repro serve' to hot-swap to "
        "the new database (reload verb, db_id-checked)",
    )
    budget_flags(p_recompile)
    plan_flags(p_recompile)
    p_recompile.set_defaults(func=_cmd_recompile)

    p_serve = sub.add_parser(
        "serve", help="serve demand queries for a compiled database"
    )
    p_serve.add_argument(
        "--db", required=True, metavar="FILE.ptdb",
        help="compiled database to serve",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7777,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024, metavar="N",
        help="LRU result-cache entries (default 1024)",
    )
    p_serve.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="default per-query evaluation budget",
    )
    p_serve.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="concurrent connection cap (default 64)",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=100_000, metavar="N",
        help="requests served per connection before recycling",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="SECONDS",
        help="close connections idle for this long (default 300)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=256, metavar="N",
        help="admission control: pending-work limit before requests are "
        "rejected with a typed 'overloaded' error (default 256)",
    )
    p_serve.add_argument(
        "--retry-after-ms", type=int, default=200, metavar="MS",
        help="base retry-after hint carried by 'overloaded' rejections "
        "(default 200)",
    )
    p_serve.add_argument(
        "--supervised", action="store_true",
        help="run the server as a supervised child process: crashes are "
        "classified, reported, and restarted with backoff (exit 70 when "
        "the restart budget is exhausted)",
    )
    p_serve.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="with --supervised: restarts allowed within one instability "
        "window before giving up (default 5)",
    )
    p_serve.add_argument(
        "--crash-dir", metavar="DIR",
        help="with --supervised: directory for per-crash JSON reports "
        "(default: $REPRO_CRASH_DIR)",
    )
    p_serve.add_argument(
        "--backend", metavar="NAME",
        help="BDD kernel backend for the in-memory arena (default: "
        "$REPRO_BDD_BACKEND or 'reference')",
    )
    p_serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        backend = getattr(args, "backend", None)
        if backend is not None:
            # Validate up front (typo-proofing) and export so every layer
            # — including worker subprocesses, which inherit the
            # environment — resolves to the same kernel.
            from .bdd.api import BACKEND_ENV_VAR, resolve_backend_name

            os.environ[BACKEND_ENV_VAR] = resolve_backend_name(backend)
        # Same deal for the plan optimizer: export the choice so worker
        # subprocesses resolve identically, and reject unknown pass names
        # before any solving starts.
        optimize, disabled = _plan_opts(args)
        if optimize is False or disabled:
            from .datalog.passes import (
                DISABLE_ENV_VAR,
                OPT_ENV_VAR,
                PassOptions,
            )

            PassOptions.resolve(optimize, disabled)  # validates names
            if optimize is False:
                os.environ[OPT_ENV_VAR] = "off"
            if disabled:
                os.environ[DISABLE_ENV_VAR] = ",".join(disabled)
        return args.func(args)
    except BrokenPipeError:
        # The consumer of our stdout (`head`, `grep -q`, ...) exited
        # early.  Point stdout at devnull so the interpreter's exit-time
        # flush cannot raise a second time, and leave quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK
    except FileNotFoundError as err:
        name = getattr(err, "filename", None) or err
        print(f"repro: input not found: {name}", file=sys.stderr)
        return EXIT_NOINPUT
    except IsADirectoryError as err:
        print(f"repro: not a file: {err.filename}", file=sys.stderr)
        return EXIT_NOINPUT
    except (InvalidInputError, CheckpointError) as err:
        print(f"repro: invalid input: {err}", file=sys.stderr)
        return EXIT_DATAERR
    except (IRError, DatalogError, BDDError) as err:
        print(f"repro: {err}", file=sys.stderr)
        return EXIT_DATAERR
    except WorkerCrashed as err:
        # Must precede the ReproError handler: a dead worker is a 70,
        # not a budget 75 — unless the child reported a budget fault.
        print(f"repro: worker failed ({err.classification}): {err}",
              file=sys.stderr)
        return EXIT_BUDGET if err.classification == "budget" else EXIT_WORKER
    except ReproError as err:
        print(f"repro: budget exhausted: {err}", file=sys.stderr)
        if err.completed_strata is not None:
            print(
                f"repro: completed {err.completed_strata} strata before "
                f"the fault",
                file=sys.stderr,
            )
        return EXIT_BUDGET


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
