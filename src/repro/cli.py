"""Command-line interface.

::

    python -m repro stats    program.mj
    python -m repro analyze  program.mj --context-sensitive --var Main.main:x
    python -m repro query    program.mj --kind escape
    python -m repro query    program.mj --kind vuln
    python -m repro query    program.mj --kind casts
    python -m repro query    program.mj --kind devirt
    python -m repro query    program.mj --kind refinement

``program.mj`` is mini-Java source (see :mod:`repro.ir.frontend`); the
modeled class library is linked in unless ``--no-library`` is given.
The benchmark harness has its own CLI: ``python -m repro.bench.harness``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from .analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ThreadEscapeAnalysis,
)
from .analysis.queries import (
    cast_safety,
    devirtualization,
    refinement_stats,
    security_vulnerability_query,
)
from .callgraph import number_call_graph
from .ir.facts import extract_facts
from .ir.frontend import parse_program

__all__ = ["main"]


def _load(args) -> "tuple":
    text = pathlib.Path(args.program).read_text()
    program = parse_program(
        text, main=args.main, include_library=not args.no_library
    )
    return program, extract_facts(program)


def _cmd_stats(args) -> int:
    program, facts = _load(args)
    stats = program.stats()
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    entry = facts.method_id(f"{args.main}.main")
    numbering = number_call_graph(ci.discovered_call_graph, entries=[entry])
    print(f"classes:     {stats['classes']}")
    print(f"methods:     {stats['methods']}")
    print(f"statements:  {stats['statements']}")
    print(f"variables:   {len(facts.maps['V'])}")
    print(f"alloc sites: {stats['allocs']}")
    print(f"call paths:  {numbering.max_paths()}")
    print(f"call edges:  {ci.discovered_call_graph.edge_count()}")
    return 0


def _cmd_analyze(args) -> int:
    program, facts = _load(args)
    if args.context_sensitive:
        result = ContextSensitiveAnalysis(facts=facts).run()
        print(
            f"context-sensitive points-to: {result.max_paths()} call paths, "
            f"{result.vPC.count()} (context, variable, heap) tuples, "
            f"{result.seconds:.2f}s, {result.peak_nodes} peak BDD nodes"
        )
    else:
        result = ContextInsensitiveAnalysis(facts=facts).run()
        print(
            f"context-insensitive points-to: "
            f"{result.relation('vP').count()} (variable, heap) tuples, "
            f"{result.seconds:.2f}s, {result.peak_nodes} peak BDD nodes"
        )
    for spec in args.var or ():
        method, _, var = spec.rpartition(":")
        if not method:
            print(f"  bad --var {spec!r}: use Method.name:var", file=sys.stderr)
            return 2
        targets = result.points_to(method, var)
        print(f"  {spec} ->")
        for heap in sorted(targets):
            print(f"      {heap}")
        if not targets:
            print("      (empty)")
    if args.dump_dir:
        from .datalog.io import save_solver_outputs

        counts = save_solver_outputs(result.solver, args.dump_dir)
        print(f"wrote {sum(counts.values())} tuples to {args.dump_dir}/")
    return 0


def _cmd_query(args) -> int:
    program, facts = _load(args)
    if args.kind == "escape":
        result = ThreadEscapeAnalysis(facts=facts).run()
        summary = result.summary()
        print(
            f"captured {summary['captured']}, escaped {summary['escaped']}; "
            f"syncs: {summary['sync_unneeded']} removable, "
            f"{summary['sync_needed']} needed"
        )
        for h in sorted(result.escaped_heaps()):
            print(f"  escaped: {facts.maps['H'][h]}")
        return 0
    if args.kind == "casts":
        result = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_casts"]
        ).run()
        report = cast_safety(result)
        print(f"{len(report.safe)} safe casts, {len(report.failing)} may fail")
        for var in report.failing:
            print(f"  may fail: {var} (sees {', '.join(report.evidence[var])})")
        return 0
    if args.kind == "devirt":
        result = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_devirt"]
        ).run()
        report = devirtualization(result)
        print(
            f"{len(report.mono)} monomorphic sites, {len(report.poly)} "
            f"polymorphic, {len(report.dead)} dead; "
            f"{len(report.dead_methods)} dead methods"
        )
        for site in report.mono:
            print(f"  devirtualizable: {site}")
        return 0
    if args.kind == "refinement":
        ci = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_refinement_ci"]
        ).run()
        cs = ContextSensitiveAnalysis(
            facts=facts,
            call_graph=ci.discovered_call_graph,
            query_fragments=["query_refinement_cs_pointer"],
        ).run()
        for label, stats in (
            ("context-insensitive", refinement_stats(ci, "ci")),
            ("context-sensitive (projected)", refinement_stats(cs, "projected")),
            ("context-sensitive (full)", refinement_stats(cs, "full")),
        ):
            print(
                f"{label:<32} multi-typed {stats.multi:5.1f}%  "
                f"refinable {stats.refinable:5.1f}%"
            )
        return 0
    if args.kind == "vuln":
        ci = ContextInsensitiveAnalysis(facts=facts).run()
        cs = ContextSensitiveAnalysis(
            facts=facts, call_graph=ci.discovered_call_graph
        ).run()
        report = security_vulnerability_query(
            cs, list(ci.solver.relation("IE").tuples())
        )
        if report:
            for context, site in report.vulnerable_sites:
                print(f"VULNERABLE (context {context}): {site}")
            return 1
        print("clean: no String-derived key reaches PBEKeySpec.init")
        return 0
    print(f"unknown query kind {args.kind!r}", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cloning-based context-sensitive pointer analysis (PLDI 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("program", help="mini-Java source file")
        p.add_argument("--main", default="Main", help="entry class (default Main)")
        p.add_argument(
            "--no-library", action="store_true", help="do not link the class library"
        )

    p_stats = sub.add_parser("stats", help="program vitals and call-path count")
    common(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_analyze = sub.add_parser("analyze", help="run the points-to analysis")
    common(p_analyze)
    p_analyze.add_argument(
        "--context-sensitive", action="store_true",
        help="run Algorithms 4+5 instead of Algorithm 3",
    )
    p_analyze.add_argument(
        "--var", action="append", metavar="Method.name:var",
        help="print the points-to set of a variable (repeatable)",
    )
    p_analyze.add_argument(
        "--dump-dir", help="write output relations as .tuples files"
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_query = sub.add_parser("query", help="run a Section 5 style query")
    common(p_query)
    p_query.add_argument(
        "--kind",
        required=True,
        choices=["escape", "casts", "devirt", "refinement", "vuln"],
    )
    p_query.set_defaults(func=_cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
