"""repro — reproduction of Whaley & Lam, PLDI 2004.

*Cloning-Based Context-Sensitive Pointer Alias Analysis Using Binary
Decision Diagrams.*

The package is layered exactly like the system in the paper:

* :mod:`repro.bdd` — the BDD kernel and finite domains (replaces
  JavaBDD/BuDDy),
* :mod:`repro.datalog` — the bddbddb-equivalent Datalog-to-BDD engine,
* :mod:`repro.ir` — a mini-Java program representation and fact extractor
  (replaces Java bytecode + the Joeq front end),
* :mod:`repro.callgraph` — call graphs and the Algorithm 4 context
  numbering,
* :mod:`repro.analysis` — Algorithms 1–7 and the Section 5 queries,
* :mod:`repro.bench` — workload generator, scaled benchmark corpus, and
  the harness that regenerates every figure of the paper.

Quick start::

    from repro import analyze
    from repro.ir.frontend import parse_program

    program = parse_program(source_text)
    result = analyze(program, context_sensitive=True)
    for heap in result.points_to("Main.main", "x"):
        print(heap)
"""

__version__ = "1.0.0"

__all__ = ["analyze", "__version__"]


def analyze(program, context_sensitive=False, **kwargs):
    """Convenience entry point; see :mod:`repro.analysis` for the full API.

    Runs the on-the-fly context-insensitive analysis (Algorithm 3) and, when
    ``context_sensitive`` is set, the cloning-based context-sensitive
    analysis (Algorithms 4 + 5) on top of the discovered call graph.
    """
    # Imported lazily so that `import repro` stays cheap and subpackages
    # remain independently importable.
    from .analysis import run_analysis

    return run_analysis(program, context_sensitive=context_sensitive, **kwargs)
