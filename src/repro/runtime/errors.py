"""Structured exception hierarchy for the governed runtime.

Every :class:`ReproError` can carry the partial :class:`SolveStats` of the
interrupted run, the predicates of the stratum that was executing, and the
number of strata that had already reached fixpoint — enough for a driver
to checkpoint, retry under a different configuration, or degrade to a
cheaper analysis without re-deriving what was already computed.

This module deliberately imports nothing from the solver or BDD layers so
that both can raise these exceptions without import cycles.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = [
    "ReproError",
    "SolverTimeout",
    "NodeBudgetExceeded",
    "IterationLimitExceeded",
    "InvalidInputError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base of all governed-runtime failures.

    Attributes
    ----------
    stats:
        Partial ``SolveStats`` of the interrupted solve (``None`` when the
        failure happened outside a solve).
    stratum:
        Sorted predicate names of the stratum that was executing.
    completed_strata:
        Number of strata that had fully reached fixpoint before the
        interruption; resuming from this index is always sound because
        relations only grow monotonically toward the fixpoint.
    """

    def __init__(
        self,
        message: str,
        *,
        stats: Any = None,
        stratum: Optional[Sequence[str]] = None,
        completed_strata: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.stats = stats
        self.stratum = list(stratum) if stratum is not None else None
        self.completed_strata = completed_strata


class SolverTimeout(ReproError):
    """The wall-clock deadline of a :class:`ResourceBudget` expired."""


class NodeBudgetExceeded(ReproError):
    """The BDD arena grew past the budget's node count."""

    def __init__(self, message: str, *, node_count: int = 0, budget: int = 0, **kw) -> None:
        super().__init__(message, **kw)
        self.node_count = node_count
        self.budget = budget


class IterationLimitExceeded(ReproError):
    """A stratum did not converge within the fixpoint-iteration cap."""

    def __init__(
        self,
        message: str,
        *,
        iterations: int = 0,
        rules: Optional[Sequence[str]] = None,
        **kw,
    ) -> None:
        super().__init__(message, **kw)
        self.iterations = iterations
        self.rules: List[str] = list(rules or ())


class InvalidInputError(ReproError):
    """A tuple value lies outside its declared domain.

    Carries the predicate, attribute, and offending value so callers can
    point at the exact bad fact instead of silently truncating it into the
    bit encoding (or surfacing a generic kernel error).
    """

    def __init__(
        self,
        message: str,
        *,
        predicate: Optional[str] = None,
        attribute: Optional[str] = None,
        value: Any = None,
        **kw,
    ) -> None:
        super().__init__(message, **kw)
        self.predicate = predicate
        self.attribute = attribute
        self.value = value


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, truncated, or schema-incompatible."""
