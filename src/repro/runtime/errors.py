"""Structured exception hierarchy for the governed runtime.

Every :class:`ReproError` can carry the partial :class:`SolveStats` of the
interrupted run, the predicates of the stratum that was executing, and the
number of strata that had already reached fixpoint — enough for a driver
to checkpoint, retry under a different configuration, or degrade to a
cheaper analysis without re-deriving what was already computed.

This module deliberately imports nothing from the solver or BDD layers so
that both can raise these exceptions without import cycles.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = [
    "ReproError",
    "SolverTimeout",
    "NodeBudgetExceeded",
    "IterationLimitExceeded",
    "InvalidInputError",
    "CheckpointError",
    "WorkerCrashed",
    "WorkerKilled",
]


class ReproError(Exception):
    """Base of all governed-runtime failures.

    Attributes
    ----------
    stats:
        Partial ``SolveStats`` of the interrupted solve (``None`` when the
        failure happened outside a solve).
    stratum:
        Sorted predicate names of the stratum that was executing.
    completed_strata:
        Number of strata that had fully reached fixpoint before the
        interruption; resuming from this index is always sound because
        relations only grow monotonically toward the fixpoint.
    """

    def __init__(
        self,
        message: str,
        *,
        stats: Any = None,
        stratum: Optional[Sequence[str]] = None,
        completed_strata: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.stats = stats
        self.stratum = list(stratum) if stratum is not None else None
        self.completed_strata = completed_strata


class SolverTimeout(ReproError):
    """The wall-clock deadline of a :class:`ResourceBudget` expired."""


class NodeBudgetExceeded(ReproError):
    """The BDD arena grew past the budget's node count."""

    def __init__(self, message: str, *, node_count: int = 0, budget: int = 0, **kw) -> None:
        super().__init__(message, **kw)
        self.node_count = node_count
        self.budget = budget


class IterationLimitExceeded(ReproError):
    """A stratum did not converge within the fixpoint-iteration cap."""

    def __init__(
        self,
        message: str,
        *,
        iterations: int = 0,
        rules: Optional[Sequence[str]] = None,
        **kw,
    ) -> None:
        super().__init__(message, **kw)
        self.iterations = iterations
        self.rules: List[str] = list(rules or ())


class InvalidInputError(ReproError):
    """A tuple value lies outside its declared domain.

    Carries the predicate, attribute, and offending value so callers can
    point at the exact bad fact instead of silently truncating it into the
    bit encoding (or surfacing a generic kernel error).
    """

    def __init__(
        self,
        message: str,
        *,
        predicate: Optional[str] = None,
        attribute: Optional[str] = None,
        value: Any = None,
        **kw,
    ) -> None:
        super().__init__(message, **kw)
        self.predicate = predicate
        self.attribute = attribute
        self.value = value


class CheckpointError(ReproError):
    """A checkpoint file is corrupt, truncated, or schema-incompatible."""


class WorkerCrashed(ReproError):
    """A supervised worker process failed to produce a result.

    Raised by the supervisor after retries (and any degradation fallbacks)
    are exhausted.  Carries the *classification* of the final failure and
    the full attempt transcript so callers can distinguish an OOM-killed
    child from a wedged one from a clean-but-failing job.

    Attributes
    ----------
    classification:
        ``hang`` | ``oom`` | ``oom-kill`` | ``abort`` | ``segfault`` |
        ``signal:<NAME>`` | ``exception`` | ``budget`` | ``crash`` |
        ``protocol``.
    exit_code:
        The worker's raw exit status (negative = died on that signal),
        ``None`` when the worker never exited on its own.
    term_signal:
        Number of the signal that ended the worker, when one did.
    attempts:
        List of per-attempt record dicts (see
        :class:`repro.runtime.supervisor.AttemptRecord`).
    """

    def __init__(
        self,
        message: str,
        *,
        classification: str = "crash",
        exit_code: Optional[int] = None,
        term_signal: Optional[int] = None,
        attempts: Optional[Sequence[Any]] = None,
        **kw,
    ) -> None:
        super().__init__(message, **kw)
        self.classification = classification
        self.exit_code = exit_code
        self.term_signal = term_signal
        self.attempts: List[Any] = list(attempts or ())


class WorkerKilled(WorkerCrashed):
    """The supervisor killed the worker: the wall-clock deadline passed
    and the SIGTERM -> SIGKILL escalation ended it."""
