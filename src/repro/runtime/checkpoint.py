"""Checkpoint format v2: atomic snapshot/restore of a whole solver.

A checkpoint captures *all* of a solver's relations (inputs, outputs, and
intermediates — any subset-of-fixpoint state is sound to resume from
because relations only grow monotonically), plus the domain metadata
needed to reload them into a solver built later, possibly under a
*different variable order* (the retry-with-reorder strategy depends on
this).  Layout::

    # repro-checkpoint 2
    meta {"format": 2, "relations": [...], "levels": {...}, ...}
    sha256 <hex digest of the payload section>
    payload <number of payload lines>
    # repro-bdd 1
    vars 40
    roots 12
    node ...
    root ...          (one per relation, in meta["relations"] order)

Properties:

* **atomic** — written to a temp file in the same directory, then
  ``os.replace``d into place, so readers never observe a half-written
  checkpoint;
* **self-verifying** — the payload digest is checked before any node is
  rebuilt, and the relation schemas / domain sizes are checked against
  the target solver, so corruption and program drift both fail with a
  clear :class:`CheckpointError` instead of silently wrong relations;
* **order-independent** — the saved per-domain level assignment is
  recorded; when the target solver uses a different variable order the
  payload is staged in a scratch manager and rebuilt level-by-level.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..bdd import BDDError, create_kernel
from ..bdd.reorder import rebuild_with_levels
from ..bdd.serialize import dump_bdd_lines, parse_bdd_lines
from .atomic import atomic_write_text
from .errors import CheckpointError, InvalidInputError
from .version import check_tool_version, tool_meta

__all__ = [
    "CheckpointMeta",
    "FORMAT_VERSION",
    "checkpoint_lines",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_lines",
]

PathLike = Union[str, pathlib.Path]

_MAGIC = "# repro-checkpoint 2"

# ``format`` (2) describes the file *layout* and predates version
# stamping; ``format_version`` + ``tool`` identify the schema revision
# and writing tool so cross-version resume fails up front with
# InvalidInputError instead of a confusing schema mismatch.
FORMAT_VERSION = 2


@dataclass
class CheckpointMeta:
    """Parsed checkpoint header."""

    path: str
    next_stratum: int
    order_spec: Optional[str]
    meta: Dict[str, Any] = field(default_factory=dict)


def _schema_of(solver) -> List[Dict[str, Any]]:
    out = []
    for name in sorted(solver.relations):
        rel = solver.relations[name]
        out.append(
            {
                "name": name,
                "attrs": [
                    [a.name, a.logical, a.phys.name, a.phys.size]
                    for a in rel.attributes
                ],
            }
        )
    return out


def _levels_of(solver) -> Dict[str, List[int]]:
    return {dom.name: list(dom.levels) for dom in solver._pool.values()}


def checkpoint_lines(
    solver,
    next_stratum: int = 0,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> Tuple[List[str], Dict[str, Any]]:
    """Serialize a solver snapshot as checkpoint-document lines.

    The returned lines are a complete, self-verifying checkpoint document
    (magic, meta, digest, payload) — :func:`save_checkpoint` writes them
    to a file, and the incremental fixpoint bundle embeds several of them
    as sections of one artifact.  Returns ``(lines, meta)``.
    """
    schema = _schema_of(solver)
    roots = [solver.relations[entry["name"]].node for entry in schema]
    payload, _ = dump_bdd_lines(solver.manager, roots)
    payload_text = "\n".join(payload)
    meta: Dict[str, Any] = {
        "format": 2,
        "format_version": FORMAT_VERSION,
        "tool": tool_meta(),
        "relations": schema,
        "levels": _levels_of(solver),
        "num_vars": solver.manager.num_vars,
        "order_spec": solver.order_spec,
        # Provenance only: the payload is canonical serialization, so any
        # backend can resume a checkpoint written by any other.
        "backend": solver.manager.backend_name,
        "next_stratum": next_stratum,
        "stats": {
            "iterations": solver.stats.iterations,
            "rule_applications": solver.stats.rule_applications,
            "peak_nodes": solver.manager.peak_nodes,
        },
    }
    if extra_meta:
        meta.update(extra_meta)
    digest = hashlib.sha256(payload_text.encode()).hexdigest()
    lines = [
        _MAGIC,
        "meta " + json.dumps(meta, sort_keys=True, separators=(",", ":")),
        f"sha256 {digest}",
        f"payload {len(payload)}",
    ]
    lines.extend(payload)
    return lines, meta


def save_checkpoint(
    solver,
    path: PathLike,
    next_stratum: int = 0,
    extra_meta: Optional[Dict[str, Any]] = None,
) -> CheckpointMeta:
    """Atomically snapshot every relation of ``solver`` to ``path``.

    ``next_stratum`` records where a resumed solve should restart (the
    index of the stratum that was interrupted; strata before it are at
    fixpoint).  Returns the written :class:`CheckpointMeta`.
    """
    lines, meta = checkpoint_lines(solver, next_stratum, extra_meta)
    # Durability, not just atomicity: a crashed worker's retry resumes
    # from this file, so it must survive power loss.
    target = atomic_write_text(path, "\n".join(lines) + "\n")
    return CheckpointMeta(
        path=target,
        next_stratum=next_stratum,
        order_spec=solver.order_spec,
        meta=meta,
    )


def _read_header(path: pathlib.Path):
    try:
        text = path.read_text()
    except OSError as err:
        raise CheckpointError(f"{path}: cannot read checkpoint: {err}")
    return _parse_header(text.splitlines(), str(path))


def _parse_header(lines: List[str], path: str):
    if not lines or lines[0].strip() != _MAGIC:
        raise CheckpointError(
            f"{path}:1: not a repro-checkpoint file (expected {_MAGIC!r})"
        )
    if len(lines) < 4:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    if not lines[1].startswith("meta "):
        raise CheckpointError(f"{path}:2: missing meta record")
    try:
        meta = json.loads(lines[1][len("meta "):])
    except json.JSONDecodeError as err:
        raise CheckpointError(f"{path}:2: corrupt meta json: {err}")
    if meta.get("format") != 2:
        raise CheckpointError(
            f"{path}:2: unsupported checkpoint format {meta.get('format')!r}"
        )
    # Version stamps are newer than the layout marker: files written
    # before stamping carry neither key and still load.
    if "format_version" in meta and meta["format_version"] != FORMAT_VERSION:
        raise InvalidInputError(
            f"{path}:2: checkpoint format_version {meta['format_version']!r} "
            f"is not supported (this build reads version {FORMAT_VERSION}; "
            f"re-run the solve to produce a fresh checkpoint)"
        )
    check_tool_version(meta, str(path), "checkpoint")
    if not lines[2].startswith("sha256 "):
        raise CheckpointError(f"{path}:3: missing sha256 record")
    digest = lines[2][len("sha256 "):].strip()
    if not lines[3].startswith("payload "):
        raise CheckpointError(f"{path}:4: missing payload record")
    try:
        n_payload = int(lines[3][len("payload "):])
    except ValueError:
        raise CheckpointError(f"{path}:4: malformed payload count")
    payload = lines[4:]
    if len(payload) != n_payload:
        raise CheckpointError(
            f"{path}: truncated checkpoint: header promises {n_payload} "
            f"payload lines, found {len(payload)}"
        )
    actual = hashlib.sha256("\n".join(payload).encode()).hexdigest()
    if actual != digest:
        raise CheckpointError(
            f"{path}: checksum mismatch: payload is corrupt "
            f"(expected {digest[:12]}..., got {actual[:12]}...)"
        )
    return meta, payload


def load_checkpoint(solver, path: PathLike) -> CheckpointMeta:
    """Restore every relation of ``solver`` from a checkpoint.

    The target solver must have been built from the same program (same
    relation schemas and domain sizes); its variable order may differ —
    the payload is then rebuilt under the target's level assignment.
    """
    target = pathlib.Path(path)
    meta, payload = _read_header(target)
    return _load_parsed(solver, meta, payload, str(target))


def load_checkpoint_lines(solver, lines: List[str], name: str) -> CheckpointMeta:
    """Restore a solver from in-memory checkpoint-document lines.

    ``name`` labels diagnostics (e.g. ``"bundle.fix#cs"`` for a fixpoint
    bundle section).  Same validation as :func:`load_checkpoint`.
    """
    meta, payload = _parse_header(lines, name)
    return _load_parsed(solver, meta, payload, name)


def _load_parsed(
    solver, meta: Dict[str, Any], payload: List[str], target: str
) -> CheckpointMeta:
    schema = _schema_of(solver)
    if meta.get("relations") != schema:
        raise CheckpointError(
            f"{target}: checkpoint schema does not match the target solver "
            f"(was the program or a domain size changed?)"
        )

    saved_levels: Dict[str, List[int]] = meta.get("levels", {})
    current_levels = _levels_of(solver)
    if set(saved_levels) != set(current_levels):
        raise CheckpointError(
            f"{target}: checkpoint physical domains "
            f"{sorted(saved_levels)} do not match solver domains "
            f"{sorted(current_levels)}"
        )

    try:
        if saved_levels == current_levels:
            roots = parse_bdd_lines(
                solver.manager, payload, name=str(target), first_lineno=5
            )
        else:
            # Different variable order: stage in a scratch manager, then
            # rebuild under the target's levels (order-correcting ite).
            scratch = create_kernel(
                num_vars=int(meta.get("num_vars", solver.manager.num_vars)),
                backend=solver.manager.backend_name,
            )
            staged = parse_bdd_lines(
                scratch, payload, name=str(target), first_lineno=5
            )
            level_map: Dict[int, int] = {}
            for dom_name, old in saved_levels.items():
                new = current_levels[dom_name]
                if len(old) != len(new):
                    raise CheckpointError(
                        f"{target}: domain {dom_name} changed width "
                        f"({len(old)} -> {len(new)} bits)"
                    )
                for o, n in zip(old, new):
                    level_map[o] = n
            roots = rebuild_with_levels(
                scratch, staged, level_map, solver.manager
            )
    except BDDError as err:
        raise CheckpointError(f"corrupt checkpoint payload: {err}")

    for entry, node in zip(schema, roots):
        solver.relations[entry["name"]].set_node(node)
    next_stratum = int(meta.get("next_stratum", 0))
    return CheckpointMeta(
        path=str(target),
        next_stratum=next_stratum,
        order_spec=meta.get("order_spec"),
        meta=meta,
    )
