"""Machine-readable reports for the degradation ladder.

When a governed context-sensitive analysis cannot finish within its
budget it walks a ladder of cheaper configurations:

1. ``full``      — Algorithm 5 under the requested context numbering,
2. ``reorder``   — the same, resumed from a checkpoint after one round of
   block sifting improved the variable order,
3. ``truncated`` — k-truncated context numbering (contexts beyond ``k``
   per method merge into the overflow context, as the paper merges
   contexts beyond 2^63),
4. ``context_insensitive`` — Algorithm 3; sound, context-free.

Every rung attempted is recorded as an :class:`Attempt`; the final
:class:`DegradationReport` travels on the analysis result so callers (and
the CLI / bench harness) can tell exactly what they got and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Attempt", "DegradationReport", "LADDER"]

# The rungs, cheapest-last.  ``reorder`` only exists as an in-process
# retry (it resumes from a checkpoint under a sifted variable order); the
# cross-process supervisor steps down the other three.
LADDER = ("full", "reorder", "truncated", "context_insensitive")


@dataclass
class Attempt:
    """One rung of the ladder: what ran, how it ended, what it cost."""

    mode: str           # full | reorder | truncated | context_insensitive
    outcome: str        # ok | timeout | node_budget | iteration_limit | error
    seconds: float = 0.0
    peak_nodes: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "outcome": self.outcome,
            "seconds": round(self.seconds, 6),
            "peak_nodes": self.peak_nodes,
            "detail": self.detail,
        }


@dataclass
class DegradationReport:
    """Why and how far an analysis degraded (``degraded=False`` when the
    first rung succeeded)."""

    degraded: bool = False
    final_mode: str = "full"
    attempts: List[Attempt] = field(default_factory=list)

    def record(self, attempt: Attempt) -> None:
        self.attempts.append(attempt)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "final_mode": self.final_mode,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    def summary(self) -> str:
        steps = " -> ".join(
            f"{a.mode}:{a.outcome}" for a in self.attempts
        ) or "(no attempts)"
        return f"final={self.final_mode} [{steps}]"
