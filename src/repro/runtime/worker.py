"""The supervised worker: sandboxed child + bounded parallel pool.

Child side (``python -m repro.runtime.worker``): reads one JSON job from
stdin, applies the requested ``RLIMIT_AS`` cap, re-arms fault injection
from the environment, runs the job, and writes exactly one JSON protocol
message to stdout::

    {"ok": true,  "result": {...}}                            # exit 0
    {"ok": false, "kind": "oom"|"budget"|"exception",
     "error": "MemoryError", "message": "...",
     "traceback": "..."}                                      # exit 1

Everything else the job prints goes to stderr (stdout is reserved for
the protocol; the real ``sys.stdout`` is swapped away before the job
runs).  A worker that dies without a protocol message — OOM-killed,
aborted, segfaulted, SIGKILLed by the supervisor — is classified by the
parent from its exit status (:mod:`repro.runtime.supervisor`).

Parent side: :class:`WorkerPool` runs many jobs with per-job isolation,
bounded parallelism, and order-preserving results.  Each pool thread
supervises its own *subprocess* (threads never fork), so a wedged or
dying worker affects only its own slot: a poisoned corpus entry cannot
take down the run.

Job kinds
---------

``probe``
    Minimal job for supervisor tests: fires the ``probe`` fault site,
    optionally sleeps, echoes its payload back.
``solve_tc``
    A small Datalog transitive closure — crosses both in-tree fault
    seams (``bdd.mk``, ``solver.stratum``) with real kernel work.
``analyze``
    One rung of the points-to analysis on a mini-Java source file
    (:meth:`ContextSensitiveAnalysis.run_rung`), or the
    context-insensitive analysis.  Supports checkpoint resume.
``bench``
    One benchmark corpus entry via :func:`repro.bench.harness.run_benchmark`.
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence

from .errors import ReproError, WorkerCrashed
from . import faults

__all__ = ["MAX_POOL_WORKERS", "WorkerPool", "default_jobs", "run_job", "main"]

# Upper bound on pool parallelism.  Each slot supervises a full solver
# child process, so past this point extra slots just thrash memory.
MAX_POOL_WORKERS = 16


def default_jobs() -> int:
    """Pool width when the caller does not choose: the machine's CPU
    count, clamped to the pool bound."""
    return max(1, min(MAX_POOL_WORKERS, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# Job handlers (child side)
# ----------------------------------------------------------------------

_TC_SOURCE = """
.domains
N 64
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


def _job_probe(job: Dict[str, Any]) -> Dict[str, Any]:
    faults.fire("probe")
    if job.get("sleep"):
        time.sleep(float(job["sleep"]))
    if job.get("allocate_mb"):
        # Deterministic allocation for RLIMIT_AS tests: one big buffer,
        # touched so the pages are really committed.
        buf = bytearray(int(job["allocate_mb"]) << 20)
        buf[:: 4096] = b"x" * len(buf[:: 4096])
    return {"echo": job.get("echo"), "pid": os.getpid()}


def _job_solve_tc(job: Dict[str, Any]) -> Dict[str, Any]:
    from ..datalog import Solver, parse_program

    n = int(job.get("chain", 12))
    prog = parse_program(_TC_SOURCE)
    solver = Solver(
        prog,
        budget=_budget_from(job),
        backend=job.get("backend"),
        optimize=job.get("optimize"),
        disabled_passes=job.get("disabled_passes"),
    )
    solver.add_tuples("edge", [(i, i + 1) for i in range(n)])
    t0 = time.monotonic()
    solver.solve()
    return {
        "paths": solver.relation("path").count(),
        "iterations": solver.stats.iterations,
        "solve_seconds": time.monotonic() - t0,
        "peak_nodes": solver.manager.peak_nodes,
        "backend": solver.manager.backend_name,
    }


def _budget_from(job: Dict[str, Any]):
    from .budget import ResourceBudget

    if not any(
        job.get(k) is not None
        for k in ("timeout", "node_budget", "max_iterations")
    ):
        return None
    return ResourceBudget(
        timeout=job.get("timeout"),
        node_budget=job.get("node_budget"),
        max_iterations=job.get("max_iterations"),
    )


def _job_analyze(job: Dict[str, Any]) -> Dict[str, Any]:
    import pathlib

    from ..analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis
    from ..ir.facts import extract_facts
    from ..ir.frontend import parse_program as parse_mj

    text = pathlib.Path(job["program_path"]).read_text()
    program = parse_mj(
        text,
        main=job.get("main", "Main"),
        include_library=not job.get("no_library", False),
    )
    facts = extract_facts(program)
    budget = _budget_from(job)
    backend = job.get("backend")
    t0 = time.monotonic()
    if not job.get("context_sensitive", True):
        result = ContextInsensitiveAnalysis(
            facts=facts,
            budget=budget,
            backend=backend,
            optimize=job.get("optimize"),
            disabled_passes=job.get("disabled_passes"),
        ).run()
        solve_seconds = time.monotonic() - t0
        out = {
            "relation": "vP",
            "tuples": result.relation("vP").count(),
            "degraded": False,
            "resumed": False,
            "mode": "context_insensitive",
        }
    else:
        mode = job.get("mode", "full")
        analysis = ContextSensitiveAnalysis(
            facts=facts,
            budget=budget,
            checkpoint_dir=job.get("checkpoint_dir"),
            degrade=False,
            truncate_cap=int(job.get("truncate_cap", 64)),
            backend=backend,
            optimize=job.get("optimize"),
            disabled_passes=job.get("disabled_passes"),
        )
        result = analysis.run_rung(mode)
        solve_seconds = time.monotonic() - t0
        if mode == "context_insensitive":
            out = {"relation": "vP", "tuples": result.relation("vP").count()}
        else:
            out = {
                "relation": "vPC",
                "tuples": result.relation("vPC").count(),
                "call_paths": result.max_paths(),
            }
        out["degraded"] = bool(result.degraded)
        out["resumed"] = bool(getattr(result, "resumed", False))
        out["mode"] = mode
        varsets = {}
        for spec in job.get("vars") or ():
            method, _, var = spec.rpartition(":")
            varsets[spec] = sorted(result.points_to(method, var))
        if varsets:
            out["vars"] = varsets
    out["seconds"] = result.seconds
    out["solve_seconds"] = solve_seconds
    out["peak_nodes"] = result.peak_nodes
    out["backend"] = result.solver.manager.backend_name
    return out


def _job_bench(job: Dict[str, Any]) -> Dict[str, Any]:
    from ..bench.harness import run_benchmark

    t0 = time.monotonic()
    run = run_benchmark(
        job["name"],
        timeout=job.get("timeout"),
        node_budget=job.get("node_budget"),
        checkpoint_dir=job.get("checkpoint_dir"),
        backend=job.get("backend"),
    )
    out = run.to_dict()
    out["solve_seconds"] = time.monotonic() - t0
    return out


_HANDLERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "probe": _job_probe,
    "solve_tc": _job_solve_tc,
    "analyze": _job_analyze,
    "bench": _job_bench,
}


def run_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one job dict to its handler (no sandboxing — the caller
    is either the child ``main`` or an in-process test)."""
    kind = job.get("kind")
    handler = _HANDLERS.get(kind)
    if handler is None:
        raise ValueError(
            f"unknown job kind {kind!r} (expected one of {sorted(_HANDLERS)})"
        )
    return handler(job)


# ----------------------------------------------------------------------
# Child entry point
# ----------------------------------------------------------------------

def _apply_rlimit(memory_limit_mb: Optional[int]) -> None:
    if not memory_limit_mb:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    limit = int(memory_limit_mb) << 20
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover - platform quirk
        print("worker: could not apply RLIMIT_AS", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Child protocol: one JSON job on stdin, one JSON message on stdout."""
    protocol_out = sys.stdout
    # Reserve real stdout for the protocol; job prints land on stderr.
    sys.stdout = sys.stderr
    try:
        job = json.loads(sys.stdin.read() or "{}")
    except json.JSONDecodeError as err:
        print(json.dumps({
            "ok": False, "kind": "protocol", "error": "JSONDecodeError",
            "message": f"malformed job on stdin: {err}",
        }), file=protocol_out)
        return 1
    _apply_rlimit(job.get("memory_limit_mb"))
    faults.arm_from_env()
    try:
        result = run_job(job)
        message: Dict[str, Any] = {"ok": True, "result": result}
        status = 0
    except MemoryError:
        # Keep the handler allocation-free: the big buffers are garbage
        # by now, and the message below is small.
        message = {
            "ok": False, "kind": "oom", "error": "MemoryError",
            "message": "memory limit exceeded (RLIMIT_AS)",
        }
        status = 1
    except ReproError as err:
        message = {
            "ok": False, "kind": "budget", "error": type(err).__name__,
            "message": str(err), "traceback": traceback.format_exc(),
        }
        status = 1
    except BaseException as err:
        message = {
            "ok": False, "kind": "exception", "error": type(err).__name__,
            "message": str(err), "traceback": traceback.format_exc(),
        }
        status = 1
    print(json.dumps(message), file=protocol_out)
    protocol_out.flush()
    return status


# ----------------------------------------------------------------------
# Parent-side pool
# ----------------------------------------------------------------------

class WorkerPool:
    """Run many supervised jobs with bounded parallelism.

    Each pool slot is a *thread* whose only work is supervising its own
    child process — no fork-under-threads hazard, no GIL contention (the
    thread blocks in ``communicate``).  Results are order-preserving: the
    i-th result corresponds to the i-th job.  A job whose every attempt
    failed contributes its :class:`WorkerCrashed` exception (not a raise)
    so one poisoned entry never hides the others' results.
    """

    def __init__(self, supervisor, jobs: int = 2) -> None:
        self.supervisor = supervisor
        self.jobs = max(1, min(MAX_POOL_WORKERS, int(jobs)))

    def run(
        self,
        job_list: Sequence[Dict[str, Any]],
        fallbacks: Optional[Callable[[Dict[str, Any]], Sequence[Dict[str, Any]]]] = None,
    ) -> List[Any]:
        """Run every job; return a list of :class:`SupervisedResult` or
        :class:`WorkerCrashed` (index-aligned with ``job_list``).

        ``fallbacks(job)`` supplies per-job degradation steps (e.g.
        :func:`~repro.runtime.supervisor.ladder_fallbacks`).
        """
        def one(job: Dict[str, Any]) -> Any:
            steps = list(fallbacks(job)) if fallbacks is not None else []
            try:
                return self.supervisor.run(job, fallbacks=steps)
            except WorkerCrashed as err:
                return err

        if len(job_list) <= 1 or self.jobs == 1:
            return [one(job) for job in job_list]
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            return list(pool.map(one, job_list))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
