"""Resource budgets and the cooperative watchdog.

A :class:`ResourceBudget` bounds one *logical* analysis request, possibly
spanning several solver attempts (the degradation ladder shares a single
wall-clock deadline across its rungs).  The :class:`Watchdog` binds a
budget to one BDD manager and is checked from two places:

* the BDD kernel's ``mk`` hot path, every ``stride`` freshly allocated
  nodes (so runaway ``rel_prod``/``apply`` recursions are caught while
  they grow, not after), and
* the solver's stratum loop, once per rule application and fixpoint
  iteration (so cache-hit-heavy phases that allocate nothing still
  observe the deadline).

Checks are deliberately cheap — an integer compare on the arena length
and one ``time.monotonic()`` call — so a stride of a few thousand nodes
keeps the overhead well under 1%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .errors import NodeBudgetExceeded, SolverTimeout

__all__ = ["ResourceBudget", "Watchdog"]


@dataclass
class ResourceBudget:
    """Limits for one analysis request.

    Parameters
    ----------
    timeout:
        Wall-clock seconds for the whole request.  The deadline is fixed
        when :meth:`start` first runs; later solver attempts under the
        same budget inherit the *remaining* time, not a fresh allowance.
    node_budget:
        Maximum number of live nodes in the BDD arena.  Exceeding it
        raises :class:`NodeBudgetExceeded`; detection lags by at most the
        watchdog stride.
    max_iterations:
        Per-stratum fixpoint iteration cap (defaults to the solver's
        built-in safety limit when ``None``).
    """

    timeout: Optional[float] = None
    node_budget: Optional[int] = None
    max_iterations: Optional[int] = None
    deadline: Optional[float] = field(default=None, init=False, repr=False)

    def start(self) -> "ResourceBudget":
        """Fix the wall-clock deadline (idempotent); returns self."""
        if self.deadline is None and self.timeout is not None:
            self.deadline = time.monotonic() + self.timeout
        return self

    @classmethod
    def until(
        cls,
        deadline: float,
        *,
        node_budget: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> "ResourceBudget":
        """A budget pinned to an *absolute* ``time.monotonic`` deadline.

        The serve layer uses this for client-supplied ``deadline_ms``
        propagation: the deadline was fixed when the request arrived, so
        re-deriving it from a relative timeout at evaluation time would
        silently extend it by the queueing delay.  ``timeout`` is set to
        the remaining time at construction (for error messages); the
        ``deadline`` field is authoritative.
        """
        budget = cls(
            timeout=max(0.0, deadline - time.monotonic()),
            node_budget=node_budget,
            max_iterations=max_iterations,
        )
        budget.deadline = deadline
        return budget

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def share_deadline(
        self,
        node_budget: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> "ResourceBudget":
        """A budget enforcing the *same* wall-clock deadline with
        different node/iteration limits.

        The degradation ladder uses this: every rung races the one
        deadline fixed when the request started, but later rungs drop the
        node budget so the sound fallback can actually finish.
        """
        self.start()
        child = ResourceBudget(
            timeout=self.timeout,
            node_budget=node_budget,
            max_iterations=max_iterations,
        )
        child.deadline = self.deadline
        return child


class Watchdog:
    """Cooperative budget enforcement bound to one BDD manager."""

    __slots__ = ("budget", "manager", "stride")

    def __init__(self, budget: ResourceBudget, manager) -> None:
        budget.start()
        self.budget = budget
        self.manager = manager
        # With a tiny node budget a coarse stride would overshoot it by a
        # large factor before the first check; scale the stride down.
        stride = 2048
        if budget.node_budget is not None:
            stride = max(64, min(stride, budget.node_budget // 8))
        self.stride = stride

    def check(self) -> None:
        """Raise if any budget dimension is exhausted.

        The node budget is charged for *both* arena nodes and operation
        cache entries: the caches grow alongside the arena during a
        blowup, and a budget that ignored them would under-count real
        memory by 2-3x.  The manager additionally caps its caches itself
        (``BDD.cache_limit``, clear-on-overflow), so cache pressure alone
        degrades memoization before it can exhaust the budget.
        """
        budget = self.budget
        if budget.node_budget is not None:
            count = self.manager.node_count()
            cached = self.manager.cache_entries()
            if cached > self.manager.peak_cache_entries:
                self.manager.peak_cache_entries = cached
            if count + cached > budget.node_budget:
                raise NodeBudgetExceeded(
                    f"BDD arena holds {count} nodes plus {cached} cache "
                    f"entries, budget is {budget.node_budget}",
                    node_count=count,
                    budget=budget.node_budget,
                )
        if budget.deadline is not None and time.monotonic() > budget.deadline:
            raise SolverTimeout(
                f"wall-clock budget of {budget.timeout:.3f}s exhausted"
            )
