"""Deterministic fault injection for supervisor and robustness testing.

Real failure modes of a BDD analysis — a wedged ``rel_prod``, runaway
allocation, a native-level abort — are timing-dependent and impossible to
reproduce on demand.  This module plants *fault points* at the two places
where pathology actually develops (the BDD kernel's ``mk`` stride and the
solver's stratum loop, plus a ``probe`` site in the worker's test job —
and, for the serve layer, the accept loop, request dispatch, database
load, and hot-swap publication points) and arms them from a single
environment variable, so every failure mode the supervisor must classify
can be triggered deterministically::

    REPRO_FAULT="KIND@SITE[#HITS][%STRIDE][~MAXATTEMPT][,KIND@SITE...]"

* ``KIND`` — one of

  - ``exception`` — raise :class:`FaultError` (a clean, catchable error),
  - ``hang``      — ignore ``SIGTERM`` and sleep forever (a wedged worker
    that only ``SIGKILL`` can stop),
  - ``oom``       — allocate without bound until the allocator fails
    (under ``RLIMIT_AS`` this raises ``MemoryError``; without a limit the
    kernel OOM killer delivers ``SIGKILL``),
  - ``abort``     — ``os.abort()``: immediate ``SIGABRT`` death, no
    cleanup, no protocol message — the closest Python gets to a native
    crash.

* ``SITE`` — where to fire: ``bdd.mk`` (every watchdog stride inside the
  kernel's node constructor), ``solver.stratum`` (once per stratum and
  per fixpoint iteration), ``probe`` (the worker's test job), or one of
  the serve seams — ``serve.accept`` (per accepted connection),
  ``serve.dispatch`` (per request dispatch), ``serve.db_load`` (inside
  :meth:`PointsToDatabase.load`), ``serve.swap`` (the hot-swap
  publication point, after the candidate validated but before it is
  published).
* ``#HITS`` — fire on the Nth arrival at the site (default 1), so a fault
  can be planted *mid*-solve, after checkpointable progress exists.
* ``%STRIDE`` — once due, fire only every STRIDE-th arrival instead of
  every arrival (default 1 = every arrival, the historical behavior).
  ``exception@serve.dispatch#10%100`` turns the dispatch seam into an
  *intermittent* fault — roughly 1% of requests fail — which is what the
  chaos harness uses to measure availability under partial failure
  rather than total outage.
* ``~MAXATTEMPT`` — only fire while the supervisor attempt index (the
  ``REPRO_SUPERVISOR_ATTEMPT`` environment variable, 0-based) is below
  this bound.  ``exception@solver.stratum#3~1`` crashes the first attempt
  mid-solve and lets the retry — resuming from the checkpoint the first
  attempt saved — run clean.  This is what makes crash *recovery*, not
  just crash *classification*, deterministically testable.

Fault points are armed at import time from ``REPRO_FAULT`` (each worker
child is a fresh process with its own environment) and cost a single
module-attribute truth test when disarmed.  Tests running in-process can
:func:`arm`/:func:`disarm` explicitly.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict, List, Optional

__all__ = [
    "FaultError",
    "FaultSpecError",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fire",
    "parse_spec",
]

ENV_VAR = "REPRO_FAULT"
ATTEMPT_VAR = "REPRO_SUPERVISOR_ATTEMPT"

KINDS = ("exception", "hang", "oom", "abort")

# Fast-path flag: hot code guards calls with ``if faults.armed:``.
armed = False
_SITES: Dict[str, "_Fault"] = {}


class FaultError(RuntimeError):
    """The clean-exception fault: an ordinary, catchable error."""


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULT`` specification."""


class _Fault:
    __slots__ = ("kind", "site", "after", "stride", "max_attempt", "hits")

    def __init__(
        self,
        kind: str,
        site: str,
        after: int,
        max_attempt: Optional[int],
        stride: int = 1,
    ):
        self.kind = kind
        self.site = site
        self.after = after
        self.stride = stride
        self.max_attempt = max_attempt
        self.hits = 0


def parse_spec(text: str) -> List[_Fault]:
    """Parse a ``REPRO_FAULT`` string into fault descriptors."""
    faults = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        max_attempt: Optional[int] = None
        if "~" in part:
            part, _, bound = part.rpartition("~")
            try:
                max_attempt = int(bound)
            except ValueError:
                raise FaultSpecError(f"bad attempt bound in fault spec {part!r}~{bound!r}")
        stride = 1
        if "%" in part:
            part, _, every = part.rpartition("%")
            try:
                stride = int(every)
            except ValueError:
                raise FaultSpecError(f"bad stride in fault spec {part!r}%{every!r}")
            if stride < 1:
                raise FaultSpecError(f"stride must be >= 1, got {stride}")
        after = 1
        if "#" in part:
            part, _, count = part.rpartition("#")
            try:
                after = int(count)
            except ValueError:
                raise FaultSpecError(f"bad hit count in fault spec {part!r}#{count!r}")
            if after < 1:
                raise FaultSpecError(f"hit count must be >= 1, got {after}")
        kind, sep, site = part.partition("@")
        if not sep or not site:
            raise FaultSpecError(
                f"fault spec {part!r} must look like "
                f"KIND@SITE[#HITS][%STRIDE][~MAXATTEMPT]"
            )
        if kind not in KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r} (one of {KINDS})")
        faults.append(_Fault(kind, site, after, max_attempt, stride))
    return faults


def arm(text: str, attempt: Optional[int] = None) -> None:
    """Install the faults described by ``text`` (replacing any armed set).

    ``attempt`` is the supervisor attempt index used to evaluate
    ``~MAXATTEMPT`` bounds; it defaults to ``REPRO_SUPERVISOR_ATTEMPT``.
    """
    global armed
    if attempt is None:
        try:
            attempt = int(os.environ.get(ATTEMPT_VAR, "0"))
        except ValueError:
            attempt = 0
    _SITES.clear()
    for fault in parse_spec(text):
        if fault.max_attempt is not None and attempt >= fault.max_attempt:
            continue
        _SITES[fault.site] = fault
    armed = bool(_SITES)


def arm_from_env() -> None:
    """Arm from ``REPRO_FAULT`` if set (called once at import)."""
    text = os.environ.get(ENV_VAR)
    if text:
        arm(text)


def disarm() -> None:
    global armed
    _SITES.clear()
    armed = False


def fire(site: str) -> None:
    """Trigger the fault armed at ``site``, if its hit count is due."""
    fault = _SITES.get(site)
    if fault is None:
        return
    fault.hits += 1
    if fault.hits < fault.after:
        return
    if (fault.hits - fault.after) % fault.stride != 0:
        return
    _trigger(fault)


def _trigger(fault: _Fault) -> None:
    if fault.kind == "exception":
        raise FaultError(
            f"injected exception at {fault.site} (hit {fault.hits})"
        )
    if fault.kind == "hang":
        # A genuinely wedged worker: SIGTERM is ignored, so only the
        # supervisor's SIGKILL escalation can end this process.
        try:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
        while True:
            time.sleep(3600)
    if fault.kind == "oom":
        # Allocate until the allocator gives up.  Under RLIMIT_AS this
        # raises MemoryError within a few iterations; unconstrained, the
        # kernel's OOM killer eventually answers with SIGKILL.
        hog = []
        try:
            while True:
                hog.append(bytearray(16 << 20))
        except MemoryError:
            # Release the hoard before propagating so the worker can
            # still allocate its (small) structured error message.
            del hog[:]
            raise
    if fault.kind == "abort":  # pragma: no cover - kills the process
        os.abort()
    raise AssertionError(f"unreachable fault kind {fault.kind!r}")


arm_from_env()
