"""Process-isolated supervised execution: hard limits the cooperative
runtime cannot enforce.

PR 1's :class:`~repro.runtime.budget.ResourceBudget` is *cooperative* —
checked at the BDD ``mk`` watchdog stride and at stratum boundaries.  It
cannot interrupt a wedged native call, a runaway C-level allocation, or a
process the kernel has already decided to kill.  The supervisor closes
that gap by running the job in a sandboxed **child process**:

* **hard wall-clock deadline** — the parent waits with a timeout and
  escalates ``SIGTERM`` → (after a grace period) ``SIGKILL``; a worker
  that ignores ``SIGTERM`` is still dead within ``grace`` seconds;
* **hard memory cap** — the child applies ``resource.setrlimit(RLIMIT_AS)``
  before running the job, so a runaway allocation fails *inside the
  child* (``MemoryError`` → a structured ``oom`` report) instead of
  taking the parent down;
* **crash classification** — from the exit status and the JSON protocol:
  a missing result plus ``SIGKILL`` is an OOM-kill, ``SIGABRT``/``SIGSEGV``
  is a native crash, a supervisor kill is a hang, a protocol error
  message is an exception/budget/oom, anything else is a crash;
* **retry with exponential backoff + jitter** — each retry sets
  ``REPRO_SUPERVISOR_ATTEMPT`` so fault injection can be attempt-scoped,
  and jobs that checkpoint (``checkpoint_dir``) resume from the last
  checkpoint instead of starting over;
* **degradation step-down** — when retries for a job are exhausted the
  supervisor moves to the caller-supplied fallback jobs (typically the
  ladder of :data:`repro.runtime.degrade.LADDER` modes), so
  :class:`SupervisedResult` always says *how* the answer was obtained.

The clock and RNG are injectable, so the whole retry/backoff schedule is
testable without a single real sleep.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .errors import WorkerCrashed, WorkerKilled
from .faults import ATTEMPT_VAR

__all__ = [
    "AttemptRecord",
    "Supervisor",
    "SupervisorConfig",
    "SupervisedResult",
    "classify_exit",
    "ladder_fallbacks",
]

CRASH_DIR_VAR = "REPRO_CRASH_DIR"

# Exit statuses that still carried a well-formed protocol message are
# "soft" failures (the job failed, the worker did not).
_STDERR_TAIL = 4096


@dataclass
class SupervisorConfig:
    """Knobs for one supervised job (all attempts and fallbacks).

    ``timeout`` is the hard per-attempt wall-clock deadline; ``grace`` is
    how long a SIGTERM'd worker gets to die before SIGKILL.  ``retries``
    is the number of *additional* attempts per job step (so a job runs at
    most ``retries + 1`` times before the next fallback).  Backoff before
    retry ``n`` (1-based) is ``min(backoff_max, backoff_base *
    backoff_factor**(n-1))`` stretched by up to ``jitter`` fraction.
    """

    timeout: Optional[float] = None
    memory_limit_mb: Optional[int] = None
    retries: int = 2
    grace: float = 2.0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.1
    checkpoint_dir: Optional[str] = None
    crash_dir: Optional[str] = None
    env: Dict[str, str] = field(default_factory=dict)


@dataclass
class AttemptRecord:
    """One child launch: what ran, how it ended, what it cost."""

    mode: str
    attempt: int                      # 0-based, across all steps
    classification: str               # ok | hang | oom | oom-kill | ...
    seconds: float = 0.0
    exit_code: Optional[int] = None   # negative = died on that signal
    term_signal: Optional[int] = None
    escalated: bool = False           # SIGTERM was not enough
    message: str = ""
    backoff: Optional[float] = None   # sleep scheduled after this attempt
    stderr_tail: str = ""
    result: Any = None                # job value when classification == "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "attempt": self.attempt,
            "classification": self.classification,
            "seconds": round(self.seconds, 6),
            "exit_code": self.exit_code,
            "term_signal": self.term_signal,
            "escalated": self.escalated,
            "message": self.message,
            "backoff": self.backoff,
            "stderr_tail": self.stderr_tail,
        }


@dataclass
class SupervisedResult:
    """The supervisor's answer: the value plus *how* it was obtained."""

    ok: bool
    value: Any
    mode: str                         # mode of the job step that answered
    degraded: bool                    # a fallback step (or in-child ladder)
    attempts: List[AttemptRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def retries(self) -> int:
        """Attempts beyond the first, across all steps."""
        return max(0, len(self.attempts) - 1)

    @property
    def classification(self) -> str:
        return self.attempts[-1].classification if self.attempts else "ok"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "value": self.value,
            "mode": self.mode,
            "degraded": self.degraded,
            "retries": self.retries,
            "wall_seconds": round(self.wall_seconds, 6),
            "attempts": [a.to_dict() for a in self.attempts],
        }


def classify_exit(
    exit_code: Optional[int], term_signal: Optional[int]
) -> "tuple[str, str]":
    """``(classification, message)`` for a child that died without a
    protocol message — shared by the job supervisor and the serve
    supervisor, so both report the same taxonomy."""
    if term_signal == signal.SIGKILL:
        return "oom-kill", "worker killed by SIGKILL (kernel OOM killer?)"
    if term_signal == signal.SIGABRT:
        return "abort", "worker died on SIGABRT"
    if term_signal == signal.SIGSEGV:
        return "segfault", "worker died on SIGSEGV"
    if term_signal is not None:
        name = signal.Signals(term_signal).name
        return f"signal:{name}", f"worker died on {name}"
    return "crash", f"worker exited {exit_code} without a protocol message"


def ladder_fallbacks(job: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Degradation fallbacks for an analysis job: the same job with the
    mode stepped down the ladder (``reorder`` is in-process-only and is
    skipped — a fresh child cannot sift a dead child's arena)."""
    from .degrade import LADDER

    mode = job.get("mode", "full")
    steps = [m for m in LADDER if m != "reorder"]
    if mode not in steps:
        return []
    out = []
    for nxt in steps[steps.index(mode) + 1:]:
        step = dict(job)
        step["mode"] = nxt
        out.append(step)
    return out


class Supervisor:
    """Run JSON jobs in supervised worker children.

    Parameters
    ----------
    config:
        The :class:`SupervisorConfig`.
    sleep, monotonic, rng:
        Injection points for the backoff clock (tests pass a recording
        ``sleep`` and a seeded ``rng`` — no real sleeping in CI).
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        self._sleep = sleep
        self._monotonic = monotonic
        self._rng = rng if rng is not None else random.Random()
        # itertools.count is effectively atomic under the GIL, so pool
        # threads sharing one supervisor get unique crash-report names.
        self._crash_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # One attempt
    # ------------------------------------------------------------------

    def _child_env(self, job: Dict[str, Any], attempt: int) -> Dict[str, str]:
        env = dict(os.environ)
        env.update(self.config.env)
        env.update(job.get("env") or {})
        env[ATTEMPT_VAR] = str(attempt)
        return env

    def run_attempt(self, job: Dict[str, Any], attempt: int = 0) -> AttemptRecord:
        """Launch one worker child for ``job`` and classify how it ended.

        Never raises for child failures — the classification travels in
        the returned :class:`AttemptRecord` (``classification == "ok"``
        means ``record.result`` holds the job's value).
        """
        cfg = self.config
        payload = dict(job)
        payload.pop("env", None)
        if cfg.memory_limit_mb is not None:
            payload.setdefault("memory_limit_mb", cfg.memory_limit_mb)
        if cfg.checkpoint_dir is not None:
            payload.setdefault("checkpoint_dir", cfg.checkpoint_dir)
        record = AttemptRecord(
            mode=payload.get("mode", "full"), attempt=attempt,
            classification="crash",
        )
        start = self._monotonic()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=self._child_env(job, attempt),
        )
        stdin_data = (json.dumps(payload) + "\n").encode()
        killed = False
        try:
            out, err = proc.communicate(stdin_data, timeout=cfg.timeout)
        except subprocess.TimeoutExpired:
            killed = True
            proc.terminate()  # SIGTERM: a cooperative worker dies here
            try:
                out, err = proc.communicate(timeout=cfg.grace)
            except subprocess.TimeoutExpired:
                record.escalated = True
                proc.kill()  # SIGKILL: nothing survives this
                out, err = proc.communicate()
        except BaseException:
            proc.kill()
            proc.communicate()
            raise
        record.seconds = self._monotonic() - start
        record.exit_code = proc.returncode
        if proc.returncode is not None and proc.returncode < 0:
            record.term_signal = -proc.returncode
        record.stderr_tail = err[-_STDERR_TAIL:].decode("utf-8", "replace")

        message = _last_protocol_line(out)
        if killed:
            record.classification = "hang"
            record.message = (
                f"deadline of {cfg.timeout}s passed; "
                + ("SIGTERM ignored, killed" if record.escalated else "terminated")
            )
        elif message is not None and message.get("ok") is True:
            record.classification = "ok"
            record.result = message.get("result")
        elif message is not None:
            record.classification = str(message.get("kind", "exception"))
            record.message = str(message.get("message", ""))
        else:
            record.classification, record.message = classify_exit(
                proc.returncode, record.term_signal
            )
        return record

    # ------------------------------------------------------------------
    # The retry / step-down loop
    # ------------------------------------------------------------------

    def _backoff(self, retry: int) -> float:
        cfg = self.config
        delay = min(
            cfg.backoff_max, cfg.backoff_base * cfg.backoff_factor ** (retry - 1)
        )
        return delay * (1.0 + cfg.jitter * self._rng.random())

    def run(
        self,
        job: Dict[str, Any],
        fallbacks: Sequence[Dict[str, Any]] = (),
    ) -> SupervisedResult:
        """Run ``job``, retrying and stepping down ``fallbacks``.

        Returns a :class:`SupervisedResult` on any success; raises
        :class:`WorkerKilled` (final failure was a supervisor kill) or
        :class:`WorkerCrashed` when every attempt of every step failed.
        The exception carries the full attempt transcript.
        """
        cfg = self.config
        attempts: List[AttemptRecord] = []
        start = self._monotonic()
        steps = [job, *fallbacks]
        attempt_index = 0
        for step_index, step in enumerate(steps):
            for retry in range(cfg.retries + 1):
                record = self.run_attempt(step, attempt=attempt_index)
                attempts.append(record)
                attempt_index += 1
                if record.classification == "ok":
                    value = record.result
                    child_degraded = bool(
                        isinstance(value, dict) and value.get("degraded")
                    )
                    return SupervisedResult(
                        ok=True,
                        value=value,
                        mode=step.get("mode", "full"),
                        degraded=step_index > 0 or child_degraded,
                        attempts=attempts,
                        wall_seconds=self._monotonic() - start,
                    )
                self._report_crash(step, record)
                more = retry < cfg.retries or step_index < len(steps) - 1
                if more and retry < cfg.retries:
                    record.backoff = self._backoff(retry + 1)
                    self._sleep(record.backoff)
        last = attempts[-1]
        cls = WorkerKilled if last.classification == "hang" else WorkerCrashed
        raise cls(
            f"supervised job failed after {len(attempts)} attempt(s) over "
            f"{len(steps)} step(s): {last.classification}"
            + (f" ({last.message})" if last.message else ""),
            classification=last.classification,
            exit_code=last.exit_code,
            term_signal=last.term_signal,
            attempts=[a.to_dict() for a in attempts],
        )

    # ------------------------------------------------------------------
    # Crash reports
    # ------------------------------------------------------------------

    def _report_crash(self, job: Dict[str, Any], record: AttemptRecord) -> None:
        """Write a per-attempt crash report (JSON) for post-mortems/CI."""
        crash_dir = self.config.crash_dir or os.environ.get(CRASH_DIR_VAR)
        if not crash_dir:
            return
        seq = next(self._crash_seq)
        path = pathlib.Path(crash_dir) / f"crash-{os.getpid()}-{seq:03d}.json"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            report = {
                "job": {k: v for k, v in job.items() if k != "env"},
                "attempt": record.to_dict(),
            }
            path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - diagnostics must never fail a run
            pass


def _last_protocol_line(out: bytes) -> Optional[Dict[str, Any]]:
    """The last well-formed JSON object on the worker's stdout, if any.

    The protocol is one JSON object per line; the *last* one wins so a
    job that prints to stdout before the protocol message cannot confuse
    the parent (the worker redirects job prints to stderr anyway —
    defense in depth).
    """
    for raw in reversed(out.splitlines()):
        raw = raw.strip()
        if not raw.startswith(b"{"):
            continue
        try:
            message = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(message, dict) and "ok" in message:
            return message
    return None
