"""Resource-governed solver runtime.

The paper's system can blow up under a bad variable order or an unlucky
context numbering; Whaley & Lam report runs that exhaust memory or wall
clock.  This package makes such blowups *recoverable* instead of fatal:

* :mod:`repro.runtime.errors` — the structured :class:`ReproError`
  exception hierarchy, every member carrying partial solve statistics and
  the last-completed stratum,
* :mod:`repro.runtime.budget` — :class:`ResourceBudget` (wall-clock
  deadline, BDD node-count budget, fixpoint-iteration cap) and the
  cooperative :class:`Watchdog` checked inside the BDD kernel's ``mk``
  hot path and the solver's stratum loop,
* :mod:`repro.runtime.checkpoint` — atomic snapshot/restore of *all*
  solver relations plus domain metadata (checkpoint format v2), with
  corruption detection on load and order-independent restore,
* :mod:`repro.runtime.degrade` — the machine-readable
  :class:`DegradationReport` describing which rung of the degradation
  ladder (full → reordered → k-truncated → context-insensitive) produced
  the final answer.
"""

from .budget import ResourceBudget, Watchdog
from .checkpoint import (
    CheckpointMeta,
    load_checkpoint,
    save_checkpoint,
)
from .degrade import Attempt, DegradationReport
from .errors import (
    CheckpointError,
    InvalidInputError,
    IterationLimitExceeded,
    NodeBudgetExceeded,
    ReproError,
    SolverTimeout,
)

__all__ = [
    "Attempt",
    "CheckpointError",
    "CheckpointMeta",
    "DegradationReport",
    "InvalidInputError",
    "IterationLimitExceeded",
    "NodeBudgetExceeded",
    "ReproError",
    "ResourceBudget",
    "SolverTimeout",
    "Watchdog",
    "load_checkpoint",
    "save_checkpoint",
]
