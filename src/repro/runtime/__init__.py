"""Resource-governed solver runtime.

The paper's system can blow up under a bad variable order or an unlucky
context numbering; Whaley & Lam report runs that exhaust memory or wall
clock.  This package makes such blowups *recoverable* instead of fatal:

* :mod:`repro.runtime.errors` — the structured :class:`ReproError`
  exception hierarchy, every member carrying partial solve statistics and
  the last-completed stratum,
* :mod:`repro.runtime.budget` — :class:`ResourceBudget` (wall-clock
  deadline, BDD node-count budget, fixpoint-iteration cap) and the
  cooperative :class:`Watchdog` checked inside the BDD kernel's ``mk``
  hot path and the solver's stratum loop,
* :mod:`repro.runtime.checkpoint` — atomic snapshot/restore of *all*
  solver relations plus domain metadata (checkpoint format v2), with
  corruption detection on load and order-independent restore,
* :mod:`repro.runtime.degrade` — the machine-readable
  :class:`DegradationReport` describing which rung of the degradation
  ladder (full → reordered → k-truncated → context-insensitive) produced
  the final answer,
* :mod:`repro.runtime.supervisor` — *hard* enforcement: run a job in a
  sandboxed child process with a wall-clock deadline (SIGTERM → SIGKILL
  escalation), an ``RLIMIT_AS`` memory cap, crash classification, and
  retry-with-backoff that resumes from checkpoints and steps down the
  degradation ladder,
* :mod:`repro.runtime.worker` — the worker child's JSON job protocol and
  the bounded parallel :class:`WorkerPool` built on the supervisor,
* :mod:`repro.runtime.faults` — deterministic, env-var-armed fault
  injection (hang / OOM / abort / exception) at the kernel and solver
  hot paths, so every failure mode above is testable.

The checkpoint API is imported lazily (PEP 562): it depends on the BDD
layer, which itself uses :mod:`repro.runtime.faults`, and an eager import
here would close that cycle.
"""

from .budget import ResourceBudget, Watchdog
from .degrade import LADDER, Attempt, DegradationReport
from .errors import (
    CheckpointError,
    InvalidInputError,
    IterationLimitExceeded,
    NodeBudgetExceeded,
    ReproError,
    SolverTimeout,
    WorkerCrashed,
    WorkerKilled,
)

__all__ = [
    "Attempt",
    "CheckpointError",
    "CheckpointMeta",
    "DegradationReport",
    "InvalidInputError",
    "IterationLimitExceeded",
    "LADDER",
    "NodeBudgetExceeded",
    "ReproError",
    "ResourceBudget",
    "SolverTimeout",
    "Supervisor",
    "SupervisorConfig",
    "SupervisedResult",
    "Watchdog",
    "WorkerCrashed",
    "WorkerKilled",
    "classify_exit",
    "WorkerPool",
    "atomic_write_text",
    "checkpoint_lines",
    "load_checkpoint",
    "load_checkpoint_lines",
    "save_checkpoint",
]

_LAZY = {
    "CheckpointMeta": "checkpoint",
    "atomic_write_text": "atomic",
    "checkpoint_lines": "checkpoint",
    "load_checkpoint": "checkpoint",
    "load_checkpoint_lines": "checkpoint",
    "save_checkpoint": "checkpoint",
    "Supervisor": "supervisor",
    "SupervisorConfig": "supervisor",
    "SupervisedResult": "supervisor",
    "classify_exit": "supervisor",
    "WorkerPool": "worker",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
