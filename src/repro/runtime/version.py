"""Artifact version stamping shared by checkpoints and ``.ptdb`` files.

Every persistent artifact the tool writes carries two stamps in its meta
record::

    "format_version": <int>          # schema revision of this artifact
    "tool": {"name": "repro", "version": "<semver>"}

``format_version`` is checked by each reader against the revision it
understands.  The tool stamp is checked here: artifacts written by a
different *major* version are rejected up front with a clear
:class:`InvalidInputError` instead of failing later on a schema drift
the checksum cannot see.  Artifacts that predate stamping (no ``tool``
key) load unchecked, for backward compatibility.
"""

from __future__ import annotations

from typing import Any, Dict

from .errors import InvalidInputError

__all__ = ["check_tool_version", "tool_meta"]


def tool_meta() -> Dict[str, str]:
    """The ``tool`` stamp written into artifact headers."""
    from .. import __version__

    return {"name": "repro", "version": __version__}


def check_tool_version(meta: Dict[str, Any], path: str, what: str) -> None:
    """Reject an artifact written by an incompatible tool major version."""
    from .. import __version__

    tool = meta.get("tool")
    if not isinstance(tool, dict) or "version" not in tool:
        return
    theirs = str(tool["version"])
    if theirs.split(".")[0] != __version__.split(".")[0]:
        raise InvalidInputError(
            f"{path}: {what} written by {tool.get('name', 'repro')} "
            f"{theirs}, this is repro {__version__} "
            f"(major versions must match; re-create the {what})"
        )
