"""Durable atomic file publication.

Checkpoints, ``.ptdb`` databases, and fixpoint bundles all follow the
same discipline: write to a temp file in the target directory, fsync the
data, ``os.replace`` into place, then fsync the directory so the rename
itself is on disk.  Readers never observe a half-written file, and a
crashed writer's retry resumes from a complete previous version.
"""

from __future__ import annotations

import os
import pathlib
from typing import Union

__all__ = ["atomic_write_text"]

PathLike = Union[str, pathlib.Path]


def atomic_write_text(path: PathLike, text: str) -> str:
    """Atomically and durably write ``text`` to ``path``; returns the path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    dir_fd = os.open(target.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return str(target)
