"""Server-side metrics: per-query-kind counters and latency histograms.

One :class:`Metrics` instance is shared by a server and its query engine.
Everything is guarded by a single lock — the hot-path cost is two dict
updates and a ring-buffer store, far below the socket round-trip it
measures.  Latencies are kept in a bounded per-kind ring buffer (the last
``reservoir`` observations), so a long-lived server's memory stays flat
while p50/p95/p99 still describe recent traffic.

The ``stats`` protocol verb returns :meth:`Metrics.snapshot`; the server
dumps :meth:`Metrics.render` on shutdown.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["Metrics", "percentile"]

_RESERVOIR = 4096


def percentile(sorted_samples: List[float], q: float) -> float:
    """The q-th percentile (0..100) of an already sorted, non-empty list
    (nearest-rank method)."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1,
                      int(round(q / 100.0 * (len(sorted_samples) - 1)))))
    return sorted_samples[rank]


class _KindStats:
    """Counters and a latency ring buffer for one query kind."""

    __slots__ = (
        "requests", "errors", "cache_hits", "cache_misses", "computes",
        "total_seconds", "samples", "next_slot",
        "demand_hits", "demand_misses", "demand_budget_exceeded",
        "demand_samples", "demand_next_slot",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.computes = 0
        self.total_seconds = 0.0
        self.samples: List[float] = []
        self.next_slot = 0
        # Demand evaluation outcomes: hits answered goal-directedly,
        # misses that fell back to ``demand-unavailable``, and attempts
        # that blew their per-query budget.
        self.demand_hits = 0
        self.demand_misses = 0
        self.demand_budget_exceeded = 0
        self.demand_samples: List[float] = []
        self.demand_next_slot = 0

    def observe(self, seconds: float) -> None:
        self.total_seconds += seconds
        if len(self.samples) < _RESERVOIR:
            self.samples.append(seconds)
        else:
            self.samples[self.next_slot] = seconds
            self.next_slot = (self.next_slot + 1) % _RESERVOIR

    def observe_demand(self, seconds: float, outcome: str) -> None:
        if outcome == "hit":
            self.demand_hits += 1
        elif outcome == "budget":
            self.demand_budget_exceeded += 1
        else:
            self.demand_misses += 1
        if len(self.demand_samples) < _RESERVOIR:
            self.demand_samples.append(seconds)
        else:
            self.demand_samples[self.demand_next_slot] = seconds
            self.demand_next_slot = (self.demand_next_slot + 1) % _RESERVOIR

    def snapshot(self) -> Dict[str, Any]:
        ordered = sorted(self.samples)
        out = {
            "requests": self.requests,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "computes": self.computes,
            "total_seconds": round(self.total_seconds, 6),
            "latency_s": {
                "count": len(ordered),
                "p50": round(percentile(ordered, 50), 6),
                "p95": round(percentile(ordered, 95), 6),
                "p99": round(percentile(ordered, 99), 6),
            },
        }
        if self.demand_samples or self.demand_misses:
            demand_ordered = sorted(self.demand_samples)
            out["demand"] = {
                "hits": self.demand_hits,
                "misses": self.demand_misses,
                "budget_exceeded": self.demand_budget_exceeded,
                "latency_s": {
                    "count": len(demand_ordered),
                    "p50": round(percentile(demand_ordered, 50), 6),
                    "p95": round(percentile(demand_ordered, 95), 6),
                    "p99": round(percentile(demand_ordered, 99), 6),
                },
            }
        return out


class Metrics:
    """Thread-safe counters for the serve subsystem.

    Tracked per query kind: request count, error count, cache hit/miss,
    actual computations (cache misses that ran the evaluator — coalesced
    waiters count as hits), and a latency histogram.  Globally: error
    counts per protocol error code, connection totals, and an in-flight
    request gauge with its high-water mark.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kinds: Dict[str, _KindStats] = {}
        self._errors: Dict[str, int] = {}
        self.connections_accepted = 0
        self.connections_rejected = 0
        self.requests_total = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.reloads_ok = 0
        self.reloads_failed = 0
        self.overload_rejections = 0
        self.deadline_rejections = 0

    def _kind(self, kind: str) -> _KindStats:
        stats = self._kinds.get(kind)
        if stats is None:
            stats = self._kinds[kind] = _KindStats()
        return stats

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def connection_opened(self) -> None:
        with self._lock:
            self.connections_accepted += 1

    def connection_rejected(self) -> None:
        with self._lock:
            self.connections_rejected += 1

    def request_started(self) -> None:
        with self._lock:
            self.requests_total += 1
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def request_finished(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def observe_query(
        self,
        kind: str,
        seconds: float,
        *,
        cache_hit: bool,
        computed: bool,
        error: bool = False,
    ) -> None:
        with self._lock:
            stats = self._kind(kind)
            stats.requests += 1
            if error:
                stats.errors += 1
            elif cache_hit:
                stats.cache_hits += 1
            else:
                stats.cache_misses += 1
            if computed:
                stats.computes += 1
            stats.observe(seconds)

    def observe_demand(self, kind: str, seconds: float, outcome: str) -> None:
        """One demand evaluation for ``kind``: ``outcome`` is ``"hit"``
        (answered goal-directedly), ``"miss"`` (demand unavailable), or
        ``"budget"`` (the attempt blew its per-query budget)."""
        with self._lock:
            self._kind(kind).observe_demand(seconds, outcome)

    def wire_hit(self, kind: str, seconds: float) -> None:
        """A wire-cache hit: one lock acquisition for the whole hot path
        (request count + kind counters + latency sample).  The in-flight
        gauge is skipped — the request is over before it could read 1."""
        with self._lock:
            self.requests_total += 1
            stats = self._kind(kind)
            stats.requests += 1
            stats.cache_hits += 1
            stats.observe(seconds)

    def protocol_error(self, code: str) -> None:
        with self._lock:
            self._errors[code] = self._errors.get(code, 0) + 1

    def reload(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self.reloads_ok += 1
            else:
                self.reloads_failed += 1

    def admission_rejected(self, code: str) -> None:
        """An ``overloaded`` or ``deadline-exceeded`` rejection: these are
        the *correct* behavior under pressure, so they are counted apart
        from protocol errors (availability math excludes them)."""
        with self._lock:
            if code == "overloaded":
                self.overload_rejections += 1
            else:
                self.deadline_rejections += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def cache_hit_rate(self) -> float:
        with self._lock:
            hits = sum(s.cache_hits for s in self._kinds.values())
            misses = sum(s.cache_misses for s in self._kinds.values())
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            kinds = {name: s.snapshot() for name, s in self._kinds.items()}
            errors = dict(self._errors)
            out = {
                "queries": kinds,
                "protocol_errors": errors,
                "connections": {
                    "accepted": self.connections_accepted,
                    "rejected": self.connections_rejected,
                },
                "requests_total": self.requests_total,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "reloads": {
                    "ok": self.reloads_ok,
                    "failed": self.reloads_failed,
                },
                "admission": {
                    "overloaded": self.overload_rejections,
                    "deadline": self.deadline_rejections,
                },
            }
        hits = sum(k["cache_hits"] for k in kinds.values())
        misses = sum(k["cache_misses"] for k in kinds.values())
        out["cache_hit_rate"] = round(hits / (hits + misses), 4) if hits + misses else 0.0
        return out

    def render(self) -> str:
        """Human-readable dump (written to stderr on server shutdown)."""
        snap = self.snapshot()
        lines = [
            f"requests {snap['requests_total']}  "
            f"in-flight peak {snap['peak_in_flight']}  "
            f"cache hit rate {snap['cache_hit_rate']:.1%}  "
            f"connections {snap['connections']['accepted']} accepted / "
            f"{snap['connections']['rejected']} rejected"
        ]
        for kind in sorted(snap["queries"]):
            k = snap["queries"][kind]
            lat = k["latency_s"]
            lines.append(
                f"  {kind:<12} n={k['requests']:<6} hit={k['cache_hits']:<6} "
                f"miss={k['cache_misses']:<5} compute={k['computes']:<5} "
                f"err={k['errors']:<4} "
                f"p50={lat['p50'] * 1e3:.2f}ms p95={lat['p95'] * 1e3:.2f}ms "
                f"p99={lat['p99'] * 1e3:.2f}ms"
            )
            demand = k.get("demand")
            if demand:
                dlat = demand["latency_s"]
                lines.append(
                    f"    demand hit={demand['hits']:<5} "
                    f"miss={demand['misses']:<5} "
                    f"budget={demand['budget_exceeded']:<5} "
                    f"p50={dlat['p50'] * 1e3:.2f}ms "
                    f"p95={dlat['p95'] * 1e3:.2f}ms"
                )
        if snap["protocol_errors"]:
            pairs = ", ".join(
                f"{code}={n}" for code, n in sorted(snap["protocol_errors"].items())
            )
            lines.append(f"  protocol errors: {pairs}")
        return "\n".join(lines)
