"""The persistent points-to database (``.ptdb``): solve once, query many.

A ``.ptdb`` file packages everything a demand-query engine needs to
answer Section 5 style questions *without re-running the solver*:

* the solved BDD relations of the context-sensitive analysis — ``vPC``,
  its context-projected ``vP``, ``hP``, and (unless disabled) the
  ``mod``/``ref`` relations of the mod-ref query fragment — serialized on
  the hardened :mod:`repro.bdd.serialize` path (canonical node ids,
  line-numbered corruption diagnostics),
* small solved relations as plain tuple lists (``IE`` invocation edges,
  the escape analysis verdicts) — cheaper as JSON than as BDD payloads,
* the domain name maps, variable-representative table, and site-to-method
  index needed to translate between names and ordinals,
* provenance: format and tool versions, a program digest, the analysis
  configuration, and solver statistics.

Layout (same envelope as the v2 checkpoint format)::

    # repro-ptdb 1
    meta {"format_version": 1, "tool": {...}, "relations": [...], ...}
    sha256 <hex digest of the payload section>
    payload <number of payload lines>
    # repro-bdd 1
    ...                    (one root per entry in meta["relations"])

Loading is O(file): the payload digest is verified, a fresh BDD manager
is built with the recorded variable count, the physical domains are
rebuilt from their recorded level blocks, and the payload is replayed
through the manager's unique table.  Version mismatches (format or tool
major version) are rejected with :class:`InvalidInputError` *before* any
node is rebuilt.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..bdd import BDDError, Domain, create_kernel
from ..bdd.serialize import dump_bdd_lines, parse_bdd_lines
from ..datalog.relation import Attribute, Relation
from ..ir.facts import Facts, extract_facts
from ..runtime import InvalidInputError, ResourceBudget, faults
from ..runtime.atomic import atomic_write_text
from ..runtime.version import check_tool_version, tool_meta

__all__ = [
    "FORMAT_VERSION",
    "CompileState",
    "PointsToDatabase",
    "compile_database",
    "compile_database_with_state",
    "facts_digest",
    "package_database",
]

PathLike = Union[str, pathlib.Path]

FORMAT_VERSION = 1
_MAGIC = "# repro-ptdb 1"

# Relations lifted out of the context-sensitive solver into the payload,
# in file order.  ``vP`` is materialized at compile time (the context
# projection of ``vPC``) so point lookups need no quantification.
_BDD_RELATIONS = ("vPC", "vP", "hP", "mod", "ref")


def facts_digest(facts: Facts) -> str:
    """Canonical digest of a program's extracted facts.

    Stable across processes for the same program (domain maps and input
    relations fully determine the analysis input), usable as a program
    identity even when no source text exists (generated corpus entries).
    """
    payload = {
        "maps": facts.maps,
        "relations": {
            name: sorted(facts.relations[name])
            for name in sorted(facts.relations)
        },
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class PointsToDatabase:
    """An in-memory points-to database, loadable from / savable to ``.ptdb``.

    Attributes
    ----------
    manager:
        The BDD manager owning the loaded relations.
    relations:
        Name -> :class:`~repro.datalog.relation.Relation` for the BDD
        payload relations (``vPC``, ``vP``, ``hP``, and ``mod``/``ref``
        when compiled with mod-ref).
    maps:
        Domain name lists (``V``, ``H``, ``M``, ``I``, ``F``, ``T``, ...).
    tuples:
        Small relations stored as plain tuple lists (``IE``).
    escape:
        The escape analysis verdicts: ``escaped``/``captured`` heap
        ordinals and ``sync_needed``/``sync_unneeded`` variable ordinals.
    meta:
        The full parsed (or composed) meta record.
    db_id:
        Content digest identifying this database (cache keys, provenance).
    """

    def __init__(
        self,
        manager: BDD,
        relations: Dict[str, Relation],
        maps: Dict[str, List[str]],
        meta: Dict[str, Any],
        db_id: str,
        path: Optional[str] = None,
    ) -> None:
        self.manager = manager
        self.relations = relations
        self.maps = maps
        self.meta = meta
        self.db_id = db_id
        self.path = path
        self.tuples: Dict[str, List[tuple]] = {
            name: [tuple(t) for t in rows]
            for name, rows in meta.get("tuples", {}).items()
        }
        self.escape: Dict[str, List[int]] = {
            key: list(values) for key, values in meta.get("escape", {}).items()
        }
        self.site_method: Dict[int, int] = {
            int(site): int(method)
            for site, method in meta.get("site_method", {}).items()
        }
        self.var_reps: Dict[str, int] = {
            spec: int(v) for spec, v in meta.get("var_reps", {}).items()
        }
        self._indexes: Dict[str, Dict[str, int]] = {}
        self._uncovered_vars: Optional[Set[int]] = None

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def relation(self, name: str) -> Relation:
        rel = self.relations.get(name)
        if rel is None:
            raise KeyError(
                f"database has no relation {name!r} "
                f"(has {sorted(self.relations)})"
            )
        return rel

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    def _index(self, domain: str) -> Dict[str, int]:
        idx = self._indexes.get(domain)
        if idx is None:
            idx = self._indexes[domain] = {
                name: i for i, name in enumerate(self.maps.get(domain, ()))
            }
        return idx

    def id_of(self, domain: str, name: str) -> int:
        ordinal = self._index(domain).get(name)
        if ordinal is None:
            raise KeyError(f"no element {name!r} in domain {domain}")
        return ordinal

    def name_of(self, domain: str, ordinal: int) -> str:
        return self.maps[domain][ordinal]

    def var_id(self, spec: str) -> int:
        """Ordinal of ``Method.name:var``, following copy factoring."""
        ordinal = self.var_reps.get(spec)
        if ordinal is None:
            raise KeyError(f"no variable {spec!r} in the database")
        return ordinal

    def method_id(self, qualified: str) -> int:
        try:
            return self.id_of("M", qualified)
        except KeyError:
            raise KeyError(f"no method {qualified!r} in the database")

    @property
    def budget_class(self) -> Optional[str]:
        """The ``--budget-class`` method pattern this database was
        restricted to at compile time, or ``None`` for a full database."""
        return self.meta.get("config", {}).get("budget_class")

    def covers_variable(self, ordinal: int) -> bool:
        """Whether ``vP``/``vPC`` were materialized for this variable.

        Always true for an unrestricted database.  For a budget-class
        database the answer comes from the embedded ``mV`` facts: a
        lookup for an uncovered variable must be routed to demand
        evaluation, never answered by the (falsely empty) restriction.
        """
        pattern = self.budget_class
        if pattern is None:
            return True
        if self._uncovered_vars is None:
            mv = self.meta.get("facts", {}).get("relations", {}).get("mV", ())
            self._uncovered_vars = _uncovered_variables(
                self.maps.get("M", ()), mv, pattern
            )
        return ordinal not in self._uncovered_vars

    def summary(self) -> Dict[str, Any]:
        """One-screen description (CLI ``compile-db`` output, ``info`` verb)."""
        return {
            "db_id": self.db_id,
            "format_version": self.meta.get("format_version"),
            "tool": self.meta.get("tool"),
            "program": self.meta.get("program"),
            "relations": {
                entry["name"]: entry.get("tuples")
                for entry in self.meta.get("relations", ())
            },
            "domains": {dom: len(names) for dom, names in self.maps.items()},
            "paths": self.meta.get("paths"),
            "stats": self.meta.get("stats"),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: PathLike) -> int:
        """Atomically write the database; returns payload node count.

        Same durability discipline as the checkpoint writer: temp file in
        the target directory, fsync, rename, directory fsync.
        """
        schema = self.meta["relations"]
        roots = [self.relations[entry["name"]].node for entry in schema]
        payload, node_count = dump_bdd_lines(self.manager, roots)
        payload_text = "\n".join(payload)
        digest = hashlib.sha256(payload_text.encode()).hexdigest()
        lines = [
            _MAGIC,
            "meta " + json.dumps(self.meta, sort_keys=True, separators=(",", ":")),
            f"sha256 {digest}",
            f"payload {len(payload)}",
            payload_text,
        ]
        self.path = atomic_write_text(path, "\n".join(lines) + "\n")
        return node_count

    @classmethod
    def load(
        cls, path: PathLike, backend: Optional[str] = None
    ) -> "PointsToDatabase":
        """Load a ``.ptdb`` file in O(file) — no solving, no program parse.

        ``backend`` selects the BDD kernel for the in-memory arena (the
        file format is backend-agnostic, so any backend can load any
        database and the resulting ``db_id`` is identical).  Raises
        :class:`InvalidInputError` for anything wrong with the file: bad
        magic, version mismatch, checksum failure, truncation, or a
        corrupt BDD payload (with the offending line number).
        """
        if faults.armed:
            faults.fire("serve.db_load")
        target = pathlib.Path(path)
        meta, payload, digest = _read_envelope(target)
        num_vars = int(meta.get("num_vars", 0))
        manager = create_kernel(num_vars=num_vars, backend=backend)
        domains: Dict[str, Domain] = {}
        relations: Dict[str, Relation] = {}
        schema = meta.get("relations")
        if not isinstance(schema, list):
            raise InvalidInputError(f"{target}: meta lacks a relations list")
        try:
            for entry in schema:
                attrs = []
                for name, logical, phys_name, size, levels in entry["attrs"]:
                    dom = domains.get(phys_name)
                    if dom is None:
                        dom = Domain(manager, phys_name, int(size), list(levels))
                        domains[phys_name] = dom
                    attrs.append(Attribute(name, logical, dom))
                relations[entry["name"]] = Relation(manager, entry["name"], attrs)
            roots = parse_bdd_lines(
                manager, payload, name=str(target), first_lineno=5
            )
        except BDDError as err:
            raise InvalidInputError(f"corrupt database payload: {err}")
        except (KeyError, TypeError, ValueError) as err:
            raise InvalidInputError(
                f"{target}: malformed relation schema in meta: {err!r}"
            )
        if len(roots) != len(schema):
            raise InvalidInputError(
                f"{target}: payload has {len(roots)} roots for "
                f"{len(schema)} declared relations"
            )
        for entry, node in zip(schema, roots):
            relations[entry["name"]].set_node(node)
        db_id = _db_id(meta, digest)
        return cls(
            manager=manager,
            relations=relations,
            maps={dom: list(names) for dom, names in meta.get("maps", {}).items()},
            meta=meta,
            db_id=db_id,
            path=str(target),
        )


# Meta keys that vary run to run (wall-clock timings, tool build info,
# kernel backend) without changing the analysis *answer*.  They are
# excluded from the database identity so that two compilations of the
# same program — on different machines, different days, or different BDD
# backends — produce the same ``db_id`` whenever their relations agree.
# ``provenance`` (how the database was derived: parent db, fact diff) is
# history, not content: an incremental recompile must produce the *same*
# db_id as a from-scratch compile on the edited facts — that identity is
# the differential gate — so it is volatile too.
_VOLATILE_META = frozenset({"stats", "tool", "backend", "provenance"})


def _db_id(meta: Dict[str, Any], payload_digest: str) -> str:
    stable = {k: v for k, v in meta.items() if k not in _VOLATILE_META}
    meta_text = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(
        (meta_text + "\n" + payload_digest).encode()
    ).hexdigest()[:16]


def _read_envelope(path: pathlib.Path) -> Tuple[Dict[str, Any], List[str], str]:
    try:
        text = path.read_text()
    except OSError as err:
        if isinstance(err, FileNotFoundError):
            raise
        raise InvalidInputError(f"{path}: cannot read database: {err}")
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise InvalidInputError(
            f"{path}:1: not a repro-ptdb file (expected {_MAGIC!r})"
        )
    if len(lines) < 4:
        raise InvalidInputError(f"{path}: truncated database header")
    if not lines[1].startswith("meta "):
        raise InvalidInputError(f"{path}:2: missing meta record")
    try:
        meta = json.loads(lines[1][len("meta "):])
    except json.JSONDecodeError as err:
        raise InvalidInputError(f"{path}:2: corrupt meta json: {err}")
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise InvalidInputError(
            f"{path}:2: unsupported database format_version {version!r} "
            f"(this build reads version {FORMAT_VERSION}; re-run "
            f"'repro compile-db')"
        )
    check_tool_version(meta, str(path), "database")
    if not lines[2].startswith("sha256 "):
        raise InvalidInputError(f"{path}:3: missing sha256 record")
    digest = lines[2][len("sha256 "):].strip()
    if not lines[3].startswith("payload "):
        raise InvalidInputError(f"{path}:4: missing payload record")
    try:
        n_payload = int(lines[3][len("payload "):])
    except ValueError:
        raise InvalidInputError(f"{path}:4: malformed payload count")
    payload = lines[4:]
    if len(payload) != n_payload:
        raise InvalidInputError(
            f"{path}: truncated database: header promises {n_payload} "
            f"payload lines, found {len(payload)}"
        )
    actual = hashlib.sha256("\n".join(payload).encode()).hexdigest()
    if actual != digest:
        raise InvalidInputError(
            f"{path}: checksum mismatch: payload is corrupt "
            f"(expected {digest[:12]}..., got {actual[:12]}...)"
        )
    return meta, payload, digest


# ----------------------------------------------------------------------
# Compilation: program -> database
# ----------------------------------------------------------------------


@dataclass
class CompileState:
    """Live solver state left over from a compilation.

    ``compile_database`` discards this; the incremental recompiler keeps
    it to checkpoint all three fixpoints into a ``.ptdb.fix`` bundle so a
    later edit can warm-start each solve instead of re-deriving it.
    """

    ci_solver: Any
    cs_solver: Any
    escape_solver: Any
    ie_tuples: List[tuple]
    cs_c_size: int
    escape_c_size: int
    thread_sites: List[Tuple[int, int]]
    max_paths: int


def _facts_meta(facts: Facts, thread_sites: Sequence[Tuple[int, int]]) -> Dict[str, Any]:
    """Everything beyond ``maps``/``site_method``/``var_reps`` needed to
    rebuild a solvable fact set from the database alone (no source)."""
    return {
        "relations": {
            name: [list(t) for t in sorted(facts.relations[name])]
            for name in sorted(facts.relations)
        },
        "max_arity": facts.max_arity,
        "alloc_sites": {
            str(m): sorted(sites) for m, sites in facts.alloc_sites.items()
        },
        "global_site": facts.global_site,
        "entry_ids": sorted(facts.entry_method_ids()),
        "thread_sites": [list(t) for t in thread_sites],
    }


def _uncovered_variables(
    method_names: Sequence[str],
    mv_tuples: Sequence[Sequence[int]],
    pattern: str,
) -> Set[int]:
    """Variable ordinals outside a ``--budget-class`` method pattern.

    A variable is covered when some method whose qualified name matches
    ``pattern`` (fnmatch, case-sensitive) declares it in ``mV``.
    Variables absent from ``mV`` entirely stay covered — restricting
    them would silently falsify lookups the pattern says nothing about.
    """
    matching = {
        i
        for i, name in enumerate(method_names)
        if fnmatch.fnmatchcase(name, pattern)
    }
    member: Set[int] = set()
    covered: Set[int] = set()
    for m, v in mv_tuples:
        member.add(v)
        if m in matching:
            covered.add(v)
    return member - covered


def package_database(
    facts: Facts,
    cs_solver,
    ie_tuples: Sequence[tuple],
    escape_verdicts: Dict[str, List[int]],
    *,
    max_paths: int,
    thread_sites: Sequence[Tuple[int, int]],
    modref: bool = True,
    budget_class: Optional[str] = None,
    main: str = "Main",
    source_path: Optional[str] = None,
    source_sha256: Optional[str] = None,
    timings: Optional[Dict[str, float]] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> PointsToDatabase:
    """Package solved state as a :class:`PointsToDatabase`.

    The same packager serves both the from-scratch compile and the
    incremental recompile: identical inputs (facts, solved ``vPC``/``hP``/
    mod-ref relations, ``IE``, escape verdicts) yield byte-identical
    stable meta and therefore the same ``db_id`` — the property the
    incremental differential gate asserts.  ``source_path`` and
    ``source_sha256`` are identity-bearing, so derived databases (which
    have facts but no source file) must leave them unset.
    """
    relations: Dict[str, Relation] = {}
    for name in _BDD_RELATIONS:
        if name == "vP":
            projected = cs_solver.relation("vPC").project("variable", "heap")
            rel = Relation(cs_solver.manager, "vP", projected.attributes)
            rel.set_node(projected.node)
            relations["vP"] = rel
        elif name in cs_solver.relations:
            relations[name] = cs_solver.relation(name)

    if budget_class:
        uncovered = _uncovered_variables(
            facts.maps["M"], facts.relations.get("mV", ()), budget_class
        )
        manager = cs_solver.manager
        for name in ("vPC", "vP"):
            rel = relations.get(name)
            if rel is None or not uncovered:
                continue
            var = rel.attribute("variable").phys
            cut = manager.or_all([var.eq_const(v) for v in sorted(uncovered)])
            restricted = Relation(manager, name, rel.attributes)
            restricted.set_node(manager.diff(rel.node, cut))
            relations[name] = restricted

    schema = []
    for name, rel in relations.items():
        schema.append(
            {
                "name": name,
                "attrs": [
                    [a.name, a.logical, a.phys.name, a.phys.size,
                     list(a.phys.levels)]
                    for a in rel.attributes
                ],
                "tuples": rel.count(),
            }
        )

    var_index = {v: i for i, v in enumerate(facts.maps["V"])}
    var_reps = {
        f"{method}:{var}": var_index[rep]
        for (method, var), rep in facts._var_reps.items()
        if rep in var_index
    }

    program_meta: Dict[str, Any] = {
        "facts_sha256": facts_digest(facts),
        "entry": facts.program.entry.qualified,
        "main": main,
        "stats": facts.program.stats(),
    }
    if source_path is not None:
        program_meta["path"] = str(source_path)
    if source_sha256 is not None:
        program_meta["source_sha256"] = source_sha256

    meta: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "tool": tool_meta(),
        # Provenance only (volatile, excluded from db_id): which kernel
        # backend compiled this database.
        "backend": cs_solver.manager.backend_name,
        "num_vars": cs_solver.manager.num_vars,
        "relations": schema,
        "maps": facts.maps,
        "facts": _facts_meta(facts, thread_sites),
        "tuples": {"IE": [list(t) for t in sorted(ie_tuples)]},
        "escape": {
            key: sorted(escape_verdicts.get(key, ()))
            for key in ("escaped", "captured", "sync_needed", "sync_unneeded")
        },
        "site_method": {str(i): m for i, m in facts.site_method.items()},
        "var_reps": var_reps,
        "program": program_meta,
        "config": {
            "algorithm": "algorithm5",
            "modref": modref,
            "order_spec": cs_solver.order_spec,
            "type_filtering": True,
        },
        # (budget_class added below only when set, so unrestricted
        # databases keep their pre-existing db_id.)
        "paths": max_paths,
        "stats": {
            "iterations": cs_solver.stats.iterations,
            "rule_applications": cs_solver.stats.rule_applications,
            "peak_nodes": cs_solver.manager.peak_nodes,
            "timings_s": {
                k: round(v, 4) for k, v in (timings or {}).items()
            },
        },
    }
    if budget_class:
        meta["config"]["budget_class"] = budget_class
    if provenance is not None:
        meta["provenance"] = provenance
    # The in-memory db_id must match what a later load computes, so it is
    # derived the same way: meta + payload digest.
    payload, _ = dump_bdd_lines(
        cs_solver.manager, [relations[e["name"]].node for e in schema]
    )
    digest = hashlib.sha256("\n".join(payload).encode()).hexdigest()
    return PointsToDatabase(
        manager=cs_solver.manager,
        relations=relations,
        maps=facts.maps,
        meta=meta,
        db_id=_db_id(meta, digest),
    )


def compile_database_with_state(
    program=None,
    facts: Optional[Facts] = None,
    *,
    source_path: Optional[str] = None,
    source_sha256: Optional[str] = None,
    main: str = "Main",
    modref: bool = True,
    budget_class: Optional[str] = None,
    budget: Optional[ResourceBudget] = None,
    order_spec: Optional[str] = None,
    backend: Optional[str] = None,
    optimize: Optional[bool] = None,
    disabled_passes: Optional[Sequence[str]] = None,
    provenance: Optional[Dict[str, Any]] = None,
) -> Tuple[PointsToDatabase, CompileState]:
    """Solve a program once; return the database *and* the live solvers.

    Runs the Algorithm 3 context-insensitive analysis (for the call graph
    and ``IE``), the Algorithm 5 context-sensitive analysis (with the
    mod-ref query fragment unless ``modref=False``), and the Algorithm 7
    escape analysis; the solved relations plus all name maps land in the
    returned :class:`PointsToDatabase` (call :meth:`~PointsToDatabase.save`
    to persist it).

    ``budget`` bounds the whole compilation (shared deadline across the
    three solves); budget faults propagate — a database is only written
    from a *complete* solve, never a degraded one.
    """
    from ..analysis import (
        ContextInsensitiveAnalysis,
        ContextSensitiveAnalysis,
        ThreadEscapeAnalysis,
    )
    from ..analysis.escape import thread_alloc_sites

    if facts is None:
        if program is None:
            raise InvalidInputError("compile_database needs a Program or Facts")
        facts = extract_facts(program)
    if budget is not None:
        budget.start()

    # Compute once: for a FactSet rebuilt from a database the hierarchy
    # is gone, so the sites travel as data instead.
    thread_sites = getattr(facts, "thread_sites", None)
    if thread_sites is None:
        thread_sites = thread_alloc_sites(facts)
    thread_sites = sorted(tuple(t) for t in thread_sites)

    timings: Dict[str, float] = {}
    t0 = time.monotonic()
    ci = ContextInsensitiveAnalysis(
        facts=facts,
        type_filtering=True,
        discover_call_graph=True,
        budget=budget.share_deadline() if budget is not None else None,
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
    ).run()
    timings["context_insensitive_s"] = time.monotonic() - t0
    graph = ci.discovered_call_graph
    ie_tuples = sorted(ci.solver.relation("IE").tuples())

    t0 = time.monotonic()
    cs = ContextSensitiveAnalysis(
        facts=facts,
        call_graph=graph,
        query_fragments=["query_modref"] if modref else (),
        order_spec=order_spec,
        budget=(
            budget.share_deadline(
                node_budget=budget.node_budget,
                max_iterations=budget.max_iterations,
            )
            if budget is not None
            else None
        ),
        degrade=False,
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
    ).run()
    timings["context_sensitive_s"] = time.monotonic() - t0

    t0 = time.monotonic()
    esc = ThreadEscapeAnalysis(
        facts=facts,
        call_graph=graph,
        budget=budget.share_deadline() if budget is not None else None,
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
        thread_sites=thread_sites,
    ).run()
    timings["escape_s"] = time.monotonic() - t0
    escape_verdicts = {
        "escaped": sorted(esc.escaped_heaps()),
        "captured": sorted(esc.captured_heaps()),
        "sync_needed": sorted(esc.needed_sync_vars()),
        "sync_unneeded": sorted(esc.unneeded_sync_vars()),
    }

    db = package_database(
        facts,
        cs.solver,
        ie_tuples,
        escape_verdicts,
        max_paths=cs.max_paths(),
        thread_sites=thread_sites,
        modref=modref,
        budget_class=budget_class,
        main=main,
        source_path=source_path,
        source_sha256=source_sha256,
        timings=timings,
        provenance=provenance,
    )
    state = CompileState(
        ci_solver=ci.solver,
        cs_solver=cs.solver,
        escape_solver=esc.solver,
        ie_tuples=ie_tuples,
        cs_c_size=cs.numbering.context_domain_size(),
        escape_c_size=next(
            a.phys.size
            for a in esc.solver.relation("vPT").attributes
            if a.logical == "C"
        ),
        thread_sites=thread_sites,
        max_paths=cs.max_paths(),
    )
    return db, state


def compile_database(
    program=None,
    facts: Optional[Facts] = None,
    **kwargs,
) -> PointsToDatabase:
    """Solve a program once and package the result as a database.

    Thin wrapper over :func:`compile_database_with_state` that drops the
    live solver state; see there for parameters and semantics.
    """
    db, _ = compile_database_with_state(program, facts, **kwargs)
    return db
