"""Threaded demand-query server over one loaded points-to database.

Thread-per-connection on top of :class:`QueryEngine` (which serializes
BDD work internally and answers cache hits without the lock).  Designed
to *survive misbehaving clients*: malformed JSON, oversized lines,
unknown verbs, mid-request disconnects, and budget-blowing queries all
produce typed error responses (or a dropped partial line) — never a dead
server or a leaked handler thread.

Operational limits, all constructor-tunable:

* ``max_connections`` — concurrent connections; excess connects receive
  one ``shutting-down``-style refusal line and are closed,
* ``max_requests_per_connection`` — after this many requests the server
  answers normally, then closes (load-balancer style recycling),
* ``idle_timeout`` — a connection silent for this long is closed,
* per-request ``default_timeout`` forwarded to the engine.

Shutdown is graceful: the listener stops accepting, in-flight handlers
get ``drain_timeout`` seconds to finish, and the metrics report is
written to the log stream.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO

from .. import __version__ as TOOL_VERSION
from .database import PointsToDatabase
from .engine import QueryEngine, QueryError
from .metrics import Metrics
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["PointsToServer"]

_DEFAULT_MAX_CONNECTIONS = 64
_DEFAULT_MAX_REQUESTS = 100_000
_DEFAULT_IDLE_TIMEOUT = 300.0


class PointsToServer:
    """Serves demand queries for one database over TCP."""

    def __init__(
        self,
        db: PointsToDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_size: int = 1024,
        default_timeout: Optional[float] = None,
        max_connections: int = _DEFAULT_MAX_CONNECTIONS,
        max_requests_per_connection: int = _DEFAULT_MAX_REQUESTS,
        idle_timeout: float = _DEFAULT_IDLE_TIMEOUT,
        log: Optional[TextIO] = None,
    ) -> None:
        self.db = db
        self.metrics = Metrics()
        self.engine = QueryEngine(
            db,
            cache_size=cache_size,
            default_timeout=default_timeout,
            metrics=self.metrics,
        )
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_requests_per_connection = max_requests_per_connection
        self.idle_timeout = idle_timeout
        self._log = log if log is not None else sys.stderr
        # Wire-level response cache: exact request line -> (query kind,
        # encoded response bytes).  A hit skips JSON parsing, engine
        # dispatch, and re-encoding — the hot path for clients that
        # repeat identical request lines.  Sound because the database is
        # immutable for the server's lifetime; only ``ok`` query
        # responses without ``no_cache`` are stored.  Clear-on-overflow,
        # same policy as the BDD operation caches.
        self._wire_cache: Dict[bytes, tuple] = {}
        self._wire_lock = threading.Lock()
        self._wire_cap = max(64, cache_size)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: Dict[int, threading.Thread] = {}
        self._handlers_lock = threading.Lock()
        self._next_conn = 0
        self._shutdown = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and start accepting in a background thread."""
        if self._started:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # A blocking accept() is not reliably woken by close() from another
        # thread; poll with a short timeout so shutdown always terminates
        # the accept loop.
        listener.settimeout(0.25)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._print(
            f"serving {self.db.db_id} on {self.host}:{self.port} "
            f"(protocol {PROTOCOL_VERSION}, repro {TOOL_VERSION})"
        )

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`."""
        if not self._started:
            self.start()
        try:
            while not self._shutdown.wait(0.25):
                pass
        except KeyboardInterrupt:
            pass
        self.shutdown()

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain handlers, dump metrics. Idempotent.

        The drain must run even when the ``shutdown`` *verb* already set
        the event (serve_forever calls here afterwards): a handler may
        still be writing that verb's response, so gate on a separate
        finalized flag, not on the event itself.
        """
        with self._finalize_lock:
            if self._finalized:
                return
            self._finalized = True
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
        deadline = time.monotonic() + drain_timeout
        for thread in self.handler_threads():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._print("server stopped; final metrics:")
        self._print(self.metrics.render())

    def handler_threads(self) -> List[threading.Thread]:
        with self._handlers_lock:
            return list(self._handlers.values())

    @property
    def address(self):
        return (self.host, self.port)

    def _print(self, message: str) -> None:
        try:
            print(message, file=self._log, flush=True)
        except ValueError:
            pass  # log stream already closed (interpreter teardown)

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._shutdown.is_set():
            try:
                conn, peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown
            with self._handlers_lock:
                active = len(self._handlers)
                if active >= self.max_connections:
                    self.metrics.connection_rejected()
                    self._refuse(conn)
                    continue
                self._next_conn += 1
                conn_id = self._next_conn
                thread = threading.Thread(
                    target=self._handle,
                    args=(conn, conn_id),
                    name=f"serve-conn-{conn_id}",
                    daemon=True,
                )
                self._handlers[conn_id] = thread
            self.metrics.connection_opened()
            thread.start()

    def _refuse(self, conn: socket.socket) -> None:
        try:
            conn.sendall(
                encode(
                    error_response(
                        None,
                        "shutting-down",
                        f"connection limit of {self.max_connections} reached",
                    )
                )
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, conn: socket.socket, conn_id: int) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(self.idle_timeout)
            # C-level buffered readline keeps the per-request read cost
            # out of the Python interpreter (this loop is the server's
            # hot path).  The +2 headroom distinguishes "exactly at the
            # cap, newline included" from "over the cap".
            reader = conn.makefile("rb")
            wire_cache = self._wire_cache
            served = 0
            while not self._shutdown.is_set():
                try:
                    line = reader.readline(MAX_LINE_BYTES + 2)
                except socket.timeout:
                    break  # idle connection
                except OSError:
                    break  # client went away mid-read
                if not line:
                    break  # clean EOF
                if not line.endswith(b"\n"):
                    if len(line) > MAX_LINE_BYTES:
                        if not self._consume_oversized(reader):
                            break
                        self.metrics.protocol_error("too-large")
                        self._send_bytes(
                            conn,
                            encode(
                                error_response(
                                    None, "too-large",
                                    f"request line exceeds "
                                    f"{MAX_LINE_BYTES} bytes",
                                )
                            ),
                        )
                        continue
                    break  # mid-request disconnect: drop the partial line
                hit = wire_cache.get(line)
                if hit is not None:
                    started = time.perf_counter()
                    kind, payload = hit
                    ok = self._send_bytes(conn, payload)
                    self.metrics.wire_hit(
                        kind, time.perf_counter() - started
                    )
                    if not ok:
                        break
                else:
                    if not line.strip():
                        continue
                    response, wire_kind = self._dispatch(line)
                    payload = encode(response)
                    if wire_kind is not None:
                        with self._wire_lock:
                            if len(wire_cache) >= self._wire_cap:
                                wire_cache.clear()
                            wire_cache[bytes(line)] = (wire_kind, payload)
                    if not self._send_bytes(conn, payload):
                        break
                served += 1
                if served >= self.max_requests_per_connection:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._handlers_lock:
                self._handlers.pop(conn_id, None)

    @staticmethod
    def _consume_oversized(reader) -> bool:
        """Swallow the rest of an over-cap line; False on EOF/error."""
        try:
            while True:
                chunk = reader.readline(MAX_LINE_BYTES)
                if not chunk:
                    return False
                if chunk.endswith(b"\n"):
                    return True
        except (OSError, ValueError):
            return False

    def _send_bytes(self, conn: socket.socket, payload: bytes) -> bool:
        try:
            conn.sendall(payload)
            return True
        except (OSError, ValueError):
            return False

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, line: bytes):
        """Handle one request line; returns ``(response, wire_kind)``.

        ``wire_kind`` is the query kind when the response is eligible for
        the wire cache (a successful plain query), else ``None``.
        """
        self.metrics.request_started()
        try:
            try:
                request = decode_request(line)
            except ProtocolError as err:
                self.metrics.protocol_error(err.code)
                return error_response(None, err.code, str(err)), None
            request_id = request.get("id")
            verb = request["verb"]
            try:
                if verb == "query":
                    result = self._do_query(request)
                    kind = (
                        request["kind"]
                        if not request.get("no_cache") else None
                    )
                    return ok_response(request_id, result), kind
                if verb == "batch":
                    return ok_response(request_id, self._do_batch(request)), None
                if verb == "hello":
                    return ok_response(request_id, self._do_hello()), None
                if verb == "stats":
                    return ok_response(request_id, self._do_stats()), None
                if verb == "ping":
                    return ok_response(request_id, {"pong": True}), None
                if verb == "shutdown":
                    # Answer first; the event stops the accept/serve loops.
                    self._shutdown.set()
                    return ok_response(request_id, {"stopping": True}), None
                raise AssertionError(f"unreachable verb {verb!r}")
            except QueryError as err:
                return error_response(request_id, err.code, str(err)), None
            except Exception as err:  # noqa: BLE001 - must not kill the handler
                self.metrics.protocol_error("server-error")
                return error_response(
                    request_id, "server-error",
                    f"internal error: {type(err).__name__}: {err}",
                ), None
        finally:
            self.metrics.request_finished()

    def _do_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        kind = request.get("kind")
        if not isinstance(kind, str):
            raise QueryError("bad-argument", "query request lacks a string 'kind'")
        return self.engine.query(
            kind,
            request.get("args") or {},
            timeout=request.get("timeout_s"),
            use_cache=not request.get("no_cache", False),
        )

    def _do_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        results: List[Dict[str, Any]] = []
        for sub in request["requests"]:
            if not isinstance(sub, dict):
                results.append(
                    error_response(
                        None, "invalid-request", "batch entry must be an object"
                    )
                )
                continue
            sub_id = sub.get("id")
            try:
                results.append(ok_response(sub_id, self._do_query(sub)))
            except QueryError as err:
                results.append(error_response(sub_id, err.code, str(err)))
        return {"results": results}

    def _do_hello(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "tool": {"name": "repro", "version": TOOL_VERSION},
            "db": self.db.summary(),
        }

    def _do_stats(self) -> Dict[str, Any]:
        out = self.metrics.snapshot()
        out["engine"] = self.engine.stats()
        out["engine"]["wire_cache_entries"] = len(self._wire_cache)
        return out
