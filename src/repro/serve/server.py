"""Threaded demand-query server over a hot-swappable points-to database.

Thread-per-connection on top of :class:`QueryEngine` (which serializes
BDD work internally and answers cache hits without the lock).  Designed
to *survive misbehaving clients and operators*: malformed JSON,
oversized lines, unknown verbs, mid-request disconnects, budget-blowing
queries, corrupt reload candidates, and sustained overload all produce
typed error responses (or a dropped partial line) — never a dead server
or a leaked handler thread.

Always-on machinery (all of it off the query hot path):

* **Hot swap** — the ``reload`` verb (or ``SIGHUP``) loads a candidate
  ``.ptdb`` *off the request path*, validates it (checksum, format
  version, optional ``expect_db_id`` pin) and only then publishes it as
  a new epoch-tagged immutable :class:`_ServeState`.  Publication is a
  single attribute assignment — atomic under the GIL — so handlers
  either see the whole old state or the whole new one.  In-flight
  queries finish against the epoch they started on; new requests read
  the fresh pointer.  Each epoch owns its own engine (so the engine LRU
  dies with the epoch) and the wire cache is keyed by ``db_id`` *and*
  cleared on swap.  A candidate that fails validation is discarded and
  the old database keeps serving — the client gets a typed
  ``reload-failed`` error, never a half-swapped server.
* **Admission control** — a bounded pending-work limit
  (``max_pending``) with optional per-kind concurrency caps
  (``kind_limits``).  Excess work is rejected *before* any BDD work
  with a typed ``overloaded`` error carrying a ``retry_after_ms`` hint
  that scales with queue pressure.  ``health``/``ping``/``hello`` are
  exempt: a health probe must answer precisely when the server is too
  busy to do anything else.
* **Deadlines** — a client-supplied ``deadline_ms`` is stamped against
  ``time.monotonic()`` when the request line is *received*, checked
  again at dispatch (work whose deadline passed while queued is
  rejected without evaluation), and enforced mid-query through the
  engine's :class:`ResourceBudget` watchdog.
* **Fault seams** — ``serve.accept``, ``serve.dispatch`` and
  ``serve.swap`` fault points (plus ``serve.db_load`` inside the
  database loader) let the chaos harness inject deterministic partial
  failures; see :mod:`repro.runtime.faults`.

Operational limits, all constructor-tunable: ``max_connections``,
``max_requests_per_connection`` (load-balancer style recycling),
``idle_timeout``, per-request ``default_timeout``, ``max_pending``,
``kind_limits``, ``retry_after_ms``.

Shutdown is graceful: the listener stops accepting, in-flight handlers
get ``drain_timeout`` seconds to finish, and the metrics report is
written to the log stream.
"""

from __future__ import annotations

import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple

from .. import __version__ as TOOL_VERSION
from ..runtime import faults
from .database import PointsToDatabase
from .engine import QueryEngine, QueryError
from .metrics import Metrics
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode,
    error_response,
    ok_response,
)

__all__ = ["PointsToServer"]

_DEFAULT_MAX_CONNECTIONS = 64
_DEFAULT_MAX_REQUESTS = 100_000
_DEFAULT_IDLE_TIMEOUT = 300.0
_DEFAULT_MAX_PENDING = 256
_DEFAULT_RETRY_AFTER_MS = 200


class _ServeState:
    """One epoch of the server: an immutable (db, engine) pair.

    Handlers capture ``server._state`` exactly once per request and use
    only the captured object afterwards, so a hot swap mid-request can
    never hand them a database from one epoch and an engine from
    another.
    """

    __slots__ = ("epoch", "db", "engine", "loaded_at")

    def __init__(self, epoch: int, db: PointsToDatabase, engine: QueryEngine) -> None:
        self.epoch = epoch
        self.db = db
        self.engine = engine
        self.loaded_at = time.monotonic()


class _Admission:
    """Bounded pending-work gate with optional per-kind caps.

    ``acquire`` either admits the request (caller must ``release``) or
    raises a typed ``overloaded`` :class:`QueryError` whose
    ``retry_after_ms`` hint grows with queue pressure — a client backing
    off by the hint naturally spreads retries instead of stampeding the
    moment one slot frees up.
    """

    __slots__ = ("max_pending", "kind_limits", "retry_after_ms",
                 "pending", "_per_kind", "_lock")

    def __init__(
        self,
        max_pending: int,
        kind_limits: Optional[Dict[str, int]],
        retry_after_ms: int,
    ) -> None:
        self.max_pending = max(1, int(max_pending))
        self.kind_limits = dict(kind_limits or {})
        self.retry_after_ms = max(1, int(retry_after_ms))
        self.pending = 0
        self._per_kind: Dict[str, int] = {}
        self._lock = threading.Lock()

    def acquire(self, kind: str) -> None:
        with self._lock:
            if self.pending >= self.max_pending:
                hint = self._hint()
                raise QueryError(
                    "overloaded",
                    f"pending-work limit of {self.max_pending} reached",
                    details={"retry_after_ms": hint},
                )
            cap = self.kind_limits.get(kind)
            if cap is not None and self._per_kind.get(kind, 0) >= cap:
                hint = self._hint()
                raise QueryError(
                    "overloaded",
                    f"concurrency cap of {cap} for {kind!r} queries reached",
                    details={"retry_after_ms": hint},
                )
            self.pending += 1
            self._per_kind[kind] = self._per_kind.get(kind, 0) + 1

    def release(self, kind: str) -> None:
        with self._lock:
            self.pending -= 1
            left = self._per_kind.get(kind, 1) - 1
            if left <= 0:
                self._per_kind.pop(kind, None)
            else:
                self._per_kind[kind] = left

    def _hint(self) -> int:
        # Called under the lock.  Base hint, scaled up to 2x as the
        # queue saturates.
        return int(self.retry_after_ms * (1 + self.pending / self.max_pending))

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "pending": self.pending,
                "max_pending": self.max_pending,
                "kind_limits": dict(self.kind_limits),
                "per_kind": dict(self._per_kind),
            }


class PointsToServer:
    """Serves demand queries for one (hot-swappable) database over TCP."""

    def __init__(
        self,
        db: PointsToDatabase,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_size: int = 1024,
        default_timeout: Optional[float] = None,
        max_connections: int = _DEFAULT_MAX_CONNECTIONS,
        max_requests_per_connection: int = _DEFAULT_MAX_REQUESTS,
        idle_timeout: float = _DEFAULT_IDLE_TIMEOUT,
        max_pending: int = _DEFAULT_MAX_PENDING,
        kind_limits: Optional[Dict[str, int]] = None,
        retry_after_ms: int = _DEFAULT_RETRY_AFTER_MS,
        log: Optional[TextIO] = None,
    ) -> None:
        self.metrics = Metrics()
        self._cache_size = cache_size
        self._default_timeout = default_timeout
        self._state = _ServeState(1, db, self._build_engine(db))
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_requests_per_connection = max_requests_per_connection
        self.idle_timeout = idle_timeout
        self.admission = _Admission(max_pending, kind_limits, retry_after_ms)
        self._log = log if log is not None else sys.stderr
        # Wire-level response cache: (db_id, exact request line) ->
        # (query kind, encoded response bytes).  A hit skips JSON
        # parsing, engine dispatch, and re-encoding — the hot path for
        # clients that repeat identical request lines.  Sound because a
        # loaded database is immutable and the key pins the epoch's
        # db_id: after a hot swap, old entries are unreachable (and the
        # cache is cleared anyway).  Only ``ok`` query responses without
        # ``no_cache`` are stored.  Clear-on-overflow, same policy as
        # the BDD operation caches.
        self._wire_cache: Dict[Tuple[str, bytes], tuple] = {}
        self._wire_lock = threading.Lock()
        self._wire_cap = max(64, cache_size)
        self._reload_lock = threading.Lock()
        self._hup = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: Dict[int, threading.Thread] = {}
        self._handlers_lock = threading.Lock()
        self._next_conn = 0
        self._shutdown = threading.Event()
        self._finalize_lock = threading.Lock()
        self._finalized = False
        self._started = False
        self._started_at = time.monotonic()

    def _build_engine(self, db: PointsToDatabase) -> QueryEngine:
        return QueryEngine(
            db,
            cache_size=self._cache_size,
            default_timeout=self._default_timeout,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # Epoch state (read-only views; the state object itself is swapped
    # atomically by reload())
    # ------------------------------------------------------------------

    @property
    def db(self) -> PointsToDatabase:
        return self._state.db

    @property
    def engine(self) -> QueryEngine:
        return self._state.engine

    @property
    def epoch(self) -> int:
        return self._state.epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Bind, listen, and start accepting in a background thread."""
        if self._started:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        # A blocking accept() is not reliably woken by close() from another
        # thread; poll with a short timeout so shutdown always terminates
        # the accept loop.
        listener.settimeout(0.25)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._started = True
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._print(
            f"serving {self.db.db_id} on {self.host}:{self.port} "
            f"(protocol {PROTOCOL_VERSION}, repro {TOOL_VERSION})"
        )

    def install_signal_handlers(self) -> None:
        """Install the ``SIGHUP`` → reload handler (main thread only).

        The handler merely sets a flag; the reload itself runs from the
        :meth:`serve_forever` loop, because loading a database is far
        too much work for a signal context.
        """
        try:
            signal.signal(signal.SIGHUP, lambda _sig, _frm: self._hup.set())
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread, or a platform without SIGHUP

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`shutdown`.

        Also services ``SIGHUP`` reload requests: a failed reload is
        logged and the old database keeps serving.
        """
        if not self._started:
            self.start()
        self.install_signal_handlers()
        try:
            while not self._shutdown.wait(0.25):
                if self._hup.is_set():
                    self._hup.clear()
                    try:
                        self.reload()
                    except QueryError as err:
                        self._print(f"SIGHUP reload failed: {err}")
        except KeyboardInterrupt:
            pass
        self.shutdown()

    def shutdown(self, drain_timeout: float = 5.0) -> None:
        """Stop accepting, drain handlers, dump metrics. Idempotent.

        The drain must run even when the ``shutdown`` *verb* already set
        the event (serve_forever calls here afterwards): a handler may
        still be writing that verb's response, so gate on a separate
        finalized flag, not on the event itself.
        """
        with self._finalize_lock:
            if self._finalized:
                return
            self._finalized = True
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=drain_timeout)
        deadline = time.monotonic() + drain_timeout
        for thread in self.handler_threads():
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        self._print("server stopped; final metrics:")
        self._print(self.metrics.render())

    def handler_threads(self) -> List[threading.Thread]:
        with self._handlers_lock:
            return list(self._handlers.values())

    @property
    def address(self):
        return (self.host, self.port)

    def _print(self, message: str) -> None:
        try:
            print(message, file=self._log, flush=True)
        except ValueError:
            pass  # log stream already closed (interpreter teardown)

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------

    def reload(
        self,
        path: Optional[str] = None,
        expect_db_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Load a candidate database and atomically swap it in.

        ``path`` defaults to the file the current database was loaded
        from (the common "artifact was rebuilt in place" flow).  The
        candidate is fully loaded and validated *before* publication;
        any failure — unreadable file, checksum mismatch, wrong format
        version, ``expect_db_id`` mismatch, injected ``serve.db_load``
        or ``serve.swap`` fault — leaves the current epoch serving and
        surfaces as a typed ``reload-failed`` error.

        Serialized under a lock so concurrent reload requests cannot
        interleave epoch numbers; queries are *not* blocked by the lock
        (they never take it).
        """
        with self._reload_lock:
            old = self._state
            target = path or old.db.path
            if not target:
                self.metrics.reload(False)
                raise QueryError(
                    "reload-failed",
                    "no path given and the current database has no source "
                    "path (compiled in-process?)",
                )
            backend = getattr(old.db.manager, "backend_name", None)
            try:
                candidate = PointsToDatabase.load(target, backend=backend)
                if expect_db_id and candidate.db_id != expect_db_id:
                    raise ValueError(
                        f"candidate db_id {candidate.db_id} does not match "
                        f"expected {expect_db_id}"
                    )
                # The swap seam sits after validation, before
                # publication: the window where a crash must prove the
                # old epoch still serves.
                if faults.armed:
                    faults.fire("serve.swap")
            except Exception as err:  # noqa: BLE001 - reload must never kill the server
                self.metrics.reload(False)
                raise QueryError(
                    "reload-failed",
                    f"candidate {target} rejected: {type(err).__name__}: {err}",
                )
            state = _ServeState(old.epoch + 1, candidate, self._build_engine(candidate))
            # Single attribute assignment = atomic publication under the
            # GIL.  In-flight requests hold the old state object; it
            # (and its engine LRU) is garbage once they drain.
            self._state = state
            with self._wire_lock:
                self._wire_cache.clear()
            self.metrics.reload(True)
            self._print(
                f"reloaded {state.db.db_id} from {target} "
                f"(epoch {old.epoch} -> {state.epoch})"
            )
            return {
                "reloaded": True,
                "epoch": state.epoch,
                "db_id": state.db.db_id,
                "previous_db_id": old.db.db_id,
                "path": str(target),
            }

    # ------------------------------------------------------------------
    # Accept / connection handling
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._shutdown.is_set():
            try:
                conn, peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by shutdown
            if faults.armed:
                # Chaos seam: an injected accept fault drops this
                # connection on the floor (the client sees a reset, as
                # with a real accept-path failure) but never stops the
                # loop.
                try:
                    faults.fire("serve.accept")
                except Exception:  # noqa: BLE001
                    self.metrics.connection_rejected()
                    try:
                        conn.close()
                    except OSError:
                        pass
                    continue
            with self._handlers_lock:
                active = len(self._handlers)
                if active >= self.max_connections:
                    self.metrics.connection_rejected()
                    self._refuse(conn)
                    continue
                self._next_conn += 1
                conn_id = self._next_conn
                thread = threading.Thread(
                    target=self._handle,
                    args=(conn, conn_id),
                    name=f"serve-conn-{conn_id}",
                    daemon=True,
                )
                self._handlers[conn_id] = thread
            self.metrics.connection_opened()
            thread.start()

    def _refuse(self, conn: socket.socket) -> None:
        try:
            conn.sendall(
                encode(
                    error_response(
                        None,
                        "shutting-down",
                        f"connection limit of {self.max_connections} reached",
                    )
                )
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, conn: socket.socket, conn_id: int) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(self.idle_timeout)
            # C-level buffered readline keeps the per-request read cost
            # out of the Python interpreter (this loop is the server's
            # hot path).  The +2 headroom distinguishes "exactly at the
            # cap, newline included" from "over the cap".
            reader = conn.makefile("rb")
            served = 0
            while not self._shutdown.is_set():
                try:
                    line = reader.readline(MAX_LINE_BYTES + 2)
                except socket.timeout:
                    break  # idle connection
                except OSError:
                    break  # client went away mid-read
                received = time.monotonic()
                if not line:
                    break  # clean EOF
                if not line.endswith(b"\n"):
                    if len(line) > MAX_LINE_BYTES:
                        if not self._consume_oversized(reader):
                            break
                        self.metrics.protocol_error("too-large")
                        self._send_bytes(
                            conn,
                            encode(
                                error_response(
                                    None, "too-large",
                                    f"request line exceeds "
                                    f"{MAX_LINE_BYTES} bytes",
                                )
                            ),
                        )
                        continue
                    break  # mid-request disconnect: drop the partial line
                # Capture the epoch once; everything below — wire-cache
                # lookup, dispatch, wire-cache store — uses this state
                # object, so a concurrent hot swap cannot mix epochs
                # within one request.
                state = self._state
                hit = self._wire_cache.get((state.db.db_id, line))
                if hit is not None:
                    started = time.perf_counter()
                    kind, payload = hit
                    ok = self._send_bytes(conn, payload)
                    self.metrics.wire_hit(
                        kind, time.perf_counter() - started
                    )
                    if not ok:
                        break
                else:
                    if not line.strip():
                        continue
                    response, wire_kind = self._dispatch(line, state, received)
                    payload = encode(response)
                    if wire_kind is not None:
                        with self._wire_lock:
                            if len(self._wire_cache) >= self._wire_cap:
                                self._wire_cache.clear()
                            self._wire_cache[(state.db.db_id, bytes(line))] = (
                                wire_kind, payload,
                            )
                    if not self._send_bytes(conn, payload):
                        break
                served += 1
                if served >= self.max_requests_per_connection:
                    break
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._handlers_lock:
                self._handlers.pop(conn_id, None)

    @staticmethod
    def _consume_oversized(reader) -> bool:
        """Swallow the rest of an over-cap line; False on EOF/error."""
        try:
            while True:
                chunk = reader.readline(MAX_LINE_BYTES)
                if not chunk:
                    return False
                if chunk.endswith(b"\n"):
                    return True
        except (OSError, ValueError):
            return False

    def _send_bytes(self, conn: socket.socket, payload: bytes) -> bool:
        try:
            conn.sendall(payload)
            return True
        except (OSError, ValueError):
            return False

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, line: bytes, state: _ServeState, received: float):
        """Handle one request line; returns ``(response, wire_kind)``.

        ``state`` is the epoch captured at receipt; ``received`` is the
        ``time.monotonic()`` instant the line arrived, which anchors the
        client's ``deadline_ms``.  ``wire_kind`` is the query kind when
        the response is eligible for the wire cache (a successful plain
        query), else ``None``.
        """
        self.metrics.request_started()
        admitted: Optional[str] = None
        request_id = None
        try:
            try:
                request = decode_request(line)
            except ProtocolError as err:
                self.metrics.protocol_error(err.code)
                return error_response(None, err.code, str(err)), None
            request_id = request.get("id")
            verb = request["verb"]
            deadline: Optional[float] = None
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None:
                deadline = received + float(deadline_ms) / 1000.0
            try:
                if faults.armed:
                    faults.fire("serve.dispatch")
                if verb in ("query", "batch"):
                    # Dequeue-time deadline check: work whose deadline
                    # passed while queued is rejected before admission,
                    # so it neither occupies a slot nor touches a BDD.
                    if deadline is not None and time.monotonic() >= deadline:
                        raise QueryError(
                            "deadline-exceeded",
                            f"deadline of {deadline_ms}ms passed before "
                            f"dispatch",
                        )
                    kind = request.get("kind") if verb == "query" else "batch"
                    admission_kind = kind if isinstance(kind, str) else "query"
                    self.admission.acquire(admission_kind)
                    admitted = admission_kind
                if verb == "query":
                    result = self._do_query(request, state, deadline)
                    wire_kind = (
                        request["kind"]
                        if not request.get("no_cache") else None
                    )
                    return ok_response(request_id, result), wire_kind
                if verb == "batch":
                    return (
                        ok_response(
                            request_id, self._do_batch(request, state, deadline)
                        ),
                        None,
                    )
                if verb == "hello":
                    return ok_response(request_id, self._do_hello(state)), None
                if verb == "stats":
                    return ok_response(request_id, self._do_stats(state)), None
                if verb == "ping":
                    return ok_response(request_id, {"pong": True}), None
                if verb == "health":
                    return ok_response(request_id, self._do_health(state)), None
                if verb == "reload":
                    result = self.reload(
                        path=request.get("path"),
                        expect_db_id=request.get("expect_db_id"),
                    )
                    return ok_response(request_id, result), None
                if verb == "shutdown":
                    # Answer first; the event stops the accept/serve loops.
                    self._shutdown.set()
                    return ok_response(request_id, {"stopping": True}), None
                raise AssertionError(f"unreachable verb {verb!r}")
            except QueryError as err:
                if err.code in ("overloaded", "deadline-exceeded"):
                    self.metrics.admission_rejected(err.code)
                return error_response(
                    request_id, err.code, str(err), details=err.details
                ), None
            except Exception as err:  # noqa: BLE001 - must not kill the handler
                self.metrics.protocol_error("server-error")
                return error_response(
                    request_id, "server-error",
                    f"internal error: {type(err).__name__}: {err}",
                ), None
        finally:
            if admitted is not None:
                self.admission.release(admitted)
            self.metrics.request_finished()

    def _do_query(
        self,
        request: Dict[str, Any],
        state: _ServeState,
        deadline: Optional[float],
    ) -> Dict[str, Any]:
        kind = request.get("kind")
        if not isinstance(kind, str):
            raise QueryError("bad-argument", "query request lacks a string 'kind'")
        return state.engine.query(
            kind,
            request.get("args") or {},
            timeout=request.get("timeout_s"),
            deadline=deadline,
            use_cache=not request.get("no_cache", False),
        )

    def _do_batch(
        self,
        request: Dict[str, Any],
        state: _ServeState,
        deadline: Optional[float],
    ) -> Dict[str, Any]:
        results: List[Optional[Dict[str, Any]]] = []
        subs: List[Dict[str, Any]] = []
        slots: List[int] = []
        for sub in request["requests"]:
            if not isinstance(sub, dict):
                results.append(
                    error_response(
                        None, "invalid-request", "batch entry must be an object"
                    )
                )
                continue
            results.append(None)
            subs.append(sub)
            slots.append(len(results) - 1)
        # The engine answers the whole batch at once so homogeneous
        # point lookups share a single vectorized BDD evaluation.
        answers = state.engine.query_batch(subs, deadline=deadline)
        for slot, sub, answer in zip(slots, subs, answers):
            sub_id = sub.get("id")
            if isinstance(answer, QueryError):
                results[slot] = error_response(
                    sub_id, answer.code, str(answer), details=answer.details
                )
            else:
                results[slot] = ok_response(sub_id, answer)
        return {"results": results}

    def _do_hello(self, state: _ServeState) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "tool": {"name": "repro", "version": TOOL_VERSION},
            "epoch": state.epoch,
            "db": state.db.summary(),
        }

    def _do_health(self, state: _ServeState) -> Dict[str, Any]:
        """Liveness/readiness probe.  Deliberately cheap (no BDD work,
        no admission) so it answers even under full overload."""
        admission = self.admission.snapshot()
        return {
            "status": "ok",
            "ready": self._started and not self._shutdown.is_set(),
            "epoch": state.epoch,
            "db_id": state.db.db_id,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "epoch_age_s": round(time.monotonic() - state.loaded_at, 3),
            "in_flight": self.metrics.in_flight,
            "pending": admission["pending"],
            "max_pending": admission["max_pending"],
            "reloads": {
                "ok": self.metrics.reloads_ok,
                "failed": self.metrics.reloads_failed,
            },
        }

    def _do_stats(self, state: _ServeState) -> Dict[str, Any]:
        out = self.metrics.snapshot()
        out["epoch"] = state.epoch
        out["engine"] = state.engine.stats()
        out["engine"]["wire_cache_entries"] = len(self._wire_cache)
        out["admission_control"] = self.admission.snapshot()
        return out
