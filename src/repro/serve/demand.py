"""Goal-directed demand evaluation: answer what the ``.ptdb`` cannot.

A compiled database is a snapshot — it answers points-to and mod-ref
queries by cheap BDD restriction, but only for what was materialized at
compile time.  Two kinds of misses used to be terminal:

* a points-to/alias query for a variable outside the database's
  **budget class** (``repro compile-db --budget-class`` stores vP/vPC
  restricted to the variables of matching methods), and
* a mod-ref query against a database compiled with ``--no-modref``.

The :class:`DemandEvaluator` closes both by running a *goal-directed*
subset of the paper's Algorithm 5 (+ mod-ref fragment) rules: the
program is magic-sets rewritten (:mod:`repro.datalog.magic`) for the
four goal shapes the serve engine needs, the embedded fact tables
(``meta["facts"]``) rebuild the inputs without any source program, the
saved ``IE`` tuples re-derive the context numbering (identical to the
compile-time numbering — same Algorithm 4, same inputs; checked against
``meta["paths"]``), and each query seeds the goal's magic relation with
its constants before :meth:`~repro.datalog.solver.Solver.solve_demand`
pushes exactly the new deltas.

The evaluator owns one long-lived solver.  Derived sub-relations stay
materialized in it between queries, so repeated or overlapping demand
queries reuse earlier work — and because the engine (and therefore the
evaluator) is rebuilt per serve epoch, a hot swap invalidates the whole
demand cache atomically.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.base import load_datalog_source
from ..bdd import BDDError
from ..callgraph import call_graph_from_ie, number_call_graph
from ..datalog import Solver, parse_program
from ..datalog.ast import Atom, ProgramAST, RelationDecl, Rule, Variable
from ..datalog.magic import magic_rewrite
from ..datalog.relation import Relation
from ..incremental.diff import FactDiffError
from ..incremental.state import FactSet
from ..runtime import ResourceBudget

__all__ = ["DemandEvaluator", "DemandUnavailable"]


class DemandUnavailable(Exception):
    """This database cannot support demand evaluation (typed reason)."""


# Goal shapes the serve engine asks for, as (predicate, adornment):
#   vP^bf   — context-insensitive points-to for one variable (also
#             aliases: two seeds, intersect the answers),
#   vPC^bbf — points-to of one variable in one context,
#   mod/ref^fbff — mod-ref for one method (any context; a context
#             constraint is applied at answer extraction).
_GOALS: Tuple[Tuple[str, str], ...] = (
    ("vP", "bf"),
    ("vPC", "bbf"),
    ("mod", "fbff"),
    ("ref", "fbff"),
)


class DemandEvaluator:
    """One goal-directed solver per loaded database (per serve epoch)."""

    def __init__(self, db, *, backend: Optional[str] = None) -> None:
        meta = db.meta
        try:
            facts = FactSet.from_db_meta(meta, name=db.path or "<db>")
        except FactDiffError as err:
            raise DemandUnavailable(str(err))
        ie = sorted(tuple(t) for t in db.tuples.get("IE", ()))
        if not facts.relations:
            raise DemandUnavailable(
                "database has no embedded input relations; re-run "
                "'repro compile-db' with a current tool"
            )
        self.db = db
        self.facts = facts
        # Re-derive the compile-time context numbering from the saved
        # call graph (Algorithm 4 is deterministic in its inputs).
        graph = call_graph_from_ie(facts, ie)
        numbering = number_call_graph(graph, entries=facts.entry_method_ids())
        recorded_paths = meta.get("paths")
        if recorded_paths is not None and numbering.max_paths() != recorded_paths:
            raise DemandUnavailable(
                f"context numbering mismatch: database records "
                f"{recorded_paths} paths, rebuilt numbering has "
                f"{numbering.max_paths()} — the database was compiled "
                f"with a non-default context policy"
            )
        source = load_datalog_source("algorithm5", ["query_modref"])
        declared = parse_program(source)
        sizes = {
            dom: facts.sizes[dom]
            for dom in declared.domains
            if dom in facts.sizes
        }
        sizes["C"] = numbering.context_domain_size()
        base = parse_program(source, domain_sizes=sizes)
        self._add_vp_projection(base)
        rewritten = magic_rewrite(base, _GOALS)
        self._goals = rewritten.goals
        name_maps = {
            dom: facts.maps[dom]
            for dom in base.domains
            if dom in facts.maps
        }
        try:
            # Prefer the compile-time variable order; the magic rewrite
            # can resolve fewer logical domain instances than the full
            # program did, in which case the recorded spec no longer
            # names this program's domains and the default order is used.
            solver = Solver(
                rewritten.program,
                order_spec=meta.get("config", {}).get("order_spec"),
                name_maps=name_maps,
                backend=backend,
            )
        except BDDError:
            solver = Solver(
                rewritten.program,
                name_maps=name_maps,
                backend=backend,
            )
        for decl in rewritten.program.relations.values():
            if decl.is_input and decl.name in facts.relations:
                solver.add_tuples(decl.name, facts.relations[decl.name])
        self._install_numbering(solver, numbering, facts)
        self.solver = solver
        # Magic tuples already pushed to fixpoint, per goal relation.
        self._seeded: Dict[str, Set[tuple]] = {}
        self.solves = 0
        self.solve_seconds = 0.0

    @staticmethod
    def _add_vp_projection(program: ProgramAST) -> None:
        """Declare ``vP`` and its context projection of ``vPC``.

        The exhaustive compile materializes vP at packaging time; the
        demand program derives it with an ordinary rule so the magic
        rewrite can drive the vPC computation from a vP goal.
        """
        vpc = program.relations["vPC"]
        program.relations["vP"] = RelationDecl(
            name="vP",
            attributes=tuple(
                a for a in vpc.attributes if a.name in ("variable", "heap")
            ),
            is_output=True,
        )
        c, v, h = (Variable("c"), Variable("v"), Variable("h"))
        program.rules.append(
            Rule(
                head=Atom(relation="vP", terms=(v, h)),
                body=(Atom(relation="vPC", terms=(c, v, h)),),
            )
        )

    @staticmethod
    def _install_numbering(solver: Solver, numbering, facts: FactSet) -> None:
        # Mirrors ContextSensitiveAnalysis._install_numbering.
        iec = solver.relation("IEC")
        entry = facts.method_id(facts.program.entry.qualified)
        node = numbering.build_iec(
            solver.manager,
            iec.attribute("caller").phys,
            iec.attribute("invoke").phys,
            iec.attribute("callee").phys,
            iec.attribute("tgt").phys,
            alloc_sites=facts.alloc_sites,
            global_site=facts.global_site,
            global_method=entry,
        )
        solver.set_node("IEC", node)
        mc = solver.relation("MC")
        solver.set_node(
            "MC",
            numbering.build_mc(
                solver.manager,
                mc.attribute("context").phys,
                mc.attribute("method").phys,
            ),
        )

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def _solve(
        self,
        seeds: Dict[Tuple[str, str], Sequence[tuple]],
        budget: Optional[ResourceBudget],
    ) -> None:
        """Push new goal seeds to fixpoint (no-op when all seen)."""
        magic_seeds: Dict[str, List[tuple]] = {}
        for goal, tuples in seeds.items():
            info = self._goals[goal]
            seen = self._seeded.setdefault(info.magic, set())
            fresh = [t for t in tuples if t not in seen]
            if fresh:
                magic_seeds.setdefault(info.magic, []).extend(fresh)
        if not magic_seeds and self.solver._solved:
            return
        start = time.monotonic()
        try:
            self.solver.solve_demand(magic_seeds, budget=budget)
        finally:
            self.solves += 1
            self.solve_seconds += time.monotonic() - start
        # Only mark seeds consumed after the fixpoint completed — a
        # budget fault must not strand a half-pushed goal as "done".
        for name, tuples in magic_seeds.items():
            self._seeded[name].update(tuples)

    def _answer(self, goal: Tuple[str, str]) -> Relation:
        return self.solver.relation(self._goals[goal].answer)

    # ------------------------------------------------------------------
    # Query entry points (ordinals in, selected Relations out)
    # ------------------------------------------------------------------

    def points_to(
        self,
        variable: int,
        context: Optional[int] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> Relation:
        """Heaps of one variable: a ``(heap,)`` relation."""
        if context is None:
            self._solve({("vP", "bf"): [(variable,)]}, budget)
            return self._answer(("vP", "bf")).select(variable=variable)
        self._solve({("vPC", "bbf"): [(context, variable)]}, budget)
        return self._answer(("vPC", "bbf")).select(
            context=context, variable=variable
        )

    def alias_heaps(
        self,
        var1: int,
        var2: int,
        budget: Optional[ResourceBudget] = None,
    ) -> Tuple[Relation, Relation]:
        """The two ``(heap,)`` relations of an alias query (intersect)."""
        self._solve({("vP", "bf"): [(var1,), (var2,)]}, budget)
        answer = self._answer(("vP", "bf"))
        return answer.select(variable=var1), answer.select(variable=var2)

    def mod_ref(
        self,
        method: int,
        context: Optional[int] = None,
        budget: Optional[ResourceBudget] = None,
    ) -> Tuple[Relation, Relation]:
        """``(heap, field)`` relations a method may modify / reference."""
        self._solve(
            {("mod", "fbff"): [(method,)], ("ref", "fbff"): [(method,)]},
            budget,
        )
        constants: Dict[str, int] = {"m": method}
        if context is not None:
            constants["c"] = context
        mod = self._answer(("mod", "fbff")).select(**constants)
        ref = self._answer(("ref", "fbff")).select(**constants)
        if context is None:
            mod = mod.project("heap", "field")
            ref = ref.project("heap", "field")
        return mod, ref

    def stats(self) -> Dict[str, Any]:
        return {
            "solves": self.solves,
            "solve_seconds": round(self.solve_seconds, 6),
            "seeded": {
                name: len(seen) for name, seen in sorted(self._seeded.items())
            },
            "nodes": self.solver.manager.node_count(),
        }
