"""Supervised serving: keep a ``repro serve`` child alive across crashes.

The job supervisor (:mod:`repro.runtime.supervisor`) runs *finite* jobs
— launch, wait, classify, maybe retry.  A server is the opposite: it is
supposed to run forever, so "retry" becomes "restart" and the success
criterion inverts — a child that exits at all (other than a clean
operator-requested shutdown) is a failure to classify and recover from.
:class:`ServeSupervisor` closes that gap for ``repro serve
--supervised``:

* the serve child runs as a subprocess; its stderr is streamed through
  the supervisor's log with a ``[serve]`` prefix, so the operator sees
  one merged feed;
* the child's announce line (``serving <db_id> on <host>:<port> ...``)
  is parsed to learn the bound address, and the port is **pinned** into
  the child argv before any restart — a server started with ``--port
  0`` keeps its first ephemeral port for its whole supervised lifetime,
  so clients reconnect to the same address across crashes;
* a crash is classified with the same taxonomy as worker jobs
  (:func:`repro.runtime.supervisor.classify_exit`: ``oom-kill``,
  ``abort``, ``segfault``, ``signal:NAME``, ``crash``), a crash report
  is written to ``crash_dir`` / ``$REPRO_CRASH_DIR``, and the child is
  restarted after exponential backoff with jitter;
* each launch exports ``REPRO_SUPERVISOR_ATTEMPT`` so fault injection
  can be attempt-scoped (``abort@serve.dispatch#5~1`` crashes the first
  incarnation and lets the restart run clean — deterministic recovery
  tests);
* a child that stays up for ``stable_after`` seconds earns its restart
  budget back (an incident an hour apart should not accumulate toward
  the ``max_restarts`` limit);
* ``SIGTERM``/``SIGINT`` shut the child down gracefully (``SIGTERM``,
  then ``SIGKILL`` after ``grace``); ``SIGHUP`` is forwarded so the
  hot-swap reload path works identically under supervision.

The clock (``sleep``/``monotonic``/``rng``) is injectable, mirroring
the job supervisor, so restart schedules are testable without sleeping.
"""

from __future__ import annotations

import os
import pathlib
import random
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, List, Optional, TextIO

from ..runtime.errors import WorkerCrashed
from ..runtime.faults import ATTEMPT_VAR
from ..runtime.supervisor import CRASH_DIR_VAR, classify_exit

__all__ = ["ServeSupervisor"]

_ANNOUNCE_RE = re.compile(r"serving (\S+) on (\S+):(\d+) \(protocol")


class ServeSupervisor:
    """Restart a serve child until it exits cleanly or the budget runs out.

    Parameters
    ----------
    argv:
        The child command (e.g. ``[sys.executable, "-m", "repro",
        "serve", "--db", ...]``).  ``--port`` is pinned in place after
        the first announce.
    max_restarts:
        Restarts allowed within one instability window; exceeding it
        raises :class:`WorkerCrashed` (CLI exit 70).
    stable_after:
        A child alive this long resets the restart counter.
    grace:
        Seconds a ``SIGTERM``'d child gets before ``SIGKILL``.
    """

    def __init__(
        self,
        argv: List[str],
        *,
        max_restarts: int = 5,
        stable_after: float = 30.0,
        grace: float = 5.0,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        jitter: float = 0.1,
        crash_dir: Optional[str] = None,
        env: Optional[Dict[str, str]] = None,
        log: Optional[TextIO] = None,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.argv = list(argv)
        self.max_restarts = max(0, int(max_restarts))
        self.stable_after = stable_after
        self.grace = grace
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.crash_dir = crash_dir
        self.env = dict(env) if env is not None else None
        self._log = log if log is not None else sys.stderr
        self._sleep = sleep
        self._monotonic = monotonic
        self._rng = rng if rng is not None else random.Random()
        # Learned from the child's announce line.
        self.db_id: Optional[str] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.ready = threading.Event()
        self.restarts = 0
        self.attempt = 0
        self._crash_seq = 0
        self._proc: Optional[subprocess.Popen] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Logging / announce parsing
    # ------------------------------------------------------------------

    def _print(self, message: str) -> None:
        try:
            print(message, file=self._log, flush=True)
        except ValueError:
            pass

    def _pump_stderr(self, stream) -> None:
        """Forward child stderr to the log, watching for the announce."""
        for raw in iter(stream.readline, b""):
            text = raw.decode("utf-8", "replace").rstrip("\n")
            match = _ANNOUNCE_RE.search(text)
            if match:
                self.db_id = match.group(1)
                self.host = match.group(2)
                self.port = int(match.group(3))
                self._pin_port(self.port)
                self.ready.set()
            self._print(f"[serve] {text}")
        try:
            stream.close()
        except OSError:
            pass

    def _pin_port(self, port: int) -> None:
        """Rewrite ``--port`` in the child argv so restarts rebind the
        same address the first incarnation announced."""
        argv = self.argv
        for i, arg in enumerate(argv):
            if arg == "--port" and i + 1 < len(argv):
                argv[i + 1] = str(port)
                return
            if arg.startswith("--port="):
                argv[i] = f"--port={port}"
                return
        argv.extend(["--port", str(port)])

    # ------------------------------------------------------------------
    # Child lifecycle
    # ------------------------------------------------------------------

    def _child_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        if self.env is not None:
            env.update(self.env)
        env[ATTEMPT_VAR] = str(self.attempt)
        return env

    def _spawn(self) -> subprocess.Popen:
        proc = subprocess.Popen(
            self.argv,
            stderr=subprocess.PIPE,
            env=self._child_env(),
        )
        threading.Thread(
            target=self._pump_stderr,
            args=(proc.stderr,),
            name="serve-supervisor-log",
            daemon=True,
        ).start()
        return proc

    def _terminate(self, proc: subprocess.Popen) -> None:
        """SIGTERM → (grace) → SIGKILL, same escalation as job workers."""
        if proc.poll() is not None:
            return
        try:
            proc.terminate()
        except OSError:
            return
        try:
            proc.wait(timeout=self.grace)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    def stop(self) -> None:
        """Request a clean shutdown of the supervisor and its child."""
        self._stop.set()
        proc = self._proc
        if proc is not None:
            self._terminate(proc)

    def reload(self) -> None:
        """Forward a reload request (SIGHUP) to the serve child."""
        proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                os.kill(proc.pid, signal.SIGHUP)
            except OSError:
                pass

    def _install_signal_handlers(self) -> None:
        def _shutdown(_sig, _frm):
            self._stop.set()
            proc = self._proc
            if proc is not None and proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass

        try:
            signal.signal(signal.SIGTERM, _shutdown)
            signal.signal(signal.SIGHUP, lambda _s, _f: self.reload())
        except (ValueError, OSError, AttributeError):
            pass  # non-main thread (tests) or platform without the signals

    # ------------------------------------------------------------------
    # The restart loop
    # ------------------------------------------------------------------

    def _backoff(self, restart: int) -> float:
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (restart - 1),
        )
        return delay * (1.0 + self.jitter * self._rng.random())

    def run(self) -> int:
        """Supervise until the child exits cleanly (returns 0) or the
        restart budget is exhausted (raises :class:`WorkerCrashed`)."""
        self._install_signal_handlers()
        while True:
            started = self._monotonic()
            self._print(
                f"supervisor: starting serve child "
                f"(attempt {self.attempt}, restarts {self.restarts})"
            )
            proc = self._spawn()
            self._proc = proc
            try:
                returncode = proc.wait()
            except KeyboardInterrupt:
                self._stop.set()
                self._terminate(proc)
                returncode = proc.returncode
            uptime = self._monotonic() - started
            self._proc = None
            if self._stop.is_set() or returncode == 0:
                self._print(
                    f"supervisor: serve child exited "
                    f"{returncode} after {uptime:.1f}s; done"
                )
                return 0
            term_signal = -returncode if returncode < 0 else None
            classification, message = classify_exit(returncode, term_signal)
            self._print(
                f"supervisor: serve child died after {uptime:.1f}s: "
                f"{classification} ({message})"
            )
            self._report_crash(classification, message, returncode, uptime)
            if uptime >= self.stable_after:
                self.restarts = 0
            self.restarts += 1
            self.attempt += 1
            if self.restarts > self.max_restarts:
                raise WorkerCrashed(
                    f"serve child crashed {self.restarts} times within the "
                    f"stability window; giving up: {classification}"
                    + (f" ({message})" if message else ""),
                    classification=classification,
                    exit_code=returncode,
                    term_signal=term_signal,
                )
            delay = self._backoff(self.restarts)
            self._print(f"supervisor: restarting in {delay:.2f}s")
            self._sleep(delay)

    # ------------------------------------------------------------------
    # Crash reports
    # ------------------------------------------------------------------

    def _report_crash(
        self,
        classification: str,
        message: str,
        returncode: int,
        uptime: float,
    ) -> None:
        crash_dir = self.crash_dir or os.environ.get(CRASH_DIR_VAR)
        if not crash_dir:
            return
        self._crash_seq += 1
        path = (
            pathlib.Path(crash_dir)
            / f"crash-{os.getpid()}-{self._crash_seq:03d}.json"
        )
        try:
            import json

            path.parent.mkdir(parents=True, exist_ok=True)
            report = {
                "job": {"serve": self.argv},
                "attempt": {
                    "attempt": self.attempt,
                    "classification": classification,
                    "message": message,
                    "exit_code": returncode,
                    "uptime_s": round(uptime, 3),
                    "db_id": self.db_id,
                    "address": (
                        f"{self.host}:{self.port}" if self.port else None
                    ),
                },
            }
            path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - diagnostics must never fail a run
            pass
