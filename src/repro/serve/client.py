"""Blocking client for the demand-query protocol.

Used by ``repro query --server``, the serve benchmark, the CI smoke
script, and the protocol tests.  One socket, sequential request ids,
context-manager lifecycle::

    with PointsToClient("127.0.0.1", 7777) as client:
        hello = client.hello()
        pts = client.query("points-to", {"variable": "Main.main:s"})

A server-side error response raises :class:`ServerError` carrying the
typed code; transport problems surface as :class:`ConnectionError`.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from .protocol import MAX_LINE_BYTES, LineReader, encode

__all__ = ["PointsToClient", "ServerError"]


class ServerError(Exception):
    """The server answered with ``ok: false``."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class PointsToClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7777,
        *,
        timeout: Optional[float] = 30.0,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock, MAX_LINE_BYTES)
        self._next_id = 0

    # ------------------------------------------------------------------

    def __enter__(self) -> "PointsToClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the raw response object."""
        obj = dict(obj)
        self._next_id += 1
        obj.setdefault("id", self._next_id)
        self._sock.sendall(encode(obj))
        line = self._reader.read_line()
        if line is None:
            raise ConnectionError("server closed the connection")
        import json

        response = json.loads(line)
        if response.get("id") not in (obj["id"], None):
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {obj['id']!r}"
            )
        return response

    def _result(self, response: Dict[str, Any]) -> Any:
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServerError(
            error.get("code", "server-error"),
            error.get("message", "unspecified server error"),
        )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "hello"}))

    def ping(self) -> bool:
        return bool(self._result(self.request({"verb": "ping"}))["pong"])

    def query(
        self,
        kind: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        no_cache: bool = False,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"verb": "query", "kind": kind, "args": args or {}}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        if no_cache:
            request["no_cache"] = True
        return self._result(self.request(request))

    def batch(self, queries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Send query dicts (``{"kind": ..., "args": ...}``); returns the
        per-query response objects (each ``ok``/``error`` in order)."""
        subs = [dict(q, verb="query") for q in queries]
        result = self._result(self.request({"verb": "batch", "requests": subs}))
        return result["results"]

    def stats(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "stats"}))

    def shutdown(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "shutdown"}))
