"""Clients for the demand-query protocol: blocking and resilient.

:class:`PointsToClient` is the simple blocking client — one socket,
sequential request ids, context-manager lifecycle::

    with PointsToClient("127.0.0.1", 7777) as client:
        hello = client.hello()
        pts = client.query("points-to", {"variable": "Main.main:s"})

A server-side error response raises :class:`ServerError` carrying the
typed code (and any structured details, e.g. ``retry_after_ms`` on an
``overloaded`` rejection); transport problems raise
:class:`ConnectionLostError`, which lives in *both* hierarchies — it is
a :class:`QueryError` (code ``connection-lost``, so the CLI's one
exit-code map covers it) and a :class:`ConnectionError` (so existing
``except ConnectionError`` sites keep working).

:class:`ResilientClient` wraps the blocking client for always-on use
against a server that restarts, hot-swaps, and sheds load:

* **reconnect** — a lost connection is re-established transparently on
  the next call,
* **retry with backoff** — transport failures retry up to
  ``max_retries`` times with exponential backoff and jitter; the clock
  (``sleep``/``monotonic``/``rng``) is injectable, so tests run the
  whole ladder in microseconds,
* **retry-after honoring** — an ``overloaded`` rejection sleeps for the
  server's ``retry_after_ms`` hint (these retries do not trip the
  breaker: a load-shedding server is *healthy*),
* **circuit breaker** — after ``failure_threshold`` consecutive
  transport failures the breaker opens and calls fail fast with a typed
  ``circuit-open`` error until ``reset_after`` seconds pass; the first
  call after that runs as a half-open probe whose outcome closes or
  re-opens the circuit.

Used by ``repro query --server``, the serve and chaos benchmarks, the
CI smoke script, and the protocol tests.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from .engine import QueryError
from .protocol import MAX_LINE_BYTES, LineReader, encode

__all__ = [
    "CircuitBreaker",
    "ConnectionLostError",
    "PointsToClient",
    "ResilientClient",
    "ServerError",
]


class ConnectionLostError(QueryError, ConnectionError):
    """The transport died: refused connect, reset, EOF, or a garbled
    response stream.  A :class:`QueryError` with code ``connection-lost``
    *and* a :class:`ConnectionError`, so both the typed exit-code map and
    pre-existing transport handlers see it."""

    def __init__(self, message: str) -> None:
        QueryError.__init__(self, "connection-lost", message)


class ServerError(Exception):
    """The server answered with ``ok: false``."""

    def __init__(
        self, code: str, message: str, details: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.details = details or {}


class PointsToClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7777,
        *,
        timeout: Optional[float] = 30.0,
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as err:
            raise ConnectionLostError(
                f"cannot connect to {host}:{port}: {err}"
            ) from err
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = LineReader(self._sock, MAX_LINE_BYTES)
        self._next_id = 0

    # ------------------------------------------------------------------

    def __enter__(self) -> "PointsToClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the raw response object."""
        obj = dict(obj)
        self._next_id += 1
        obj.setdefault("id", self._next_id)
        try:
            self._sock.sendall(encode(obj))
            line = self._reader.read_line()
        except (OSError, ValueError) as err:
            raise ConnectionLostError(f"transport failure: {err}") from err
        if line is None:
            raise ConnectionLostError("server closed the connection")
        try:
            response = json.loads(line)
        except ValueError as err:
            raise ConnectionLostError(
                f"unparseable response line: {err}"
            ) from err
        if response.get("id") not in (obj["id"], None):
            raise ConnectionLostError(
                f"response id {response.get('id')!r} does not match "
                f"request id {obj['id']!r}"
            )
        return response

    def _result(self, response: Dict[str, Any]) -> Any:
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServerError(
            error.get("code", "server-error"),
            error.get("message", "unspecified server error"),
            details={
                k: v for k, v in error.items() if k not in ("code", "message")
            },
        )

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "hello"}))

    def ping(self) -> bool:
        return bool(self._result(self.request({"verb": "ping"}))["pong"])

    def health(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "health"}))

    def query(
        self,
        kind: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        no_cache: bool = False,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"verb": "query", "kind": kind, "args": args or {}}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if no_cache:
            request["no_cache"] = True
        return self._result(self.request(request))

    def batch(self, queries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Send query dicts (``{"kind": ..., "args": ...}``); returns the
        per-query response objects (each ``ok``/``error`` in order)."""
        subs = [dict(q, verb="query") for q in queries]
        result = self._result(self.request({"verb": "batch", "requests": subs}))
        return result["results"]

    def stats(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "stats"}))

    def reload(
        self,
        path: Optional[str] = None,
        expect_db_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"verb": "reload"}
        if path is not None:
            request["path"] = path
        if expect_db_id is not None:
            request["expect_db_id"] = expect_db_id
        return self._result(self.request(request))

    def shutdown(self) -> Dict[str, Any]:
        return self._result(self.request({"verb": "shutdown"}))


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    Single-threaded by design: each :class:`ResilientClient` owns one
    breaker and one socket.  ``allow`` raises a typed ``circuit-open``
    :class:`QueryError` while the circuit is open; once ``reset_after``
    seconds pass it lets exactly one half-open probe through, and that
    probe's outcome (``record_success``/``record_failure``) closes or
    re-opens the circuit.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 5.0,
        *,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_after = float(reset_after)
        self._monotonic = monotonic
        self.state = self.CLOSED
        self.failures = 0
        self._opened_at = 0.0

    def allow(self) -> None:
        if self.state == self.OPEN:
            elapsed = self._monotonic() - self._opened_at
            if elapsed < self.reset_after:
                remaining = self.reset_after - elapsed
                raise QueryError(
                    "circuit-open",
                    f"circuit breaker open after {self.failures} consecutive "
                    f"failures; retry in {remaining:.2f}s",
                    details={"retry_after_ms": int(remaining * 1000) + 1},
                )
            self.state = self.HALF_OPEN

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.failure_threshold:
            self.state = self.OPEN
            self._opened_at = self._monotonic()


class ResilientClient:
    """Self-healing client: reconnect, backoff, breaker, retry-after.

    The retry loop distinguishes three failure classes:

    * transport failures (:class:`ConnectionLostError`) — drop the
      socket, charge the breaker, back off exponentially, retry;
    * ``overloaded`` rejections — sleep for the server's
      ``retry_after_ms`` hint and retry *without* charging the breaker
      (shedding load is correct behavior, not a failure);
    * every other typed error — propagate immediately (retrying a
      ``bad-argument`` or ``deadline-exceeded`` cannot help).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7777,
        *,
        timeout: Optional[float] = 30.0,
        max_retries: int = 5,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 2.0,
        jitter: float = 0.1,
        failure_threshold: int = 5,
        reset_after: float = 1.0,
        sleep: Callable[[float], None] = time.sleep,
        monotonic: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self.breaker = CircuitBreaker(
            failure_threshold, reset_after, monotonic=monotonic
        )
        self._client: Optional[PointsToClient] = None
        # Observability counters (the chaos bench reads these).
        self.reconnects = 0
        self.retries = 0
        self.overload_waits = 0

    # ------------------------------------------------------------------

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _connected(self) -> PointsToClient:
        if self._client is None:
            self._client = PointsToClient(
                self.host, self.port, timeout=self.timeout
            )
            self.reconnects += 1
        return self._client

    def _drop(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def _backoff(self, attempt: int) -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
        )
        return base * (1.0 + self.jitter * self._rng.random())

    # ------------------------------------------------------------------

    def call(self, obj: Dict[str, Any]) -> Any:
        """Send one request with full retry semantics; returns the typed
        result (raises :class:`ServerError`/:class:`QueryError`)."""
        last: Optional[Exception] = None
        for attempt in range(self.max_retries + 1):
            self.breaker.allow()
            try:
                client = self._connected()
                response = client.request(obj)
            except ConnectionLostError as err:
                self.breaker.record_failure()
                self._drop()
                last = err
                if attempt < self.max_retries:
                    self.retries += 1
                    self._sleep(self._backoff(attempt + 1))
                    continue
                raise
            self.breaker.record_success()
            try:
                return client._result(response)
            except ServerError as err:
                if err.code == "overloaded" and attempt < self.max_retries:
                    hint_ms = err.details.get("retry_after_ms", 100)
                    self.overload_waits += 1
                    self.retries += 1
                    self._sleep(float(hint_ms) / 1000.0)
                    continue
                raise
        raise last if last is not None else ConnectionLostError(
            "retry loop exhausted without a response"
        )

    # ------------------------------------------------------------------
    # Verbs (same surface as PointsToClient)
    # ------------------------------------------------------------------

    def hello(self) -> Dict[str, Any]:
        return self.call({"verb": "hello"})

    def ping(self) -> bool:
        return bool(self.call({"verb": "ping"})["pong"])

    def health(self) -> Dict[str, Any]:
        return self.call({"verb": "health"})

    def query(
        self,
        kind: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        timeout_s: Optional[float] = None,
        deadline_ms: Optional[float] = None,
        no_cache: bool = False,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"verb": "query", "kind": kind, "args": args or {}}
        if timeout_s is not None:
            request["timeout_s"] = timeout_s
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if no_cache:
            request["no_cache"] = True
        return self.call(request)

    def batch(self, queries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        subs = [dict(q, verb="query") for q in queries]
        return self.call({"verb": "batch", "requests": subs})["results"]

    def stats(self) -> Dict[str, Any]:
        return self.call({"verb": "stats"})

    def reload(
        self,
        path: Optional[str] = None,
        expect_db_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {"verb": "reload"}
        if path is not None:
            request["path"] = path
        if expect_db_id is not None:
            request["expect_db_id"] = expect_db_id
        return self.call(request)

    def shutdown(self) -> Dict[str, Any]:
        return self.call({"verb": "shutdown"})
