"""``repro.serve`` — solve once, answer many.

The serving layer splits the paper's workflow in two:

* **compile** (:func:`compile_database`) runs the full solver stack and
  packages the solved relations, name maps, and provenance into a
  versioned, checksummed ``.ptdb`` artifact
  (:class:`PointsToDatabase`), and
* **answer** (:class:`QueryEngine`, :class:`PointsToServer`,
  :class:`PointsToClient`) loads that artifact in O(file) and evaluates
  demand queries — points-to, aliases, mod-ref, callers, escape — by
  cheap BDD restriction, with caching, per-request budgets, and metrics.

The server is built to stay up: hot-swap database reloads (the
``reload`` verb / ``SIGHUP``) publish a new epoch atomically while
in-flight queries drain on the old one; admission control sheds excess
load with typed ``overloaded`` errors; client deadlines propagate into
the engine's budget watchdog.  :class:`ResilientClient` pairs with it —
reconnect, exponential backoff, a :class:`CircuitBreaker`, and
retry-after honoring — and :class:`ServeSupervisor` keeps the whole
process alive across crashes (``repro serve --supervised``).

CLI entry points: ``repro compile-db``, ``repro serve``,
``repro query --db``.
"""

from .database import (
    FORMAT_VERSION,
    CompileState,
    PointsToDatabase,
    compile_database,
    compile_database_with_state,
    package_database,
)
from .demand import DemandEvaluator, DemandUnavailable
from .engine import QUERY_KINDS, QueryEngine, QueryError
from .metrics import Metrics
from .protocol import MAX_BATCH, MAX_LINE_BYTES, PROTOCOL_VERSION, ProtocolError
from .server import PointsToServer
from .client import (
    CircuitBreaker,
    ConnectionLostError,
    PointsToClient,
    ResilientClient,
    ServerError,
)
from .supervise import ServeSupervisor

__all__ = [
    "FORMAT_VERSION",
    "MAX_BATCH",
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "QUERY_KINDS",
    "CircuitBreaker",
    "ConnectionLostError",
    "DemandEvaluator",
    "DemandUnavailable",
    "Metrics",
    "PointsToClient",
    "PointsToDatabase",
    "PointsToServer",
    "ProtocolError",
    "QueryEngine",
    "QueryError",
    "ResilientClient",
    "ServeSupervisor",
    "ServerError",
    "CompileState",
    "compile_database",
    "compile_database_with_state",
    "package_database",
]
