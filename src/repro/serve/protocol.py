"""The newline-delimited JSON wire protocol (version 2).

One request per line, one response line per request, UTF-8.  A request is
a JSON object::

    {"id": 7, "verb": "query", "kind": "points-to",
     "args": {"variable": "Main.main:s"}, "timeout_s": 2.0}

Verbs:

``hello``
    Handshake: returns protocol version, tool version, and the loaded
    database's id and summary.  Optional — clients may query directly.
``query``
    Evaluate one demand query (``kind`` + ``args``).  ``timeout_s``
    bounds the evaluation; ``deadline_ms`` is a client-supplied deadline
    relative to server receipt (checked before dispatch and enforced
    mid-query); ``no_cache: true`` bypasses the result cache.
``batch``
    ``requests`` holds a list of query request objects; the response's
    ``results`` list answers them in order (individual failures become
    error objects in-place, the batch itself still succeeds).
``stats``
    Server metrics snapshot plus engine cache occupancy.
``ping``
    Liveness check.
``health``
    Readiness probe: current epoch, db id, uptime, reload counters.
    Never subject to admission control — answers even under overload.
``reload``
    Hot-swap the served database: load a candidate ``.ptdb`` (from
    ``path``, default the originally served file) off the request path,
    validate it, and publish it atomically under a new epoch.  Optional
    ``expect_db_id`` pins the candidate's identity.  A failed candidate
    leaves the old database serving and answers ``reload-failed``.
``shutdown``
    Ask the server to stop accepting and drain (used by tests/CLI).

Responses mirror the request ``id`` and carry either ``"ok": true`` and
a ``result``, or ``"ok": false`` and an ``error`` object::

    {"id": 7, "ok": false,
     "error": {"code": "not-found", "message": "unknown variable ..."}}

Error codes: ``parse-error``, ``invalid-request``, ``unknown-verb``,
``unknown-query``, ``bad-argument``, ``not-found``, ``unsupported``,
``budget-exceeded``, ``too-large``, ``server-error``, ``shutting-down``,
``overloaded`` (admission control rejected the request; the error object
carries a ``retry_after_ms`` hint), ``deadline-exceeded`` (the client's
``deadline_ms`` passed before or during evaluation), and
``reload-failed`` (a hot-swap candidate did not validate; the previous
database is still serving).
A protocol-level fault (unparseable line, oversized request) is answered
on a best-effort basis and the connection stays open; the server only
closes a connection when the client disconnects, idles past the
per-connection limit, or the server shuts down.

Version history: v2 added ``health``/``reload``, ``deadline_ms``, and
the three always-on error codes above.  v2 servers answer every v1
request unchanged, so v1 clients interoperate.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "MAX_BATCH",
    "ERROR_CODES",
    "ProtocolError",
    "encode",
    "decode_request",
    "error_response",
    "ok_response",
    "read_line",
]

PROTOCOL_VERSION = 2

# Operational limits (documented in docs/serving.md).
MAX_LINE_BYTES = 1 << 20  # 1 MiB per request line
MAX_BATCH = 256  # sub-requests per batch

VERBS = (
    "hello", "query", "batch", "stats", "ping", "health", "reload",
    "shutdown",
)

ERROR_CODES = (
    "parse-error",
    "invalid-request",
    "unknown-verb",
    "unknown-query",
    "bad-argument",
    "not-found",
    "unsupported",
    "budget-exceeded",
    "too-large",
    "server-error",
    "shutting-down",
    "overloaded",
    "deadline-exceeded",
    "reload-failed",
)


class ProtocolError(Exception):
    """A malformed or oversized request; carries the typed error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode(obj: Dict[str, Any]) -> bytes:
    """One response/request as a wire line (compact JSON + newline)."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def ok_response(request_id: Any, result: Any) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(
    request_id: Any,
    code: str,
    message: str,
    details: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """``details`` (e.g. ``{"retry_after_ms": 50}``) is merged into the
    error object alongside ``code`` and ``message``."""
    error: Dict[str, Any] = {"code": code, "message": message}
    if details:
        error.update(details)
    return {"id": request_id, "ok": False, "error": error}


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse and structurally validate one request line.

    Raises :class:`ProtocolError` (``parse-error`` / ``invalid-request``
    / ``unknown-verb``) on anything wrong; validation of query *arguments*
    is the engine's job, not the protocol's.
    """
    try:
        obj = json.loads(line.decode("utf-8", errors="strict"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError("parse-error", f"request is not valid JSON: {err}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            "invalid-request", f"request must be a JSON object, got {type(obj).__name__}"
        )
    verb = obj.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError("invalid-request", "request lacks a string 'verb'")
    if verb not in VERBS:
        raise ProtocolError(
            "unknown-verb", f"unknown verb {verb!r} (have {', '.join(VERBS)})"
        )
    if verb == "query":
        if "kind" in obj and not isinstance(obj["kind"], str):
            raise ProtocolError("invalid-request", "'kind' must be a string")
        if "args" in obj and not isinstance(obj["args"], dict):
            raise ProtocolError("invalid-request", "'args' must be an object")
        if "timeout_s" in obj and not isinstance(obj["timeout_s"], (int, float)):
            raise ProtocolError("invalid-request", "'timeout_s' must be a number")
        if "deadline_ms" in obj:
            deadline = obj["deadline_ms"]
            if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
                    or deadline < 0:
                raise ProtocolError(
                    "invalid-request",
                    "'deadline_ms' must be a non-negative number",
                )
    if verb == "reload":
        if "path" in obj and not isinstance(obj["path"], str):
            raise ProtocolError("invalid-request", "'path' must be a string")
        if "expect_db_id" in obj and not isinstance(obj["expect_db_id"], str):
            raise ProtocolError(
                "invalid-request", "'expect_db_id' must be a string"
            )
    if verb == "batch":
        requests = obj.get("requests")
        if not isinstance(requests, list):
            raise ProtocolError("invalid-request", "'requests' must be a list")
        if len(requests) > MAX_BATCH:
            raise ProtocolError(
                "too-large",
                f"batch of {len(requests)} exceeds the limit of {MAX_BATCH}",
            )
    return obj


class LineReader:
    """Reads newline-delimited frames from a socket with a size cap.

    An over-long line is consumed to its newline (so the connection can
    continue) and reported as a ``too-large`` :class:`ProtocolError`.
    Returns ``None`` at EOF.
    """

    def __init__(self, sock, max_bytes: int = MAX_LINE_BYTES) -> None:
        self._sock = sock
        self._max = max_bytes
        self._buf = b""

    def read_line(self) -> Optional[bytes]:
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                line, self._buf = self._buf[:nl], self._buf[nl + 1:]
                return line
            if len(self._buf) > self._max:
                self._discard_to_newline()
                raise ProtocolError(
                    "too-large",
                    f"request line exceeds {self._max} bytes",
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buf:
                    # Mid-request disconnect: drop the partial line.
                    self._buf = b""
                return None
            self._buf += chunk

    def _discard_to_newline(self) -> None:
        """Swallow the rest of an oversized line."""
        while True:
            nl = self._buf.find(b"\n")
            if nl >= 0:
                self._buf = self._buf[nl + 1:]
                return
            self._buf = b""
            chunk = self._sock.recv(65536)
            if not chunk:
                return


def read_line(sock, max_bytes: int = MAX_LINE_BYTES) -> Optional[bytes]:
    """One-shot convenience for tests; real callers hold a LineReader."""
    return LineReader(sock, max_bytes).read_line()
