"""Demand-query engine over a loaded :class:`PointsToDatabase`.

Queries are point lookups evaluated by BDD ``select`` (restrict +
existential quantification) against the solved relations — no fixpoint,
no solver.  Five kinds:

``points-to(v)``
    Heap names ``v`` may point to; context-sensitive variant when a
    ``context`` argument is given (reads ``vPC`` instead of ``vP``).
``aliases(v1, v2)``
    Whether two variables may point to a common object, with the common
    heap names as evidence.
``mod-ref(m)``
    Heap/field pairs method ``m`` may modify or read, transitively
    (requires a database compiled with the mod-ref fragment).
``callers(m)``
    Invocation sites (and their enclosing methods) that may call ``m``,
    from the ``IE`` edges.
``escape(h)``
    Thread-escape verdict for an allocation site.

Concurrency: the BDD manager is not thread-safe (shared unique table and
operation caches), so all BDD evaluation is serialized under one lock.
Three mechanisms keep the lock from being the bottleneck:

* a bounded LRU cache keyed by ``(db_id, kind, canonical args)`` holding
  *pre-encoded* result dicts — hits never touch the lock,
* in-flight deduplication — concurrent identical misses run the
  evaluator once; the waiters get the same result and count as hits,
* per-request :class:`ResourceBudget` enforcement — a watchdog on the
  manager plus deadline checks in the decode loops, so one pathological
  query cannot starve the rest for long and returns a *typed*
  ``budget-exceeded`` error rather than killing the connection.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..datalog.relation import Relation
from ..runtime import (
    NodeBudgetExceeded,
    ResourceBudget,
    SolverTimeout,
    Watchdog,
)
from .database import PointsToDatabase
from .demand import DemandEvaluator, DemandUnavailable
from .metrics import Metrics

__all__ = ["QueryEngine", "QueryError", "QUERY_KINDS"]

QUERY_KINDS = ("points-to", "aliases", "mod-ref", "callers", "escape")

_DEFAULT_CACHE_SIZE = 1024
# Decode loops check the deadline every this many tuples.
_DECODE_CHECK_STRIDE = 256


class QueryError(Exception):
    """A query failed in a way the client should see as a typed error.

    ``code`` is one of the protocol error codes (``bad-argument``,
    ``not-found``, ``unsupported``, ``demand-unavailable``,
    ``budget-exceeded``, ``deadline-exceeded``, ``overloaded``,
    ``reload-failed``) or one of the client-side transport codes
    (``connection-lost``, ``circuit-open``) — the whole typed-failure
    hierarchy of the serve subsystem roots here, so one exit-code map
    covers it.
    """

    def __init__(
        self, code: str, message: str, details: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.code = code
        # Optional structured payload merged into the wire error object
        # (e.g. ``retry_after_ms`` on an ``overloaded`` rejection).
        self.details = details


class _InFlight:
    """One in-progress computation; late arrivals wait on the event."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[QueryError] = None


class QueryEngine:
    """Evaluates demand queries against one loaded database."""

    def __init__(
        self,
        db: PointsToDatabase,
        *,
        cache_size: int = _DEFAULT_CACHE_SIZE,
        default_timeout: Optional[float] = None,
        metrics: Optional[Metrics] = None,
        enable_demand: bool = True,
    ) -> None:
        self.db = db
        self.metrics = metrics if metrics is not None else Metrics()
        self.default_timeout = default_timeout
        # Demand evaluation closes the misses a snapshot cannot answer
        # (budget-class-uncovered variables, mod-ref without the
        # fragment).  The evaluator is built lazily on the first eligible
        # miss and lives exactly as long as this engine — one per serve
        # epoch, so a hot swap drops all derived sub-relations at once.
        self.enable_demand = enable_demand
        self._demand_eval: Optional[DemandEvaluator] = None
        self._demand_error: Optional[str] = None
        self._cache_size = max(0, int(cache_size))
        self._cache: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()
        self._cache_lock = threading.Lock()
        # Serializes all access to the BDD manager (not thread-safe).
        self._eval_lock = threading.Lock()
        self._inflight: Dict[tuple, _InFlight] = {}
        self._inflight_lock = threading.Lock()
        self._evaluators = {
            "points-to": self._eval_points_to,
            "aliases": self._eval_aliases,
            "mod-ref": self._eval_mod_ref,
            "callers": self._eval_callers,
            "escape": self._eval_escape,
        }
        self._callers_index: Optional[Dict[int, List[int]]] = None

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def query(
        self,
        kind: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        use_cache: bool = True,
    ) -> Dict[str, Any]:
        """Evaluate one query; returns a JSON-serializable result dict.

        ``deadline`` is an absolute ``time.monotonic`` instant (the serve
        layer derives it from the client's ``deadline_ms`` at request
        receipt).  It is checked up front and enforced mid-query through
        the same :class:`ResourceBudget` watchdog as ``timeout``; when
        the deadline is the binding constraint, expiry surfaces as a
        typed ``deadline-exceeded`` rather than ``budget-exceeded``.

        Raises :class:`QueryError` for anything the caller did wrong or a
        blown budget; never raises for concurrent access.
        """
        start = time.monotonic()
        args = dict(args or {})
        evaluator = self._evaluators.get(kind)
        if evaluator is None:
            self.metrics.observe_query(
                str(kind), time.monotonic() - start,
                cache_hit=False, computed=False, error=True,
            )
            raise QueryError(
                "unknown-query",
                f"unknown query kind {kind!r} (have {', '.join(QUERY_KINDS)})",
            )
        if deadline is not None and deadline <= start:
            # Checked before any work (even a cache hit): an answer past
            # the client's deadline is an answer the client discarded.
            self.metrics.observe_query(
                kind, 0.0, cache_hit=False, computed=False, error=True,
            )
            raise QueryError(
                "deadline-exceeded",
                f"deadline passed {(start - deadline) * 1e3:.0f}ms "
                f"before evaluation started",
            )
        key = (self.db.db_id, kind, _canonical(args))

        if use_cache:
            hit = self._cache_get(key)
            if hit is not None:
                negative = hit.get("__query_error__")
                self.metrics.observe_query(
                    kind, time.monotonic() - start,
                    cache_hit=True, computed=False,
                    error=negative is not None,
                )
                if negative is not None:
                    # A cached typed failure: repeating the lookup would
                    # fail identically, so replay it without the lock.
                    raise QueryError(negative[0], negative[1])
                return hit

        # In-flight dedup: first thread computes, the rest wait.
        owner = False
        with self._inflight_lock:
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _InFlight()
                owner = True
        if not owner:
            flight.event.wait()
            if flight.error is not None:
                self.metrics.observe_query(
                    kind, time.monotonic() - start,
                    cache_hit=False, computed=False, error=True,
                )
                raise flight.error
            assert flight.result is not None
            self.metrics.observe_query(
                kind, time.monotonic() - start,
                cache_hit=True, computed=False,
            )
            return flight.result

        try:
            budget, deadline_bound = self._budget_for(timeout, deadline)
            try:
                with self._eval_lock:
                    result = self._evaluate(evaluator, args, budget)
            except SolverTimeout as err:
                if deadline_bound:
                    raise QueryError(
                        "deadline-exceeded",
                        f"deadline passed mid-query: {err}",
                    )
                raise QueryError("budget-exceeded", str(err))
            except NodeBudgetExceeded as err:
                raise QueryError("budget-exceeded", str(err))
            if use_cache:
                self._cache_put(key, result)
            flight.result = result
            self.metrics.observe_query(
                kind, time.monotonic() - start,
                cache_hit=False, computed=True,
            )
            return result
        except QueryError as err:
            flight.error = err
            if use_cache and err.code == "not-found":
                # Name-resolution failures are as stable as the database
                # itself (the key includes db_id): cache the typed error
                # so repeated lookups of a missing name skip the lock.
                self._cache_put(
                    key, {"__query_error__": (err.code, str(err))}
                )
            self.metrics.observe_query(
                kind, time.monotonic() - start,
                cache_hit=False, computed=False, error=True,
            )
            raise
        finally:
            flight.event.set()
            with self._inflight_lock:
                self._inflight.pop(key, None)

    def query_batch(
        self,
        requests: List[Dict[str, Any]],
        *,
        deadline: Optional[float] = None,
    ) -> List[Any]:
        """Answer a list of protocol sub-requests (the ``batch`` verb).

        Homogeneous ``points-to`` point lookups are answered with one
        BDD evaluation instead of N: the missing variables are encoded
        as a query relation (an OR of per-variable cubes), conjoined
        with ``vP`` (or ``vPC`` for context-sensitive items) in a single
        ``and_``, and the joint result is decoded once and split per
        variable.  Each split result is installed in the scalar result
        cache under the same key the equivalent ``query`` call would
        use, so batch warm-up benefits later point queries and vice
        versa.  Sub-requests of any other kind — or ``points-to`` items
        with a per-item timeout, ``no_cache``, or arguments the
        vectorized path cannot honor — fall back to :meth:`query`
        one by one.

        Returns one entry per request, in order: a result dict on
        success or the :class:`QueryError` the item raised.  The batch
        itself never raises for per-item failures.
        """
        out: List[Any] = [None] * len(requests)
        # key -> [(request index, cache key)]; insertion order preserved.
        pending: "OrderedDict[Tuple[int, Optional[int]], List[Tuple[int, tuple]]]" = OrderedDict()
        start = time.monotonic()

        for i, sub in enumerate(requests):
            kind = sub.get("kind")
            raw_args = sub.get("args") or {}
            if not isinstance(kind, str):
                err = QueryError(
                    "bad-argument", "query request lacks a string 'kind'"
                )
                self.metrics.observe_query(
                    str(kind), 0.0, cache_hit=False, computed=False, error=True,
                )
                out[i] = err
                continue
            spec = self._batch_eligible(kind, sub, raw_args)
            if spec is None:
                try:
                    out[i] = self.query(
                        kind,
                        raw_args,
                        timeout=sub.get("timeout_s"),
                        deadline=deadline,
                        use_cache=not sub.get("no_cache", False),
                    )
                except QueryError as err:
                    out[i] = err
                continue
            key = (self.db.db_id, kind, _canonical(dict(raw_args)))
            hit = self._cache_get(key)
            if hit is not None:
                negative = hit.get("__query_error__")
                self.metrics.observe_query(
                    kind, time.monotonic() - start,
                    cache_hit=True, computed=False,
                    error=negative is not None,
                )
                out[i] = (
                    QueryError(negative[0], negative[1])
                    if negative is not None
                    else hit
                )
                continue
            pending.setdefault(spec, []).append((i, key))

        if pending:
            self._run_batch_misses(pending, deadline, out, start)
        return out

    def _batch_eligible(
        self, kind: str, sub: Dict[str, Any], args: Dict[str, Any]
    ) -> Optional[Tuple[int, Optional[int]]]:
        """``(variable ordinal, context)`` when the vectorized path can
        answer this sub-request exactly like :meth:`query` would;
        ``None`` routes it through the scalar path instead."""
        if kind != "points-to":
            return None
        if sub.get("no_cache", False) or sub.get("timeout_s") is not None:
            return None
        if not set(args) <= {"variable", "context"}:
            return None
        context = args.get("context")
        if context is None:
            rel = self.db.relations.get("vP")
            if rel is None:
                return None
        else:
            if not isinstance(context, int) or isinstance(context, bool) \
                    or context < 0:
                return None  # scalar path raises the bad-argument error
            rel = self.db.relations.get("vPC")
            if rel is None or context >= rel.attribute("context").phys.size:
                return None
        try:
            v = self._resolve_var(args.get("variable"))
        except QueryError:
            return None  # scalar path raises the same typed error
        if not self.db.covers_variable(v):
            return None  # scalar path routes it to demand evaluation
        return (v, context)

    def _run_batch_misses(
        self,
        pending: "OrderedDict[Tuple[int, Optional[int]], List[Tuple[int, tuple]]]",
        deadline: Optional[float],
        out: List[Any],
        start: float,
    ) -> None:
        """Evaluate all vector-eligible cache misses in (at most) two
        BDD operations and distribute results/errors to their slots."""
        try:
            budget, deadline_bound = self._budget_for(None, deadline)
            try:
                with self._eval_lock:
                    results = self._eval_batch_groups(pending, budget)
            except SolverTimeout as err:
                if deadline_bound:
                    raise QueryError(
                        "deadline-exceeded", f"deadline passed mid-query: {err}"
                    )
                raise QueryError("budget-exceeded", str(err))
            except NodeBudgetExceeded as err:
                raise QueryError("budget-exceeded", str(err))
        except QueryError as err:
            for slots in pending.values():
                for i, _key in slots:
                    self.metrics.observe_query(
                        "points-to", time.monotonic() - start,
                        cache_hit=False, computed=False, error=True,
                    )
                    out[i] = err
            return
        elapsed = time.monotonic() - start
        for spec, slots in pending.items():
            result = results[spec]
            for i, key in slots:
                self._cache_put(key, result)
                self.metrics.observe_query(
                    "points-to", elapsed, cache_hit=False, computed=True,
                )
                out[i] = result

    def _eval_batch_groups(
        self,
        pending: "OrderedDict[Tuple[int, Optional[int]], List[Tuple[int, tuple]]]",
        budget,
    ) -> Dict[Tuple[int, Optional[int]], Dict[str, Any]]:
        """Called under ``_eval_lock``: one joint select per relation.

        Context-insensitive specs share a query against ``vP``; the
        context-sensitive ones share a query against ``vPC`` whose cubes
        constrain both the context and the variable block.
        """
        manager = self.db.manager
        heaps = self.db.maps["H"]
        results: Dict[Tuple[int, Optional[int]], Dict[str, Any]] = {}

        ci = sorted({v for v, c in pending if c is None})
        cs = sorted({(c, v) for v, c in pending if c is not None})

        rows_ci: Dict[int, List[int]] = {v: [] for v in ci}
        if ci:
            rel = self.db.relation("vP")
            var = rel.attribute("variable").phys
            query = manager.or_all([var.eq_const(v) for v in ci])
            joint = Relation(manager, "vP_batch", rel.attributes)
            joint.set_node(manager.and_(rel.node, query))
            names = [a.name for a in rel.attributes]
            vi, hi = names.index("variable"), names.index("heap")
            for row in self._decode(joint, budget):
                rows_ci[row[vi]].append(row[hi])

        rows_cs: Dict[Tuple[int, int], List[int]] = {cv: [] for cv in cs}
        if cs:
            rel = self.db.relation("vPC")
            ctx = rel.attribute("context").phys
            var = rel.attribute("variable").phys
            query = manager.or_all(
                [manager.and_(ctx.eq_const(c), var.eq_const(v)) for c, v in cs]
            )
            joint = Relation(manager, "vPC_batch", rel.attributes)
            joint.set_node(manager.and_(rel.node, query))
            names = [a.name for a in rel.attributes]
            idx = (names.index("context"), names.index("variable"),
                   names.index("heap"))
            for row in self._decode(joint, budget):
                rows_cs[(row[idx[0]], row[idx[1]])].append(row[idx[2]])

        for (v, c) in pending:
            hs = rows_ci[v] if c is None else rows_cs[(c, v)]
            names = sorted(heaps[h] for h in hs)
            results[(v, c)] = {
                "variable": self.db.maps["V"][v],
                "context": c,
                "heaps": names,
                "count": len(names),
                "demand": False,
            }
        return results

    def stats(self) -> Dict[str, Any]:
        with self._cache_lock:
            cached = len(self._cache)
        demand: Dict[str, Any] = {"enabled": self.enable_demand}
        if self._demand_error is not None:
            demand["unavailable"] = self._demand_error
        if self._demand_eval is not None:
            demand.update(self._demand_eval.stats())
        return {
            "db_id": self.db.db_id,
            "cache_entries": cached,
            "cache_capacity": self._cache_size,
            "demand": demand,
        }

    def clear_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    # ------------------------------------------------------------------
    # Cache / budget plumbing
    # ------------------------------------------------------------------

    def _cache_get(self, key: tuple) -> Optional[Dict[str, Any]]:
        with self._cache_lock:
            result = self._cache.get(key)
            if result is not None:
                self._cache.move_to_end(key)
            return result

    def _cache_put(self, key: tuple, result: Dict[str, Any]) -> None:
        if self._cache_size <= 0:
            return
        with self._cache_lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _budget_for(
        self, timeout: Optional[float], deadline: Optional[float] = None
    ) -> Tuple[Optional[ResourceBudget], bool]:
        """The budget for one evaluation plus whether the *client
        deadline* (not the timeout) is the binding constraint."""
        if timeout is None:
            timeout = self.default_timeout
        if deadline is not None:
            timeout_deadline = (
                None if timeout is None else time.monotonic() + float(timeout)
            )
            if timeout_deadline is None or deadline <= timeout_deadline:
                return ResourceBudget.until(deadline), True
        if timeout is None:
            return None, False
        return ResourceBudget(timeout=float(timeout)).start(), False

    def _evaluate(self, evaluator, args, budget) -> Dict[str, Any]:
        manager = self.db.manager
        if budget is not None:
            watchdog = Watchdog(budget, manager)
            manager.set_watchdog(watchdog.check, watchdog.stride)
        try:
            if budget is not None and budget.expired():
                raise SolverTimeout(
                    f"wall-clock budget of {budget.timeout:.3f}s exhausted"
                )
            return evaluator(args, budget)
        finally:
            if budget is not None:
                manager.clear_watchdog()

    # ------------------------------------------------------------------
    # Demand evaluation (called under _eval_lock)
    # ------------------------------------------------------------------

    def _demand_for(self, reason: str) -> DemandEvaluator:
        """The demand evaluator, built lazily on first eligible miss.

        Raises a typed ``demand-unavailable`` :class:`QueryError` when
        demand evaluation is disabled or this database cannot support it
        (construction failures are cached — one diagnosis per epoch).
        """
        if not self.enable_demand:
            raise QueryError(
                "demand-unavailable",
                f"{reason}, and demand evaluation is disabled "
                "(re-run with --demand)",
            )
        if self._demand_error is not None:
            raise QueryError(
                "demand-unavailable", f"{reason}; {self._demand_error}"
            )
        if self._demand_eval is None:
            try:
                self._demand_eval = DemandEvaluator(
                    self.db, backend=self.db.manager.backend_name
                )
            except DemandUnavailable as err:
                self._demand_error = str(err)
                raise QueryError(
                    "demand-unavailable", f"{reason}; {err}"
                )
        return self._demand_eval

    def _run_demand(self, kind: str, reason: str, fn):
        """One demand evaluation with per-kind metrics accounting."""
        start = time.monotonic()
        try:
            result = fn(self._demand_for(reason))
        except QueryError:
            self.metrics.observe_demand(
                kind, time.monotonic() - start, "miss"
            )
            raise
        except (SolverTimeout, NodeBudgetExceeded):
            self.metrics.observe_demand(
                kind, time.monotonic() - start, "budget"
            )
            raise
        self.metrics.observe_demand(kind, time.monotonic() - start, "hit")
        return result

    @staticmethod
    def _decode(relation, budget, limit: Optional[int] = None) -> List[tuple]:
        """Decode a relation's tuples with periodic deadline checks."""
        out: List[tuple] = []
        for i, t in enumerate(relation.tuples()):
            if budget is not None and i % _DECODE_CHECK_STRIDE == 0 and budget.expired():
                raise SolverTimeout(
                    f"wall-clock budget of {budget.timeout:.3f}s exhausted"
                )
            out.append(t)
            if limit is not None and len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # Argument resolution
    # ------------------------------------------------------------------

    def _need(self, args: Dict[str, Any], name: str) -> Any:
        if name not in args or args[name] in (None, ""):
            raise QueryError("bad-argument", f"missing required argument {name!r}")
        return args.pop(name)

    def _reject_extras(self, args: Dict[str, Any]) -> None:
        if args:
            raise QueryError(
                "bad-argument", f"unexpected arguments {sorted(args)}"
            )

    def _resolve_var(self, spec: Any) -> int:
        """A variable: ``"Method.m:var"`` name or a V ordinal."""
        if isinstance(spec, int):
            if not 0 <= spec < len(self.db.maps.get("V", ())):
                raise QueryError("not-found", f"variable ordinal {spec} out of range")
            return spec
        if not isinstance(spec, str):
            raise QueryError("bad-argument", f"variable must be str or int, got {spec!r}")
        try:
            return self.db.var_id(spec)
        except KeyError:
            pass
        # Accept a raw representative name from the V domain too.
        try:
            return self.db.id_of("V", spec)
        except KeyError:
            raise QueryError("not-found", f"unknown variable {spec!r}")

    def _resolve_method(self, spec: Any) -> int:
        if isinstance(spec, int):
            if not 0 <= spec < len(self.db.maps.get("M", ())):
                raise QueryError("not-found", f"method ordinal {spec} out of range")
            return spec
        if not isinstance(spec, str):
            raise QueryError("bad-argument", f"method must be str or int, got {spec!r}")
        try:
            return self.db.method_id(spec)
        except KeyError:
            raise QueryError("not-found", f"unknown method {spec!r}")

    def _resolve_heap(self, spec: Any) -> int:
        if isinstance(spec, int):
            if not 0 <= spec < len(self.db.maps.get("H", ())):
                raise QueryError("not-found", f"heap ordinal {spec} out of range")
            return spec
        if not isinstance(spec, str):
            raise QueryError("bad-argument", f"heap must be str or int, got {spec!r}")
        try:
            return self.db.id_of("H", spec)
        except KeyError:
            raise QueryError("not-found", f"unknown heap object {spec!r}")

    # ------------------------------------------------------------------
    # Evaluators (called under _eval_lock)
    # ------------------------------------------------------------------

    def _eval_points_to(self, args: Dict[str, Any], budget) -> Dict[str, Any]:
        v = self._resolve_var(self._need(args, "variable"))
        context = args.pop("context", None)
        self._reject_extras(args)
        if context is not None and (
            not isinstance(context, int) or context < 0
        ):
            raise QueryError(
                "bad-argument", f"context must be a non-negative int, got {context!r}"
            )
        heaps = self.db.maps["H"]
        demand = not self.db.covers_variable(v)
        if demand:
            # The snapshot's vP/vPC were restricted away from this
            # variable at compile time — a select would be silently
            # empty.  Derive its points-to set goal-directedly instead.
            sel = self._run_demand(
                "points-to",
                f"variable {self.db.maps['V'][v]!r} is outside the "
                f"database's budget class {self.db.budget_class!r}",
                lambda ev: ev.points_to(v, context, budget),
            )
        elif context is None:
            sel = self.db.relation("vP").select(variable=v)
        else:
            sel = self.db.relation("vPC").select(context=context, variable=v)
        rows = self._decode(sel, budget)
        names = sorted(heaps[h] for (h,) in rows)
        return {
            "variable": self.db.maps["V"][v],
            "context": context,
            "heaps": names,
            "count": len(names),
            "demand": demand,
        }

    def _eval_aliases(self, args: Dict[str, Any], budget) -> Dict[str, Any]:
        v1 = self._resolve_var(self._need(args, "variable1"))
        v2 = self._resolve_var(self._need(args, "variable2"))
        self._reject_extras(args)
        heaps = self.db.maps["H"]
        demand = not (
            self.db.covers_variable(v1) and self.db.covers_variable(v2)
        )
        if demand:
            uncovered = [
                self.db.maps["V"][v]
                for v in (v1, v2)
                if not self.db.covers_variable(v)
            ]
            s1, s2 = self._run_demand(
                "aliases",
                f"variable(s) {uncovered} are outside the database's "
                f"budget class {self.db.budget_class!r}",
                lambda ev: ev.alias_heaps(v1, v2, budget),
            )
            h1 = {h for (h,) in self._decode(s1, budget)}
            h2 = {h for (h,) in self._decode(s2, budget)}
            names = sorted(heaps[h] for h in h1 & h2)
        else:
            vP = self.db.relation("vP")
            manager = self.db.manager
            # points-to(v1) AND points-to(v2): both selects leave only
            # the H block, so a plain conjunction is the intersection.
            s1 = vP.select(variable=v1)
            s2 = vP.select(variable=v2)
            common = s1
            common.set_node(manager.and_(s1.node, s2.node))
            rows = self._decode(common, budget)
            names = sorted(heaps[h] for (h,) in rows)
        return {
            "variable1": self.db.maps["V"][v1],
            "variable2": self.db.maps["V"][v2],
            "may_alias": bool(names),
            "common_heaps": names,
            "demand": demand,
        }

    def _eval_mod_ref(self, args: Dict[str, Any], budget) -> Dict[str, Any]:
        m = self._resolve_method(self._need(args, "method"))
        context = args.pop("context", None)
        self._reject_extras(args)
        if context is not None and (not isinstance(context, int) or context < 0):
            raise QueryError(
                "bad-argument", f"context must be a non-negative int, got {context!r}"
            )
        heaps = self.db.maps["H"]
        fields = self.db.maps["F"]

        def encode(rel) -> List[List[str]]:
            rows = self._decode(rel, budget)
            return sorted([heaps[h], fields[f]] for (h, f) in rows)

        demand = not (
            self.db.has_relation("mod") and self.db.has_relation("ref")
        )
        if demand:
            if not self.enable_demand:
                # Preserve the pre-demand contract for engines that
                # opted out: the historical typed error.
                raise QueryError(
                    "unsupported",
                    "database was compiled without the mod-ref fragment "
                    "(re-run 'repro compile-db' without --no-modref, or "
                    "query with --demand)",
                )
            mod_rel, ref_rel = self._run_demand(
                "mod-ref",
                "database was compiled without the mod-ref fragment",
                lambda ev: ev.mod_ref(m, context, budget),
            )
            mod, ref = encode(mod_rel), encode(ref_rel)
        else:

            def side(name: str):
                rel = self.db.relation(name)
                if context is None:
                    return rel.select(m=m).project("heap", "field")
                return rel.select(c=context, m=m)

            mod, ref = encode(side("mod")), encode(side("ref"))
        return {
            "method": self.db.maps["M"][m],
            "context": context,
            "mod": mod,
            "ref": ref,
            "demand": demand,
        }

    def _eval_callers(self, args: Dict[str, Any], budget) -> Dict[str, Any]:
        m = self._resolve_method(self._need(args, "method"))
        self._reject_extras(args)
        index = self._callers_index
        if index is None:
            index = {}
            for i, callee in self.db.tuples.get("IE", ()):
                index.setdefault(callee, []).append(i)
            self._callers_index = index
        sites = sorted(index.get(m, ()))
        inv_names = self.db.maps.get("I", [])
        method_names = self.db.maps["M"]
        callers = []
        caller_methods = set()
        for i in sites:
            caller_m = self.db.site_method.get(i)
            entry = {
                "site": inv_names[i] if i < len(inv_names) else i,
                "method": (
                    method_names[caller_m] if caller_m is not None else None
                ),
            }
            if caller_m is not None:
                caller_methods.add(method_names[caller_m])
            callers.append(entry)
        return {
            "method": method_names[m],
            "callers": callers,
            "caller_methods": sorted(caller_methods),
            "count": len(callers),
        }

    def _eval_escape(self, args: Dict[str, Any], budget) -> Dict[str, Any]:
        h = self._resolve_heap(self._need(args, "heap"))
        self._reject_extras(args)
        escaped = h in set(self.db.escape.get("escaped", ()))
        captured = h in set(self.db.escape.get("captured", ()))
        if escaped:
            verdict = "escaped"
        elif captured:
            verdict = "captured"
        else:
            # Not a tracked allocation (e.g. a string constant) — neither
            # verdict applies.
            verdict = "untracked"
        return {
            "heap": self.db.maps["H"][h],
            "verdict": verdict,
            "escaped": escaped,
            "captured": captured,
        }


def _canonical(args: Dict[str, Any]) -> tuple:
    """Hashable canonical form of a query's arguments."""
    return tuple(sorted((k, _freeze(v)) for k, v in args.items()))


def _freeze(value: Any):
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
