"""Call multigraphs: edges are (invocation site, caller, callee) triples.

Multiple invocation sites between the same pair of methods are distinct
edges — each gets its own context range in Algorithm 4.  The strongly
connected components (computed with an iterative Tarjan) and the
topological order of the condensation drive the path numbering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["Edge", "CallGraph"]


@dataclass(frozen=True)
class Edge:
    """One invocation edge: site ``site`` in ``caller`` invokes ``callee``."""

    site: int
    caller: int
    callee: int


class CallGraph:
    """A call multigraph over integer method ids."""

    def __init__(self, methods: Iterable[int] = ()) -> None:
        self.methods: Set[int] = set(methods)
        self.edges: List[Edge] = []
        self._succ: Dict[int, List[Edge]] = {}
        self._pred: Dict[int, List[Edge]] = {}

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int, int]], methods: Iterable[int] = ()
    ) -> "CallGraph":
        graph = cls(methods)
        for site, caller, callee in edges:
            graph.add_edge(site, caller, callee)
        return graph

    def add_method(self, m: int) -> None:
        self.methods.add(m)

    def add_edge(self, site: int, caller: int, callee: int) -> Edge:
        edge = Edge(site, caller, callee)
        self.edges.append(edge)
        self.methods.add(caller)
        self.methods.add(callee)
        self._succ.setdefault(caller, []).append(edge)
        self._pred.setdefault(callee, []).append(edge)
        return edge

    def successors(self, m: int) -> List[Edge]:
        return self._succ.get(m, [])

    def predecessors(self, m: int) -> List[Edge]:
        return self._pred.get(m, [])

    def edge_count(self) -> int:
        return len(self.edges)

    def call_targets(self, site: int) -> Set[int]:
        return {e.callee for e in self.edges if e.site == site}

    def reachable_from(self, roots: Iterable[int]) -> Set[int]:
        """Methods reachable from ``roots`` along call edges."""
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            m = stack.pop()
            if m in seen:
                continue
            seen.add(m)
            for edge in self.successors(m):
                stack.append(edge.callee)
        return seen

    # ------------------------------------------------------------------
    # SCCs and condensation
    # ------------------------------------------------------------------

    def sccs(self) -> List[List[int]]:
        """Strongly connected components, in reverse topological order
        (every component precedes the components that call into it)."""
        index_of: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        components: List[List[int]] = []
        counter = [0]

        for root in sorted(self.methods):
            if root in index_of:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edge_idx = work[-1]
                succ = self._succ.get(node, [])
                if edge_idx < len(succ):
                    work[-1] = (node, edge_idx + 1)
                    nxt = succ[edge_idx].callee
                    if nxt not in index_of:
                        index_of[nxt] = lowlink[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, 0))
                    elif nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[nxt])
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def condensation(self) -> Tuple[Dict[int, int], List[List[int]]]:
        """(method -> component index, components in topological order).

        Topological means callers come before callees, which is the
        traversal order Algorithm 4 requires.
        """
        components = self.sccs()
        components.reverse()  # callers first
        comp_of = {m: i for i, comp in enumerate(components) for m in comp}
        return comp_of, components
