"""Call graphs, CHA, and the Algorithm 4 context numbering."""

from .graph import CallGraph, Edge
from .cha import cha_call_graph, call_graph_from_ie
from .numbering import (
    ContextNumbering,
    EdgeRange,
    number_call_graph,
    number_call_graph_1cfa,
)

__all__ = [
    "CallGraph",
    "ContextNumbering",
    "Edge",
    "EdgeRange",
    "call_graph_from_ie",
    "cha_call_graph",
    "number_call_graph",
    "number_call_graph_1cfa",
]
