"""Algorithm 4: numbering reduced call paths with contiguous ranges.

"A method with n clones will be given numbers 1..n.  Nodes with no
predecessors are given a singleton context numbered 1. ... For each node n
in the reduced graph in topological order: set the count of contexts
created, c, to 0; for each incoming edge whose predecessor p has k
contexts, create k clones of node n, add tuple (i, p, i+c, n) to IEC for
1 <= i <= k, c = c + k."

The context counts are *exact big integers* (the paper's benchmarks reach
5x10^23 reduced call paths; Python integers represent them natively).  The
symbolic ``IEC`` relation is assembled per edge from the two O(bits)
primitives of Section 4.1: contiguous ranges and add-a-constant relations.
Counts beyond an optional cap are merged into a single overflow context,
mirroring the paper's "contexts numbered beyond 2^63 were merged into a
single context".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..bdd import BddKernel, Domain, FALSE
from ..bdd.domain import offset_relation
from .graph import CallGraph, Edge

__all__ = [
    "EdgeRange",
    "ContextNumbering",
    "number_call_graph",
    "number_call_graph_1cfa",
]


@dataclass(frozen=True)
class EdgeRange:
    """Caller contexts ``[lo..hi]`` map to callee contexts ``+delta``.

    ``collapse_to`` marks saturated ranges: every caller context in
    ``[lo..hi]`` maps to the single merged overflow context instead.
    """

    site: int
    caller: int
    callee: int
    lo: int
    hi: int
    delta: int = 0
    collapse_to: Optional[int] = None


@dataclass
class ContextNumbering:
    """The result of Algorithm 4 on one call graph."""

    graph: CallGraph
    entries: Tuple[int, ...]
    counts: Dict[int, int] = field(default_factory=dict)        # capped
    exact_counts: Dict[int, int] = field(default_factory=dict)  # big ints
    ranges: List[EdgeRange] = field(default_factory=list)
    cap: Optional[int] = None

    # ------------------------------------------------------------------

    def num_contexts(self, method: int) -> int:
        return self.counts.get(method, 1)

    def max_paths(self) -> int:
        """The paper's "C.S. Paths" statistic: the largest clone count."""
        return max(self.exact_counts.values(), default=1)

    def total_paths(self) -> int:
        return sum(self.exact_counts.values())

    def context_domain_size(self) -> int:
        """Required size of the C domain (context 0 stays unused)."""
        return max(self.counts.values(), default=1) + 1

    # ------------------------------------------------------------------
    # Symbolic construction (Section 4.1)
    # ------------------------------------------------------------------

    def build_iec(
        self,
        manager: BddKernel,
        c_caller: Domain,
        i_dom: Domain,
        c_callee: Domain,
        m_dom: Domain,
        alloc_sites: Optional[Dict[int, List[int]]] = None,
        global_site: Optional[int] = None,
        global_method: Optional[int] = None,
    ) -> int:
        """Assemble the ``IEC(c, i, cm, m)`` BDD.

        Besides the numbered invocation edges this includes, when given:

        * identity tuples ``IEC(c, h, c, m)`` for each allocation site ``h``
          of method ``m`` — rule (14) reads an allocation's context through
          ``IEC(c, h, _, _)`` because H is a subset of I,
        * a full-range identity row for the global pseudo-site, making the
          global object visible in every context.
        """
        node = FALSE
        for rng in self.ranges:
            if rng.collapse_to is not None:
                pair = manager.and_(
                    c_caller.range_bdd(rng.lo, rng.hi),
                    c_callee.eq_const(rng.collapse_to),
                )
            else:
                pair = offset_relation(c_caller, c_callee, rng.delta, rng.lo, rng.hi)
            row = manager.and_(pair, i_dom.eq_const(rng.site))
            row = manager.and_(row, m_dom.eq_const(rng.callee))
            node = manager.or_(node, row)
        if alloc_sites:
            for method, sites in alloc_sites.items():
                if not sites:
                    continue
                k = self.num_contexts(method)
                ident = offset_relation(c_caller, c_callee, 0, 1, k)
                ident = manager.and_(ident, m_dom.eq_const(method))
                site_cube = FALSE
                for h in sites:
                    site_cube = manager.or_(site_cube, i_dom.eq_const(h))
                node = manager.or_(node, manager.and_(ident, site_cube))
        if global_site is not None:
            hi = c_caller.size - 1
            ident = offset_relation(c_caller, c_callee, 0, 0, hi)
            ident = manager.and_(ident, i_dom.eq_const(global_site))
            if global_method is not None:
                ident = manager.and_(ident, m_dom.eq_const(global_method))
            node = manager.or_(node, ident)
        return node

    def build_mc(self, manager: BddKernel, c_dom: Domain, m_dom: Domain) -> int:
        """``MC(c, m)``: method ``m`` executes in contexts ``1..counts[m]``.

        Used to context-qualify the residual local assignments (the paper
        folds these into its input generation)."""
        node = FALSE
        for method, k in self.counts.items():
            row = manager.and_(c_dom.range_bdd(1, k), m_dom.eq_const(method))
            node = manager.or_(node, row)
        return node


def number_call_graph_1cfa(
    graph: CallGraph, entries: Iterable[int]
) -> ContextNumbering:
    """The 1-CFA baseline (Shivers): one context per *last call site*.

    The paper contrasts its full-call-path cloning with k-CFA, which
    "remembers only the last k call sites".  For k = 1 each method gets
    one clone per incoming invocation edge, and *every* caller context of
    an edge maps onto that single clone — a collapse, in the vocabulary of
    :class:`EdgeRange`.  This baseline is polynomial but much less
    precise; the benchmarks compare it against Algorithm 4's numbering.
    """
    entries = tuple(entries)
    numbering = ContextNumbering(graph=graph, entries=entries, cap=None)
    # Context slots per method: 1..indegree (or the singleton 1).
    slot_of: Dict[int, int] = {}
    for m in sorted(graph.methods):
        preds = graph.predecessors(m)
        count = max(len(preds), 1)
        numbering.counts[m] = count
        numbering.exact_counts[m] = count
        for slot, edge in enumerate(preds, start=1):
            slot_of[id(edge)] = slot
    for m in sorted(graph.methods):
        for edge in graph.predecessors(m):
            numbering.ranges.append(
                EdgeRange(
                    edge.site,
                    edge.caller,
                    edge.callee,
                    lo=1,
                    hi=numbering.counts[edge.caller],
                    collapse_to=slot_of[id(edge)],
                )
            )
    return numbering


def number_call_graph(
    graph: CallGraph,
    entries: Iterable[int],
    cap: Optional[int] = None,
) -> ContextNumbering:
    """Run Algorithm 4 over ``graph``.

    ``entries`` are the program entry methods (they keep a singleton
    context even if called recursively); ``cap`` bounds the number of
    contexts per method, merging the overflow into one context.
    """
    entries = tuple(entries)
    numbering = ContextNumbering(graph=graph, entries=entries, cap=cap)
    comp_of, components = graph.condensation()

    comp_exact: List[int] = [0] * len(components)
    comp_capped: List[int] = [0] * len(components)

    for idx, component in enumerate(components):
        members = set(component)
        exact = 0
        capped = 0
        incoming: List[Edge] = []
        for m in component:
            for edge in graph.predecessors(m):
                if edge.caller not in members:
                    incoming.append(edge)
        if not incoming:
            exact = capped = 1
        for edge in incoming:
            k_exact = comp_exact[comp_of[edge.caller]]
            k = comp_capped[comp_of[edge.caller]]
            exact += k_exact
            if cap is not None and capped >= cap:
                # Entire edge collapses into the overflow context.
                numbering.ranges.append(
                    EdgeRange(
                        edge.site, edge.caller, edge.callee,
                        lo=1, hi=k, collapse_to=cap,
                    )
                )
                continue
            if cap is not None and capped + k > cap:
                fit = cap - capped
                if fit > 0:
                    numbering.ranges.append(
                        EdgeRange(
                            edge.site, edge.caller, edge.callee,
                            lo=1, hi=fit, delta=capped,
                        )
                    )
                numbering.ranges.append(
                    EdgeRange(
                        edge.site, edge.caller, edge.callee,
                        lo=fit + 1, hi=k, collapse_to=cap,
                    )
                )
                capped = cap
                continue
            numbering.ranges.append(
                EdgeRange(
                    edge.site, edge.caller, edge.callee,
                    lo=1, hi=k, delta=capped,
                )
            )
            capped += k
        comp_exact[idx] = max(exact, 1)
        comp_capped[idx] = max(capped, 1)
        for m in component:
            numbering.exact_counts[m] = comp_exact[idx]
            numbering.counts[m] = comp_capped[idx]
        # Intra-component (recursive) edges: the i-th clone calls the
        # i-th clone.
        for m in component:
            for edge in graph.successors(m):
                if edge.callee in members:
                    numbering.ranges.append(
                        EdgeRange(
                            edge.site, edge.caller, edge.callee,
                            lo=1, hi=comp_capped[idx], delta=0,
                        )
                    )
    return numbering
