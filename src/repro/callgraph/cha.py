"""Class-hierarchy-analysis call graphs (Dean et al., used as the paper's
baseline and as the conservative graph for context numbering).

"The call graph generated using class hierarchy analysis can have many
spurious call targets" (Section 3) — Figure 4 quantifies how much the
on-the-fly discovery of Algorithm 3 shrinks it.  This module builds the
CHA graph directly from extracted facts; graphs from points-to-discovered
``IE`` tuples are built with :meth:`CallGraph.from_edges`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.facts import Facts
from .graph import CallGraph

__all__ = ["cha_call_graph", "call_graph_from_ie"]


def cha_call_graph(facts: Facts, reachable_only: bool = True) -> CallGraph:
    """Build the CHA call graph from extracted facts.

    Virtual sites bind to every ``cha`` target whose receiver type is
    assignable to the receiver's declared type; static sites use ``IE0``.
    When ``reachable_only`` is set the graph is restricted to methods
    reachable from the program entry (the paper counts "only the reachable
    parts of the program and the class library").
    """
    graph = CallGraph()
    for m in range(len(facts.maps["M"])):
        graph.add_method(m)

    # Receiver declared types.
    var_type: Dict[int, int] = {v: t for v, t in facts.relations["vT"]}
    # Subtypes: aT(sup, sub) -> sub assignable to sup.
    subtypes: Dict[int, Set[int]] = {}
    for sup, sub in facts.relations["aT"]:
        subtypes.setdefault(sup, set()).add(sub)
    # Dispatch: (type, name) -> targets.
    dispatch: Dict[Tuple[int, int], Set[int]] = {}
    for t, n, m in facts.relations["cha"]:
        dispatch.setdefault((t, n), set()).add(m)
    receivers: Dict[int, int] = {
        i: v for i, z, v in facts.relations["actual"] if z == 0
    }
    null_name = facts.id_of("N", "<none>")

    for caller, site, name in facts.relations["mI"]:
        if name == null_name:
            continue  # handled through IE0
        recv = receivers.get(site)
        if recv is None:
            continue
        declared = var_type.get(recv)
        if declared is None:
            continue
        for t in subtypes.get(declared, {declared}):
            for target in dispatch.get((t, name), ()):
                graph.add_edge(site, caller, target)
    for site, target in facts.relations["IE0"]:
        graph.add_edge(site, facts.site_method[site], target)

    if not reachable_only:
        return graph
    keep = graph.reachable_from(facts.entry_method_ids())
    pruned = CallGraph(keep)
    for edge in graph.edges:
        if edge.caller in keep and edge.callee in keep:
            pruned.add_edge(edge.site, edge.caller, edge.callee)
    return pruned


def call_graph_from_ie(
    facts: Facts, ie_tuples, reachable_only: bool = True
) -> CallGraph:
    """Build a call graph from discovered invocation edges ``IE(i, m)``."""
    graph = CallGraph()
    for m in range(len(facts.maps["M"])):
        graph.add_method(m)
    for site, callee in ie_tuples:
        caller = facts.site_method.get(site)
        if caller is None:
            continue  # allocation pseudo-sites carry no call edge
        graph.add_edge(site, caller, callee)
    if not reachable_only:
        return graph
    keep = graph.reachable_from(facts.entry_method_ids())
    pruned = CallGraph(keep)
    for edge in graph.edges:
        if edge.caller in keep and edge.callee in keep:
            pruned.add_edge(edge.site, edge.caller, edge.callee)
    return pruned
