"""Fact extraction: from IR programs to the paper's input relations.

This replaces the Joeq front end.  Given a validated
:class:`~repro.ir.program.Program` it produces the domains (V, H, F, T, I,
M, N, Z) and every input relation used by Algorithms 1–7 and the Section 5
queries:

=============  =========================================================
``vP0``        initial points-to from allocation statements
``store``      ``v1.f = v2`` statements (statics through the global)
``load``       ``v2 = v1.f`` statements
``assign0``    residual local assignments and casts (the paper factors
               locals with a flow-sensitive pass; we merge single-
               definition copy chains and keep the rest as edges)
``vT, hT, aT`` declared types, allocation types, assignability
``cha``        virtual dispatch (thread ``start`` -> ``run`` included)
``actual``     per-site actual parameters (``z = 0`` is the receiver)
``formal``     per-method formal parameters (``z = 0`` is ``this``)
``Iret/Mret``  return-value plumbing ("handled in a likewise manner")
``IE0``        statically bound invocation edges
``mI``         invocation sites with their virtual names
``mV``         method -> local variables
``sync``       synchronization operations
=============  =========================================================

Invariant: **H is a prefix of I** — allocation sites are invocation sites
of object-creation methods, so a heap object's ordinal is simultaneously
valid in both domains ("Note that H ⊆ I", Section 3).  The global object
used for statics is the last element of H and occupies the matching slot
in I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .program import (
    Cast,
    Copy,
    Invoke,
    IRError,
    Load,
    MethodDecl,
    New,
    Program,
    Return,
    StaticLoad,
    StaticStore,
    Statement,
    Store,
    Sync,
    Throw,
    OBJECT,
)

from .types import TypeHierarchy

__all__ = ["Facts", "extract_facts", "NULL_NAME", "GLOBAL", "THROWN"]

NULL_NAME = "<none>"  # the "special null method name" for non-virtual sites
GLOBAL = "<global>"
# Per-method exception channel variable (only materialized when the
# program throws at all): thrown values accumulate here and propagate to
# callers like a second return value.
THROWN = "<thrown>"


class _NameTable:
    """Ordinal assignment for one domain."""

    def __init__(self) -> None:
        self.names: List[str] = []
        self.ids: Dict[str, int] = {}

    def intern(self, name: str) -> int:
        idx = self.ids.get(name)
        if idx is None:
            idx = len(self.names)
            self.names.append(name)
            self.ids[name] = idx
        return idx

    def __len__(self) -> int:
        return len(self.names)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def find(self, x: str) -> str:
        root = x
        while self.parent.get(root, root) != root:
            root = self.parent[root]
        while self.parent.get(x, x) != x:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[ra] = rb


@dataclass
class Facts:
    """Extracted domains and relations, plus lookup helpers."""

    program: Program
    hierarchy: TypeHierarchy
    maps: Dict[str, List[str]] = field(default_factory=dict)
    relations: Dict[str, List[tuple]] = field(default_factory=dict)
    # Site bookkeeping used by the call-graph and numbering layers.
    site_method: Dict[int, int] = field(default_factory=dict)  # I -> M
    alloc_sites: Dict[int, List[int]] = field(default_factory=dict)  # M -> [I]
    global_site: int = -1
    max_arity: int = 1

    # -- domain helpers ---------------------------------------------------

    @property
    def sizes(self) -> Dict[str, int]:
        """Domain sizes (element counts), for sizing the Datalog domains."""
        out = {dom: max(1, len(names)) for dom, names in self.maps.items()}
        out["Z"] = self.max_arity
        return out

    def id_of(self, domain: str, name: str) -> int:
        """Ordinal of a named element in a domain (V, H, F, T, I, M, N)."""
        try:
            return self.maps[domain].index(name)
        except ValueError:
            raise IRError(f"no element {name!r} in domain {domain}")

    def name_of(self, domain: str, ordinal: int) -> str:
        """Inverse of :meth:`id_of`."""
        return self.maps[domain][ordinal]

    def var_id(self, method: str, var: str) -> int:
        """Ordinal of a local variable, following copy factoring."""
        rep = self._var_reps.get((method, var))
        if rep is None:
            raise IRError(f"no variable {var!r} in {method}")
        return self.maps["V"].index(rep)

    def method_id(self, qualified: str) -> int:
        """Ordinal of a method by qualified name."""
        return self.id_of("M", qualified)

    def entry_method_ids(self) -> List[int]:
        """Ids of all root methods: main plus class initializers."""
        return [self.method_id(m.qualified) for m in self.program.entry_methods()]

    def heap_ids_of_class(self, cls: str) -> List[int]:
        """All allocation-site ordinals whose allocated class is ``cls``."""
        out = []
        t_id = self.id_of("T", cls)
        for h, t in self.relations["hT"]:
            if t == t_id:
                out.append(h)
        return out

    def __post_init__(self) -> None:
        self._var_reps: Dict[Tuple[str, str], str] = {}


def _definition_counts(method: MethodDecl) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for name, _ in method.params:
        counts[name] = counts.get(name, 0) + 1
    if not method.is_static:
        counts["this"] = counts.get("this", 0) + 1
    for stmt in method.statements():
        dst = getattr(stmt, "dst", None)
        if dst is not None:
            counts[dst] = counts.get(dst, 0) + 1
    return counts


def _resolve_field(program: Program, hierarchy: TypeHierarchy, cls: str, name: str) -> str:
    """Qualified name of the field reached from class ``cls``.

    Falls back to a globally unique field name when the receiver's static
    type does not declare it (undeclared locals default to ``Object``).
    """
    cur: Optional[str] = cls
    while cur is not None:
        decl = program.classes[cur]
        if name in decl.fields:
            return f"{cur}.{name}"
        cur = decl.superclass
    owners = [
        c.name for c in program.classes.values() if name in c.fields
    ]
    if len(owners) == 1:
        return f"{owners[0]}.{name}"
    raise IRError(
        f"no field {name!r} reachable from class {cls}"
        + (f" (ambiguous among {owners})" if owners else "")
    )


def _infer_local_types(
    method: MethodDecl, hierarchy: TypeHierarchy
) -> Dict[str, str]:
    """Infer types of undeclared locals from their allocations and casts.

    A variable assigned ``new T`` (or cast to ``T``) is given the join of
    its candidate types; variables with no allocation stay ``Object``.
    """
    candidates: Dict[str, Set[str]] = {}
    declared = set(method.locals) | {n for n, _ in method.params} | {"this"}
    for stmt in method.statements():
        if isinstance(stmt, New) and stmt.dst not in declared:
            candidates.setdefault(stmt.dst, set()).add(stmt.cls)
        elif isinstance(stmt, Cast) and stmt.dst not in declared:
            candidates.setdefault(stmt.dst, set()).add(stmt.type)
    inferred: Dict[str, str] = {}
    for var, types in candidates.items():
        common = None
        for t in types:
            sups = hierarchy.supertypes(t)
            common = sups if common is None else common & sups
        if not common:
            inferred[var] = OBJECT
            continue
        # Most derived common supertype: the one with the largest own
        # supertype set.
        inferred[var] = max(common, key=lambda t: (len(hierarchy.supertypes(t)), t))
    return inferred


def extract_facts(program: Program, factor_locals: bool = True) -> Facts:
    """Extract all input relations from ``program``.

    ``factor_locals`` enables the intraprocedural factoring of local copy
    chains (the paper's flow-sensitive local summarization, approximated by
    merging single-definition same-type copies).
    """
    program.validate()
    hierarchy = TypeHierarchy(program)
    facts = Facts(program=program, hierarchy=hierarchy)

    tables = {dom: _NameTable() for dom in "VHFTIMN"}
    rels: Dict[str, List[tuple]] = {
        name: []
        for name in (
            "vP0", "store", "load", "assign0", "vT", "hT", "aT", "cha",
            "actual", "formal", "Iret", "Mret", "IE0", "mI", "mV", "sync",
            "castOp", "Mthr",
        )
    }
    uses_exceptions = any(
        isinstance(stmt, Throw)
        for m in program.all_methods()
        if not m.is_abstract
        for stmt in m.statements()
    )

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    for cls_name in program.classes:
        tables["T"].intern(cls_name)
    for sup, sub in hierarchy.assignable_pairs():
        rels["aT"].append((tables["T"].intern(sup), tables["T"].intern(sub)))

    # ------------------------------------------------------------------
    # Methods (concrete only, as in the paper's M domain)
    # ------------------------------------------------------------------
    methods = [m for m in program.all_methods() if not m.is_abstract]
    for m in methods:
        tables["M"].intern(m.qualified)
    tables["N"].intern(NULL_NAME)

    # cha: virtual dispatch over concrete receiver types.
    for t, n, target in hierarchy.dispatch_tuples():
        rels["cha"].append(
            (
                tables["T"].intern(t),
                tables["N"].intern(n),
                tables["M"].intern(target.qualified),
            )
        )

    # ------------------------------------------------------------------
    # Per-method variable factoring
    # ------------------------------------------------------------------
    reps: Dict[Tuple[str, str], str] = {}  # (method, var) -> representative key
    var_types: Dict[str, str] = {}  # representative key -> declared type name
    method_rep_keys: Dict[str, List[str]] = {}  # method -> sorted rep keys

    def rep_key(method: MethodDecl, var: str) -> str:
        return reps[(method.qualified, var)]

    for m in methods:
        uf = _UnionFind()
        defs = _definition_counts(m)
        inferred = _infer_local_types(m, hierarchy)

        def decl_type(v: str) -> str:
            if v in inferred:
                return inferred[v]
            return hierarchy.declared_type(m, v)

        if factor_locals:
            for stmt in m.statements():
                if isinstance(stmt, Copy) and stmt.dst != stmt.src:
                    single_def = defs.get(stmt.dst, 0) == 1
                    same_type = decl_type(stmt.dst) == decl_type(stmt.src)
                    not_param = stmt.dst not in dict(m.params) and stmt.dst != "this"
                    if single_def and same_type and not_param:
                        uf.union(stmt.dst, stmt.src)
        # Collect every variable the method mentions.
        names: Set[str] = set()
        if not m.is_static:
            names.add("this")
        names.update(name for name, _ in m.params)
        names.update(m.locals)
        for stmt in m.statements():
            for attr in ("dst", "src", "base", "var"):
                value = getattr(stmt, attr, None)
                if isinstance(value, str):
                    names.add(value)
            if isinstance(stmt, Invoke):
                names.update(stmt.args)
        keys: Set[str] = set()
        for name in sorted(names):
            root = uf.find(name)
            key = f"{m.qualified}:{root}"
            reps[(m.qualified, name)] = key
            keys.add(key)
            # Representative type: merging only happens for equal declared
            # types, so any member's type is the representative's type.
            var_types.setdefault(key, decl_type(root))
        method_rep_keys[m.qualified] = sorted(keys)

    # Cast targets: a single-definition cast variable takes the cast type
    # when it refines the declared one (the paper's "cast operations" are
    # their own V elements with the cast type).
    for m in methods:
        defs = _definition_counts(m)
        for stmt in m.statements():
            if isinstance(stmt, Cast) and defs.get(stmt.dst, 0) == 1:
                key = reps[(m.qualified, stmt.dst)]
                declared = var_types[key]
                if hierarchy.is_assignable(declared, stmt.type):
                    var_types[key] = stmt.type

    # ------------------------------------------------------------------
    # Sites: allocations first (so H is a prefix of I), then the global
    # pseudo-site, then real invocation sites.
    # ------------------------------------------------------------------
    alloc_entries: List[Tuple[MethodDecl, New, int]] = []
    for m in methods:
        for idx, stmt in enumerate(m.statements()):
            if isinstance(stmt, New):
                alloc_entries.append((m, stmt, idx))
    for m, stmt, idx in alloc_entries:
        site_name = f"{m.qualified}@{idx}:new {stmt.cls}"
        h = tables["H"].intern(site_name)
        i = tables["I"].intern(site_name)
        assert h == i, "H must be a prefix of I"
    global_h = tables["H"].intern(GLOBAL)
    global_i = tables["I"].intern(GLOBAL)
    assert global_h == global_i
    facts.global_site = global_i

    # ------------------------------------------------------------------
    # The global object (statics are fields of it).
    # ------------------------------------------------------------------
    global_v = tables["V"].intern(GLOBAL)
    object_t = tables["T"].intern(OBJECT)
    rels["vT"].append((global_v, object_t))
    rels["hT"].append((global_h, object_t))
    rels["vP0"].append((global_v, global_h))

    # Variables: intern representatives in deterministic order.
    thrown_var: Dict[str, int] = {}
    for m in methods:
        m_id = tables["M"].intern(m.qualified)
        for key in method_rep_keys[m.qualified]:
            v_id = tables["V"].intern(key)
            rels["vT"].append((v_id, tables["T"].intern(var_types[key])))
            rels["mV"].append((m_id, v_id))
        if uses_exceptions:
            # The per-method exception channel ("thrown exceptions" are V
            # elements in the paper).
            key = f"{m.qualified}:{THROWN}"
            t_id = tables["V"].intern(key)
            thrown_var[m.qualified] = t_id
            reps[(m.qualified, THROWN)] = key
            rels["vT"].append((t_id, object_t))
            rels["mV"].append((m_id, t_id))
            rels["Mthr"].append((m_id, t_id))

    # formal parameters: z = 0 is the receiver.
    max_arity = 1
    for m in methods:
        m_id = tables["M"].intern(m.qualified)
        z = 0
        if not m.is_static:
            rels["formal"].append((m_id, 0, tables["V"].ids[rep_key(m, "this")]))
        for pos, (pname, _) in enumerate(m.params, start=1):
            rels["formal"].append((m_id, pos, tables["V"].ids[rep_key(m, pname)]))
            max_arity = max(max_arity, pos + 1)

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------
    def vid(m: MethodDecl, var: str) -> int:
        return tables["V"].ids[rep_key(m, var)]

    def fid(cls: str, name: str) -> int:
        return tables["F"].intern(_resolve_field(program, hierarchy, cls, name))

    for m in methods:
        m_id = tables["M"].ids[m.qualified]
        alloc_list = facts.alloc_sites.setdefault(m_id, [])
        for idx, stmt in enumerate(m.statements()):
            if isinstance(stmt, New):
                site_name = f"{m.qualified}@{idx}:new {stmt.cls}"
                h = tables["H"].ids[site_name]
                rels["vP0"].append((vid(m, stmt.dst), h))
                rels["hT"].append((h, tables["T"].intern(stmt.cls)))
                facts.site_method[h] = m_id
                alloc_list.append(h)
            elif isinstance(stmt, Copy):
                d, s = vid(m, stmt.dst), vid(m, stmt.src)
                if d != s:
                    rels["assign0"].append((d, s))
            elif isinstance(stmt, Cast):
                d, s = vid(m, stmt.dst), vid(m, stmt.src)
                if d != s:
                    rels["assign0"].append((d, s))
                rels["castOp"].append((d, tables["T"].intern(stmt.type), s))
            elif isinstance(stmt, Load):
                base_type = var_types[rep_key(m, stmt.base)]
                rels["load"].append(
                    (vid(m, stmt.base), fid(base_type, stmt.field), vid(m, stmt.dst))
                )
            elif isinstance(stmt, Store):
                base_type = var_types[rep_key(m, stmt.base)]
                rels["store"].append(
                    (vid(m, stmt.base), fid(base_type, stmt.field), vid(m, stmt.src))
                )
            elif isinstance(stmt, StaticLoad):
                rels["load"].append(
                    (global_v, fid(stmt.cls, stmt.field), vid(m, stmt.dst))
                )
            elif isinstance(stmt, StaticStore):
                rels["store"].append(
                    (global_v, fid(stmt.cls, stmt.field), vid(m, stmt.src))
                )
            elif isinstance(stmt, Invoke):
                site_name = f"{m.qualified}@{idx}:call {stmt.name}"
                i = tables["I"].intern(site_name)
                facts.site_method[i] = m_id
                if stmt.static_cls is not None:
                    target = program.cls(stmt.static_cls).methods[stmt.name]
                    rels["IE0"].append((i, tables["M"].ids[target.qualified]))
                    rels["mI"].append((m_id, i, tables["N"].ids[NULL_NAME]))
                else:
                    rels["mI"].append((m_id, i, tables["N"].intern(stmt.name)))
                    rels["actual"].append((i, 0, vid(m, stmt.base)))
                for pos, arg in enumerate(stmt.args, start=1):
                    rels["actual"].append((i, pos, vid(m, arg)))
                    max_arity = max(max_arity, pos + 1)
                if stmt.dst is not None:
                    rels["Iret"].append((i, vid(m, stmt.dst)))
            elif isinstance(stmt, Return):
                rels["Mret"].append((m_id, vid(m, stmt.var)))
            elif isinstance(stmt, Throw):
                rels["assign0"].append(
                    (thrown_var[m.qualified], vid(m, stmt.var))
                )
            elif isinstance(stmt, Sync):
                rels["sync"].append((vid(m, stmt.var),))

    facts.max_arity = max_arity
    # IH: the identity embedding of H into I ("H is a subset of I") used by
    # rules (14)/(20) to read an allocation's context out of IEC.
    rels["IH"] = [(h, h) for h in range(len(tables["H"]))]
    facts.maps = {dom: table.names for dom, table in tables.items()}
    facts.relations = {name: sorted(set(tuples)) for name, tuples in rels.items()}
    facts._var_reps = reps
    return facts
