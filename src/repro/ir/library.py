"""The modeled class library, written in mini-Java itself.

The paper analyzes real Java programs together with the JDK class library
("the reachable parts of the program and the class library") and models
some native methods and special fields explicitly.  We model the small
library slice the examples and workloads exercise:

* ``String`` and friends — immutable strings whose methods return fresh
  strings; the Section 5.2 security query flags key material derived from
  any method of this class,
* ``PBEKeySpec``/``Cipher`` — the JCE surface of Section 5.2,
* containers (``ArrayList``, ``HashMap``, ``Iterator``) — shared library
  code through which context-insensitive analyses conflate callers (the
  classic motivation for context sensitivity),
* ``StringBuilder`` — fluent ``return this`` flow,
* ``Thread`` is built into :class:`repro.ir.program.Program`; its
  subclasses' ``start()`` dispatches to ``run()``.
"""

LIBRARY_SOURCE = """
class CharArray {
}

class String {
    field chars : CharArray;

    method toCharArray() returns CharArray {
        var r : CharArray;
        r = new CharArray;
        this.chars = r;
        return r;
    }

    method concat(other : String) returns String {
        var r : String;
        r = new String;
        return r;
    }

    method substring() returns String {
        var r : String;
        r = new String;
        return r;
    }

    method intern() returns String {
        return this;
    }

    static method valueOf(o : Object) returns String {
        var r : String;
        r = new String;
        return r;
    }
}

class StringBuilder {
    field buf : Object;

    method append(o : Object) returns StringBuilder {
        this.buf = o;
        return this;
    }

    method build() returns String {
        var r : String;
        r = new String;
        return r;
    }
}

class ArrayList {
    field elems : Object;

    method add(e : Object) {
        this.elems = e;
    }

    method get() returns Object {
        var r : Object;
        r = this.elems;
        return r;
    }

    method iterator() returns Iterator {
        var it : Iterator;
        it = new Iterator;
        it.owner = this;
        return it;
    }
}

class Iterator {
    field owner : ArrayList;

    method next() returns Object {
        var o : ArrayList;
        var r : Object;
        o = this.owner;
        r = o.elems;
        return r;
    }
}

class HashMap {
    field keys : Object;
    field vals : Object;

    method put(k : Object, v : Object) {
        this.keys = k;
        this.vals = v;
    }

    method get(k : Object) returns Object {
        var r : Object;
        r = this.vals;
        return r;
    }
}

class LinkedList {
    field head : ListNode;

    method push(e : Object) {
        var n : ListNode;
        var h : ListNode;
        n = new ListNode;
        n.value = e;
        h = this.head;
        n.next = h;
        this.head = n;
    }

    method pop() returns Object {
        var n : ListNode;
        var rest : ListNode;
        var r : Object;
        n = this.head;
        rest = n.next;
        this.head = rest;
        r = n.value;
        return r;
    }

    method peek() returns Object {
        var n : ListNode;
        var r : Object;
        n = this.head;
        r = n.value;
        return r;
    }
}

class ListNode {
    field value : Object;
    field next : ListNode;
}

class Stack {
    field items : LinkedList;

    method push(e : Object) {
        var l : LinkedList;
        l = this.items;
        l.push(e);
    }

    method pop() returns Object {
        var l : LinkedList;
        var r : Object;
        l = this.items;
        r = l.pop();
        return r;
    }
}

class Exception {
    field message : String;

    method getMessage() returns String {
        var r : String;
        r = this.message;
        return r;
    }
}

class RuntimeException extends Exception {
}

class PBEKeySpec {
    field password : Object;

    method init(key : Object) {
        this.password = key;
    }

    method clearPassword() {
    }
}

class SecretKey {
}

class SecretKeyFactory {
    method generateSecret(spec : PBEKeySpec) returns SecretKey {
        var k : SecretKey;
        k = new SecretKey;
        return k;
    }
}

class Cipher {
    field spec : PBEKeySpec;
    field key : SecretKey;

    method setKeySpec(s : PBEKeySpec) {
        this.spec = s;
    }

    method initKey(k : SecretKey) {
        this.key = k;
    }
}
"""

__all__ = ["LIBRARY_SOURCE"]
