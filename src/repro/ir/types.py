"""Class hierarchy queries: assignability and virtual dispatch.

Provides the inputs the paper's type-aware rules consume:

* ``aT(t1, t2)`` — type ``t2`` is assignable to ``t1`` ("assignability is
  similar to the subtype relation, with allowances for interfaces", §2.3),
* ``cha(t, n, m)`` — class-hierarchy dispatch: invoking method name ``n``
  on an object of concrete type ``t`` runs method ``m`` (Dean et al.'s
  class hierarchy analysis, used by Algorithm 3's rule (11)).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .program import ClassDecl, IRError, MethodDecl, Program, OBJECT, THREAD

__all__ = ["TypeHierarchy"]


class TypeHierarchy:
    """Precomputed subtype/assignability/dispatch tables for a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._supertypes: Dict[str, Set[str]] = {}
        for name in program.classes:
            self._supertypes[name] = self._compute_supertypes(name)

    def _compute_supertypes(self, name: str) -> Set[str]:
        out: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            if cur in out:
                continue
            out.add(cur)
            decl = self.program.classes[cur]
            if decl.superclass is not None:
                stack.append(decl.superclass)
            stack.extend(decl.interfaces)
        return out

    # ------------------------------------------------------------------

    def supertypes(self, name: str) -> Set[str]:
        """All types ``name`` is assignable to, including itself."""
        st = self._supertypes.get(name)
        if st is None:
            raise IRError(f"unknown type {name}")
        return st

    def subtypes(self, name: str) -> Set[str]:
        """All types assignable to ``name``, including itself."""
        return {t for t, sups in self._supertypes.items() if name in sups}

    def is_assignable(self, target: str, source: str) -> bool:
        """True when a value of type ``source`` may be stored in a slot of
        declared type ``target`` (the paper's ``aT(target, source)``)."""
        return target in self.supertypes(source)

    def assignable_pairs(self) -> Iterator[Tuple[str, str]]:
        """All ``aT`` tuples: (supertype, subtype)."""
        for sub, sups in self._supertypes.items():
            for sup in sups:
                yield (sup, sub)

    def is_thread_type(self, name: str) -> bool:
        return THREAD in self.supertypes(name)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def resolve(self, cls_name: str, method_name: str) -> Optional[MethodDecl]:
        """Walk the superclass chain for the implementation of a method."""
        cur: Optional[str] = cls_name
        while cur is not None:
            decl = self.program.classes[cur]
            method = decl.methods.get(method_name)
            if method is not None and not method.is_abstract:
                return method
            cur = decl.superclass
        return None

    def dispatch_tuples(self) -> Iterator[Tuple[str, str, MethodDecl]]:
        """All ``cha(t, n, m)`` tuples over concrete receiver types.

        For every concrete class ``t`` and every method name visible on it,
        yields the implementation that a virtual call would run.  Calls to
        ``start`` on thread subtypes dispatch to the type's ``run`` method —
        the paper's footnote 3 ("we also match thread objects to their
        corresponding run() methods").
        """
        for cls in self.program.concrete_classes():
            names: Set[str] = set()
            cur: Optional[str] = cls.name
            while cur is not None:
                decl = self.program.classes[cur]
                names.update(
                    n for n, m in decl.methods.items()
                    if not m.is_static and not m.is_abstract
                )
                cur = decl.superclass
            for iface in self._collected_interfaces(cls.name):
                names.update(self.program.classes[iface].methods.keys())
            for name in sorted(names):
                target = self.resolve(cls.name, name)
                if target is None:
                    continue
                if name == "start" and self.is_thread_type(cls.name):
                    run = self.resolve(cls.name, "run")
                    if run is not None:
                        yield (cls.name, "start", run)
                    continue
                yield (cls.name, name, target)

    def _collected_interfaces(self, name: str) -> Set[str]:
        out: Set[str] = set()
        cur: Optional[str] = name
        while cur is not None:
            decl = self.program.classes[cur]
            for iface in decl.interfaces:
                out |= self._supertypes[iface] & {
                    t for t, d in self.program.classes.items() if d.is_interface
                }
            cur = decl.superclass
        return out

    # ------------------------------------------------------------------

    def declared_type(self, method: MethodDecl, var: str) -> str:
        """Declared type of a local/parameter; defaults to Object."""
        if var == "this":
            return method.owner
        for pname, ptype in method.params:
            if pname == var:
                return ptype
        return method.locals.get(var, OBJECT)
