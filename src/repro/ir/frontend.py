"""A small front end: parse mini-Java source into IR programs.

The concrete language covers exactly what the analysis observes —
allocation, copies, casts, field access, virtual/static calls, returns,
threads and synchronization — with nondeterministic control flow (the
analysis is flow-insensitive, so conditions carry no information)::

    interface Shape {
        method area(unit : Object) returns Object;
    }

    class Circle extends Object implements Shape {
        field r : Object;

        method area(unit : Object) returns Object {
            var t : Object;
            t = this.r;
            return t;
        }
    }

    class Main {
        static field cache : Object;

        static method main() {
            var s : Circle;
            s = new Circle;
            o = new Object;           // undeclared locals default to Object
            s.r = o;
            a = s.area(o);
            Main.cache = a;
            if (*) { b = s.r; } else { b = Main.cache; }
            while (*) { s.area(b); }
            t = new Worker;           // class Worker extends Thread
            t.start();
            sync a;
        }
    }

Statics are accessed as ``ClassName.field`` and modeled through the global
object; ``x = (T) y`` is a type-filtered assignment; ``t.start()`` on a
``Thread`` subtype dispatches to its ``run`` method (footnote 3).
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Set, Tuple

from .program import (
    Cast,
    ClassDecl,
    Copy,
    FieldDecl,
    If,
    Invoke,
    IRError,
    Load,
    MethodDecl,
    New,
    NullAssign,
    Program,
    Return,
    Statement,
    StaticLoad,
    StaticStore,
    Store,
    Sync,
    Throw,
    While,
)

__all__ = ["parse_program", "parse_classes", "ParseError"]


class ParseError(IRError):
    """Raised on mini-Java syntax errors, with a line number."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<sym>[{}();,.:=*])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {
    "class", "interface", "extends", "implements", "field", "method",
    "static", "returns", "var", "new", "return", "sync", "if", "else",
    "while", "this", "throw", "null",
}


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"line {line}: cannot tokenize near {text[pos:pos+20]!r}")
        value = m.group()
        kind = m.lastgroup
        line += value.count("\n")
        pos = m.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, value, line))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        # Pre-scan class/interface names so member access can distinguish
        # static (``Cls.f``) from instance (``x.f``) references.
        self.class_names: Set[str] = {"Object", "Thread"}
        for i, (kind, value, _) in enumerate(self.tokens):
            if value in ("class", "interface") and i + 1 < len(self.tokens):
                self.class_names.add(self.tokens[i + 1][1])

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Tuple[str, str, int]]:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> Tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, value: str) -> Tuple[str, str, int]:
        tok = self.next()
        if tok[1] != value:
            raise ParseError(f"line {tok[2]}: expected {value!r}, got {tok[1]!r}")
        return tok

    def expect_ident(self) -> str:
        kind, value, line = self.next()
        if kind != "ident" or value in _KEYWORDS - {"this"}:
            raise ParseError(f"line {line}: expected identifier, got {value!r}")
        return value

    def at(self, value: str) -> bool:
        tok = self.peek()
        return tok is not None and tok[1] == value

    def accept(self, value: str) -> bool:
        if self.at(value):
            self.next()
            return True
        return False

    # -- declarations -----------------------------------------------------

    def parse(self) -> List[ClassDecl]:
        decls = []
        while self.peek() is not None:
            tok = self.peek()
            if tok[1] == "class":
                decls.append(self._class())
            elif tok[1] == "interface":
                decls.append(self._interface())
            else:
                raise ParseError(
                    f"line {tok[2]}: expected 'class' or 'interface', got {tok[1]!r}"
                )
        return decls

    def _interface(self) -> ClassDecl:
        self.expect("interface")
        name = self.expect_ident()
        decl = ClassDecl(name, superclass=None, is_interface=True)
        self.expect("{")
        while not self.accept("}"):
            self.expect("method")
            mname = self.expect_ident()
            params = self._params()
            returns = self.expect_ident() if self.accept("returns") else None
            self.expect(";")
            decl.add_method(
                MethodDecl(mname, params=params, return_type=returns, is_abstract=True)
            )
        return decl

    def _class(self) -> ClassDecl:
        self.expect("class")
        name = self.expect_ident()
        superclass = "Object"
        interfaces: List[str] = []
        if self.accept("extends"):
            superclass = self.expect_ident()
        if self.accept("implements"):
            interfaces.append(self.expect_ident())
            while self.accept(","):
                interfaces.append(self.expect_ident())
        decl = ClassDecl(name, superclass=superclass, interfaces=interfaces)
        self.expect("{")
        while not self.accept("}"):
            is_static = self.accept("static")
            if self.accept("field"):
                fname = self.expect_ident()
                self.expect(":")
                ftype = self.expect_ident()
                self.expect(";")
                decl.add_field(FieldDecl(fname, ftype, is_static=is_static))
            elif self.accept("method"):
                decl.add_method(self._method(is_static))
            else:
                tok = self.peek()
                raise ParseError(
                    f"line {tok[2]}: expected 'field' or 'method', got {tok[1]!r}"
                )
        return decl

    def _params(self) -> List[Tuple[str, str]]:
        self.expect("(")
        params: List[Tuple[str, str]] = []
        if not self.at(")"):
            while True:
                pname = self.expect_ident()
                self.expect(":")
                ptype = self.expect_ident()
                params.append((pname, ptype))
                if not self.accept(","):
                    break
        self.expect(")")
        return params

    def _method(self, is_static: bool) -> MethodDecl:
        name = self.expect_ident()
        params = self._params()
        returns = self.expect_ident() if self.accept("returns") else None
        decl = MethodDecl(
            name, params=params, return_type=returns, is_static=is_static
        )
        decl.body.extend(self._block(decl))
        return decl

    # -- statements -------------------------------------------------------

    def _block(self, method: MethodDecl) -> List[Statement]:
        self.expect("{")
        out: List[Statement] = []
        while not self.accept("}"):
            stmt = self._statement(method)
            if stmt is not None:
                out.append(stmt)
        return out

    def _statement(self, method: MethodDecl) -> Optional[Statement]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input in method body")
        if self.accept("var"):
            name = self.expect_ident()
            self.expect(":")
            type_name = self.expect_ident()
            self.expect(";")
            method.locals[name] = type_name
            return None
        if self.accept("return"):
            var = self._receiver()
            self.expect(";")
            return Return(var)
        if self.accept("sync"):
            var = self._receiver()
            self.expect(";")
            return Sync(var)
        if self.accept("throw"):
            var = self._receiver()
            self.expect(";")
            return Throw(var)
        if self.accept("if"):
            self.expect("(")
            self.expect("*")
            self.expect(")")
            then = tuple(self._block(method))
            els: Tuple[Statement, ...] = ()
            if self.accept("else"):
                els = tuple(self._block(method))
            return If(then, els)
        if self.accept("while"):
            self.expect("(")
            self.expect("*")
            self.expect(")")
            return While(tuple(self._block(method)))
        return self._assignment_or_call(method)

    def _receiver(self) -> str:
        kind, value, line = self.next()
        if value == "this":
            return "this"
        if kind != "ident" or value in _KEYWORDS - {"this"}:
            raise ParseError(f"line {line}: expected variable, got {value!r}")
        return value

    def _args(self) -> Tuple[str, ...]:
        self.expect("(")
        args: List[str] = []
        if not self.at(")"):
            while True:
                args.append(self._receiver())
                if not self.accept(","):
                    break
        self.expect(")")
        return tuple(args)

    def _assignment_or_call(self, method: MethodDecl) -> Statement:
        first = self._receiver()
        if self.accept("."):
            member = self.expect_ident()
            if self.at("("):
                # Expression-statement call: base.m(args);
                args = self._args()
                self.expect(";")
                if first in self.class_names:
                    return Invoke(name=member, args=args, static_cls=first)
                return Invoke(name=member, args=args, base=first)
            # Store: base.f = src;
            self.expect("=")
            src = self._receiver()
            self.expect(";")
            if first in self.class_names:
                return StaticStore(first, member, src)
            return Store(first, member, src)
        # Assignment: dst = rhs;
        self.expect("=")
        dst = first
        if self.accept("null"):
            self.expect(";")
            return NullAssign(dst)
        if self.accept("new"):
            cls = self.expect_ident()
            self.expect(";")
            return New(dst, cls)
        if self.accept("("):
            type_name = self.expect_ident()
            self.expect(")")
            src = self._receiver()
            self.expect(";")
            return Cast(dst, type_name, src)
        src = self._receiver()
        if self.accept("."):
            member = self.expect_ident()
            if self.at("("):
                args = self._args()
                self.expect(";")
                if src in self.class_names:
                    return Invoke(name=member, args=args, dst=dst, static_cls=src)
                return Invoke(name=member, args=args, dst=dst, base=src)
            self.expect(";")
            if src in self.class_names:
                return StaticLoad(dst, src, member)
            return Load(dst, src, member)
        self.expect(";")
        return Copy(dst, src)


def parse_classes(text: str) -> List[ClassDecl]:
    """Parse mini-Java source into class declarations (no program assembly)."""
    return _Parser(text).parse()


def parse_program(
    text: str,
    main: str = "Main",
    main_method: str = "main",
    library: Optional[str] = None,
    include_library: bool = True,
) -> Program:
    """Parse source text into a validated :class:`Program`.

    The built-in class library (:mod:`repro.ir.library`) is linked in by
    default so programs can use ``String``, containers, and the JCE model.
    """
    program = Program()
    if include_library:
        from .library import LIBRARY_SOURCE

        for decl in parse_classes(library if library is not None else LIBRARY_SOURCE):
            program.add_class(decl)
    elif library:
        for decl in parse_classes(library):
            program.add_class(decl)
    for decl in parse_classes(text):
        program.add_class(decl)
    program.set_main(main, main_method)
    program.validate()
    return program
