"""Fluent programmatic construction of mini-Java programs.

Used by tests and by the workload generator.  Example::

    b = ProgramBuilder()
    box = b.new_class("Box")
    b.field(box, "item", "Object")

    main = b.new_class("Main")
    m = b.static_method(main, "main")
    m.new("b", "Box")
    m.new("o", "Object")
    m.store("b", "item", "o")
    m.load("x", "b", "item")

    program = b.build(main="Main")
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .program import (
    Cast,
    ClassDecl,
    Copy,
    FieldDecl,
    If,
    Invoke,
    IRError,
    Load,
    MethodDecl,
    New,
    NullAssign,
    Program,
    Return,
    Statement,
    StaticLoad,
    StaticStore,
    Store,
    Sync,
    Throw,
    While,
)

__all__ = ["ProgramBuilder", "MethodBuilder"]


class MethodBuilder:
    """Appends statements to a method body."""

    def __init__(self, decl: MethodDecl):
        self.decl = decl
        self._blocks: List[List[Statement]] = [decl.body]
        self._kinds: List[str] = ["body"]

    # -- declarations ---------------------------------------------------

    def local(self, name: str, type_name: str) -> "MethodBuilder":
        self.decl.locals[name] = type_name
        return self

    # -- statements -----------------------------------------------------

    def _emit(self, stmt: Statement) -> "MethodBuilder":
        self._blocks[-1].append(stmt)
        return self

    def new(self, dst: str, cls: str) -> "MethodBuilder":
        return self._emit(New(dst, cls))

    def copy(self, dst: str, src: str) -> "MethodBuilder":
        return self._emit(Copy(dst, src))

    def cast(self, dst: str, type_name: str, src: str) -> "MethodBuilder":
        return self._emit(Cast(dst, type_name, src))

    def load(self, dst: str, base: str, field: str) -> "MethodBuilder":
        return self._emit(Load(dst, base, field))

    def store(self, base: str, field: str, src: str) -> "MethodBuilder":
        return self._emit(Store(base, field, src))

    def static_load(self, dst: str, cls: str, field: str) -> "MethodBuilder":
        return self._emit(StaticLoad(dst, cls, field))

    def static_store(self, cls: str, field: str, src: str) -> "MethodBuilder":
        return self._emit(StaticStore(cls, field, src))

    def invoke(
        self,
        base: str,
        name: str,
        args: Sequence[str] = (),
        dst: Optional[str] = None,
    ) -> "MethodBuilder":
        return self._emit(Invoke(name=name, args=tuple(args), dst=dst, base=base))

    def invoke_static(
        self,
        cls: str,
        name: str,
        args: Sequence[str] = (),
        dst: Optional[str] = None,
    ) -> "MethodBuilder":
        return self._emit(
            Invoke(name=name, args=tuple(args), dst=dst, static_cls=cls)
        )

    def ret(self, var: str) -> "MethodBuilder":
        return self._emit(Return(var))

    def sync(self, var: str) -> "MethodBuilder":
        return self._emit(Sync(var))

    def throw(self, var: str) -> "MethodBuilder":
        return self._emit(Throw(var))

    def null(self, dst: str) -> "MethodBuilder":
        return self._emit(NullAssign(dst))

    # -- control flow (nondeterministic) ---------------------------------

    def begin_if(self) -> "MethodBuilder":
        self._blocks.append([])
        self._kinds.append("then")
        return self

    def begin_else(self) -> "MethodBuilder":
        if self._kinds[-1] != "then":
            raise IRError("begin_else without matching begin_if")
        self._blocks.append([])
        self._kinds.append("else")
        return self

    def end_if(self) -> "MethodBuilder":
        els: List[Statement] = []
        if self._kinds[-1] == "else":
            els = self._blocks.pop()
            self._kinds.pop()
        if self._kinds[-1] != "then":
            raise IRError("end_if without matching begin_if")
        then = self._blocks.pop()
        self._kinds.pop()
        self._blocks[-1].append(If(tuple(then), tuple(els)))
        return self

    def begin_while(self) -> "MethodBuilder":
        self._blocks.append([])
        self._kinds.append("while")
        return self

    def end_while(self) -> "MethodBuilder":
        if self._kinds[-1] != "while":
            raise IRError("end_while without matching begin_while")
        body = self._blocks.pop()
        self._kinds.pop()
        self._blocks[-1].append(While(tuple(body)))
        return self


class ProgramBuilder:
    """Incrementally assembles a :class:`~repro.ir.program.Program`."""

    def __init__(self) -> None:
        self.program = Program()

    def new_class(
        self,
        name: str,
        extends: str = "Object",
        implements: Sequence[str] = (),
    ) -> ClassDecl:
        decl = ClassDecl(name, superclass=extends, interfaces=list(implements))
        return self.program.add_class(decl)

    def new_interface(self, name: str) -> ClassDecl:
        decl = ClassDecl(name, superclass=None, is_interface=True)
        return self.program.add_class(decl)

    def field(
        self, cls: ClassDecl, name: str, type_name: str, static: bool = False
    ) -> FieldDecl:
        return cls.add_field(FieldDecl(name, type_name, is_static=static))

    def abstract_method(
        self,
        cls: ClassDecl,
        name: str,
        params: Sequence[Tuple[str, str]] = (),
        returns: Optional[str] = None,
    ) -> MethodDecl:
        decl = MethodDecl(
            name, params=list(params), return_type=returns, is_abstract=True
        )
        cls.add_method(decl)
        return decl

    def method(
        self,
        cls: ClassDecl,
        name: str,
        params: Sequence[Tuple[str, str]] = (),
        returns: Optional[str] = None,
    ) -> MethodBuilder:
        decl = MethodDecl(name, params=list(params), return_type=returns)
        cls.add_method(decl)
        return MethodBuilder(decl)

    def static_method(
        self,
        cls: ClassDecl,
        name: str,
        params: Sequence[Tuple[str, str]] = (),
        returns: Optional[str] = None,
    ) -> MethodBuilder:
        decl = MethodDecl(
            name, params=list(params), return_type=returns, is_static=True
        )
        cls.add_method(decl)
        return MethodBuilder(decl)

    def build(self, main: str, main_method: str = "main") -> Program:
        self.program.set_main(main, main_method)
        self.program.validate()
        return self.program
