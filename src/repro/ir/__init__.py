"""Mini-Java IR: the program substrate for the pointer analyses.

* :mod:`repro.ir.program` — classes, methods, statements,
* :mod:`repro.ir.types` — hierarchy queries (assignability, dispatch),
* :mod:`repro.ir.builder` — programmatic construction,
* :mod:`repro.ir.frontend` — the mini-Java source parser,
* :mod:`repro.ir.library` — the modeled class library,
* :mod:`repro.ir.facts` — extraction of the paper's input relations.
"""

from .program import (
    Cast,
    ClassDecl,
    Copy,
    FieldDecl,
    If,
    Invoke,
    IRError,
    Load,
    MethodDecl,
    New,
    Program,
    Return,
    StaticLoad,
    StaticStore,
    Statement,
    Store,
    Sync,
    While,
    OBJECT,
    THREAD,
)
from .types import TypeHierarchy
from .builder import MethodBuilder, ProgramBuilder
from .frontend import ParseError, parse_classes, parse_program
from .facts import Facts, extract_facts, GLOBAL, NULL_NAME

__all__ = [
    "Cast",
    "ClassDecl",
    "Copy",
    "Facts",
    "FieldDecl",
    "GLOBAL",
    "If",
    "Invoke",
    "IRError",
    "Load",
    "MethodBuilder",
    "MethodDecl",
    "NULL_NAME",
    "New",
    "OBJECT",
    "ParseError",
    "Program",
    "ProgramBuilder",
    "Return",
    "Statement",
    "StaticLoad",
    "StaticStore",
    "Store",
    "Sync",
    "THREAD",
    "TypeHierarchy",
    "While",
    "extract_facts",
    "parse_classes",
    "parse_program",
]
