"""Mini-Java program representation.

This is the substrate standing in for Java bytecode + the Joeq front end:
a class-based, single-inheritance object language with interfaces, fields,
static members, virtual dispatch, threads, and synchronization — exactly
the features the paper's input relations (``vP0, store, load, assign, vT,
hT, aT, cha, actual, formal, IE0, mI, ...``) encode.

Programs are built either programmatically (:mod:`repro.ir.builder`), by
parsing mini-Java source (:mod:`repro.ir.frontend`), or by the workload
generator (:mod:`repro.bench.generator`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "IRError",
    "New",
    "Copy",
    "Cast",
    "Load",
    "Store",
    "StaticLoad",
    "StaticStore",
    "Invoke",
    "Return",
    "Sync",
    "Throw",
    "NullAssign",
    "If",
    "While",
    "Statement",
    "FieldDecl",
    "MethodDecl",
    "ClassDecl",
    "Program",
    "OBJECT",
    "THREAD",
    "CLINIT",
]

# Name of class-initializer methods; static methods with this name are
# additional program entry points ("we included all class initializers,
# thread run methods, and finalizers", Section 6.1).
CLINIT = "clinit"

# Built-in root class and thread base class names.
OBJECT = "Object"
THREAD = "Thread"


class IRError(Exception):
    """Raised on malformed programs."""


# ----------------------------------------------------------------------
# Statements.  All operands are local variable names within the method.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class New:
    """``dst = new cls;`` — an allocation site (also an invocation site)."""

    dst: str
    cls: str


@dataclass(frozen=True)
class Copy:
    """``dst = src;``"""

    dst: str
    src: str


@dataclass(frozen=True)
class Cast:
    """``dst = (type) src;`` — a filtered assignment."""

    dst: str
    type: str
    src: str


@dataclass(frozen=True)
class Load:
    """``dst = base.field;``"""

    dst: str
    base: str
    field: str


@dataclass(frozen=True)
class Store:
    """``base.field = src;``"""

    base: str
    field: str
    src: str


@dataclass(frozen=True)
class StaticLoad:
    """``dst = Cls.field;`` — reads a static through the global object."""

    dst: str
    cls: str
    field: str


@dataclass(frozen=True)
class StaticStore:
    """``Cls.field = src;``"""

    cls: str
    field: str
    src: str


@dataclass(frozen=True)
class Invoke:
    """``[dst =] base.name(args)`` or ``[dst =] Cls.name(args)``.

    Virtual calls have ``base``; static calls have ``static_cls``.
    """

    name: str
    args: Tuple[str, ...] = ()
    dst: Optional[str] = None
    base: Optional[str] = None
    static_cls: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.base is None) == (self.static_cls is None):
            raise IRError(
                f"invoke {self.name}: exactly one of base/static_cls required"
            )


@dataclass(frozen=True)
class Return:
    """``return var;``"""

    var: str


@dataclass(frozen=True)
class Throw:
    """``throw var;`` — the thrown value escapes to the callers.

    The paper's V domain includes "thrown exceptions"; we model a
    per-method exception channel that propagates along call edges like a
    second return value.  Exception objects of the same type are merged by
    the paper; here every throw site keeps its object (our programs are
    small enough)."""

    var: str


@dataclass(frozen=True)
class NullAssign:
    """``var = null;`` — ignored by the analysis.

    "We ignored null constants in the analysis — every points-to set is
    automatically assumed to include null" (Section 6.1)."""

    dst: str


@dataclass(frozen=True)
class Sync:
    """``sync var;`` — a synchronization operation on ``var``."""

    var: str


@dataclass(frozen=True)
class If:
    """Nondeterministic branch; the pointer analysis is flow-insensitive
    across branches, so no condition is represented."""

    then: Tuple["Statement", ...]
    els: Tuple["Statement", ...] = ()


@dataclass(frozen=True)
class While:
    """Nondeterministic loop."""

    body: Tuple["Statement", ...]


Statement = Union[
    New, Copy, Cast, Load, Store, StaticLoad, StaticStore, Invoke, Return, Sync,
    Throw, NullAssign, If, While,
]


def flatten(statements: Sequence[Statement]) -> Iterator[Statement]:
    """Yield all simple statements, descending into If/While blocks."""
    for stmt in statements:
        if isinstance(stmt, If):
            yield from flatten(stmt.then)
            yield from flatten(stmt.els)
        elif isinstance(stmt, While):
            yield from flatten(stmt.body)
        else:
            yield stmt


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass
class FieldDecl:
    """A field declaration; statics live on the global object."""

    name: str
    type: str
    owner: str = ""
    is_static: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.owner}.{self.name}"


@dataclass
class MethodDecl:
    """A method: signature, body statements, and declared local types."""

    name: str
    owner: str = ""
    params: List[Tuple[str, str]] = field(default_factory=list)  # (name, type)
    return_type: Optional[str] = None
    body: List[Statement] = field(default_factory=list)
    is_static: bool = False
    is_abstract: bool = False
    locals: Dict[str, str] = field(default_factory=dict)  # declared local types

    @property
    def qualified(self) -> str:
        return f"{self.owner}.{self.name}"

    def statements(self) -> Iterator[Statement]:
        return flatten(self.body)


@dataclass
class ClassDecl:
    """A class or interface declaration."""

    name: str
    superclass: Optional[str] = OBJECT
    interfaces: List[str] = field(default_factory=list)
    fields: Dict[str, FieldDecl] = field(default_factory=dict)
    methods: Dict[str, MethodDecl] = field(default_factory=dict)
    is_interface: bool = False

    def add_field(self, decl: FieldDecl) -> FieldDecl:
        decl.owner = self.name
        if decl.name in self.fields:
            raise IRError(f"duplicate field {self.name}.{decl.name}")
        self.fields[decl.name] = decl
        return decl

    def add_method(self, decl: MethodDecl) -> MethodDecl:
        decl.owner = self.name
        if decl.name in self.methods:
            raise IRError(f"duplicate method {self.name}.{decl.name}")
        self.methods[decl.name] = decl
        return decl


class Program:
    """A closed mini-Java program: classes plus an entry point."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassDecl] = {}
        self.main_class: Optional[str] = None
        # The built-in roots always exist.
        self.add_class(ClassDecl(OBJECT, superclass=None))
        thread = ClassDecl(THREAD, superclass=OBJECT)
        thread.add_method(MethodDecl("run", body=[]))
        thread.add_method(MethodDecl("start", body=[]))
        self.add_class(thread)

    def add_class(self, decl: ClassDecl) -> ClassDecl:
        """Register a class; duplicate names are rejected."""
        if decl.name in self.classes:
            raise IRError(f"duplicate class {decl.name}")
        self.classes[decl.name] = decl
        return decl

    def cls(self, name: str) -> ClassDecl:
        """Look up a class by name (raises IRError if unknown)."""
        decl = self.classes.get(name)
        if decl is None:
            raise IRError(f"unknown class {name}")
        return decl

    def method(self, qualified: str) -> MethodDecl:
        """Look up a method by qualified name, e.g. ``"Main.main"``."""
        cls_name, _, meth_name = qualified.partition(".")
        decl = self.cls(cls_name).methods.get(meth_name)
        if decl is None:
            raise IRError(f"unknown method {qualified}")
        return decl

    def set_main(self, cls_name: str, method_name: str = "main") -> None:
        """Designate the program entry point (a static method)."""
        decl = self.cls(cls_name).methods.get(method_name)
        if decl is None:
            raise IRError(f"no method {cls_name}.{method_name}")
        if not decl.is_static:
            raise IRError(f"entry point {cls_name}.{method_name} must be static")
        self.main_class = cls_name
        self.main_method = method_name

    @property
    def entry(self) -> MethodDecl:
        """The main entry method."""
        if self.main_class is None:
            raise IRError("program has no entry point (call set_main)")
        return self.cls(self.main_class).methods[self.main_method]

    def entry_methods(self) -> List[MethodDecl]:
        """All root methods: main plus every static class initializer.

        (Thread ``run`` methods are reached through ``start`` dispatch
        edges, so they need no special-casing here.)"""
        out = [self.entry]
        for cls in self.classes.values():
            decl = cls.methods.get(CLINIT)
            if decl is not None and decl.is_static and decl is not out[0]:
                out.append(decl)
        return out

    # ------------------------------------------------------------------

    def all_methods(self) -> Iterator[MethodDecl]:
        """Every method of every class, declaration order."""
        for cls in self.classes.values():
            yield from cls.methods.values()

    def concrete_classes(self) -> Iterator[ClassDecl]:
        """Every non-interface class."""
        for cls in self.classes.values():
            if not cls.is_interface:
                yield cls

    def validate(self) -> None:
        """Check referential integrity of the class hierarchy and bodies."""
        for cls in self.classes.values():
            if cls.superclass is not None and cls.superclass not in self.classes:
                raise IRError(f"class {cls.name}: unknown superclass {cls.superclass}")
            for iface in cls.interfaces:
                idecl = self.classes.get(iface)
                if idecl is None:
                    raise IRError(f"class {cls.name}: unknown interface {iface}")
                if not idecl.is_interface:
                    raise IRError(f"class {cls.name}: {iface} is not an interface")
            for fld in cls.fields.values():
                if fld.type not in self.classes:
                    raise IRError(
                        f"field {fld.qualified}: unknown type {fld.type}"
                    )
            for method in cls.methods.values():
                self._validate_method(method)
        # Inheritance cycles.
        for cls in self.classes.values():
            seen = set()
            cur: Optional[str] = cls.name
            while cur is not None:
                if cur in seen:
                    raise IRError(f"inheritance cycle through {cur}")
                seen.add(cur)
                cur = self.classes[cur].superclass

    def _validate_method(self, method: MethodDecl) -> None:
        where = method.qualified
        for name, typ in method.params:
            if typ not in self.classes:
                raise IRError(f"{where}: unknown parameter type {typ}")
        if method.return_type is not None and method.return_type not in self.classes:
            raise IRError(f"{where}: unknown return type {method.return_type}")
        for typ in method.locals.values():
            if typ not in self.classes:
                raise IRError(f"{where}: unknown local type {typ}")
        for stmt in method.statements():
            if isinstance(stmt, New):
                decl = self.classes.get(stmt.cls)
                if decl is None:
                    raise IRError(f"{where}: new of unknown class {stmt.cls}")
                if decl.is_interface:
                    raise IRError(f"{where}: cannot instantiate interface {stmt.cls}")
            elif isinstance(stmt, Cast):
                if stmt.type not in self.classes:
                    raise IRError(f"{where}: cast to unknown type {stmt.type}")
            elif isinstance(stmt, (StaticLoad, StaticStore)):
                cls = self.classes.get(stmt.cls)
                if cls is None:
                    raise IRError(f"{where}: unknown class {stmt.cls}")
            elif isinstance(stmt, Invoke) and stmt.static_cls is not None:
                cls = self.classes.get(stmt.static_cls)
                if cls is None:
                    raise IRError(f"{where}: unknown class {stmt.static_cls}")
                target = cls.methods.get(stmt.name)
                if target is None or not target.is_static:
                    raise IRError(
                        f"{where}: no static method {stmt.static_cls}.{stmt.name}"
                    )

    def stats(self) -> Dict[str, int]:
        """Vitals in the shape of Figure 3's columns."""
        methods = 0
        statements = 0
        allocs = 0
        for m in self.all_methods():
            methods += 1
            for stmt in m.statements():
                statements += 1
                if isinstance(stmt, New):
                    allocs += 1
        return {
            "classes": len(self.classes),
            "methods": methods,
            "statements": statements,
            "allocs": allocs,
        }
