"""The vectorized flat-arena BDD backend.

``ArenaBDD`` keeps the packed backend's flat parallel-array node arena
(``_var``/``_low``/``_high`` plus a packed-integer unique table and one
unified operation cache — no per-node Python objects anywhere) and adds
the two execution-layer features the plan optimizer's fused superops
need:

* a **native ``rel_prod_replace``**: when the interned rename map is
  order-safe (monotone, no untouched level crossed — the same structural
  test :meth:`replace` uses to pick its ``mk``-based fast path), the
  rename is applied *while the join result is being built*: every node
  the relational product emits is created directly at its renamed level,
  so the intermediate un-renamed BDD is never constructed and never
  walked a second time.  Order-unsafe maps and wide arenas fall back to
  the ``replace(rel_prod(...))`` composition, which is always correct.
* a **level-synchronized iterative apply** for wide arenas: where the
  packed backend switches to a generic explicit stack above
  ``_RECURSION_SAFE_VARS`` levels, this backend expands the operand-pair
  frontier level by level (all subproblems of one variable level are
  discovered together) and then resolves the levels bottom-up — no
  recursion, no per-frame markers, and the working set is grouped by
  level so cofactor reads stay local to one slice of the arena.

When NumPy is importable the quantifying operations go one step
further: ``rel_prod``, ``rel_prod_replace``, ``exist``, and ``or_all``
run as **vectorized level-synchronized sweeps** over a NumPy mirror of
the node arena.  Instead of one Python frame per operand pair, the whole
frontier of one variable level is expanded as three array operations
(gather cofactors, apply the terminal rules, dedupe with ``np.unique``),
and the bottom-up resolution phase batches node construction per level
so the Python-loop cost is proportional to the number of *distinct new
nodes*, not the number of visited pairs.  The mirror is append-only
between garbage collections, so keeping it synchronized costs one slice
copy of the freshly created tail.  Without NumPy (or above 512
variables, where the packed 63-bit unique keys would overflow the int64
mirror) every operation falls back to the scalar paths below — the
backend never requires the dependency.

Correctness story: order-safety of a rename map is a *global* property
(the full level map ``v -> map.get(v, v)`` is strictly monotone), so a
node emitted at its renamed level during the join recursion can never be
ordered above a child produced below it — the same argument that makes
the reference backend's ``_replace_fast`` sound, applied at ``mk`` time.
Fused results are cached under a dedicated ``(varset, map)`` pair tag so
they can never collide with plain ``rel_prod`` entries.  The vectorized
sweeps share the packed cache-key formulas, so scalar and vectorized
executions populate (and benefit from) the same unified operation cache.
The backend is proven equivalent to ``reference`` and ``packed`` by the
differential fingerprint harness (``repro/bench/differential.py``) and
the truth-table oracle (``tests/properties/test_kernel_oracle.py``).

Watchdog, budget, fault-injection, and cache-cap seams are shared with
the packed backend: the fused recursion flushes its counters into the
instance around every sibling-closure call and runs ``_mk_service``
every ``_watchdog_stride`` fresh nodes, exactly like the packed hot
loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..api import FALSE, TRUE, BDDError
from .packed import (
    _MASK,
    _OP_AND,
    _OP_DIFF,
    _OP_OR,
    _RECURSION_SAFE_VARS,
    _SHIFT,
    _TAG_EXIST,
    _TAG_OR,
    _TAG_RELPROD,
    PackedBDD,
)

try:  # optional acceleration — the backend is fully functional without it
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

__all__ = ["ArenaBDD"]

# Above this many variables the packed unique-table key (var << 54) no
# longer fits the int64 mirror, so the vectorized sweeps stand down.
_VEC_MAX_VARS = 512

# Hybrid dispatch thresholds.  Array sweeps pay a fixed per-level cost
# (a dozen small NumPy calls), so they only win when frontiers are wide:
# bulk OR-reductions over thousands of tuple minterms qualify, but the
# rel_prod frontiers of the pointer analyses are deep and narrow (a few
# dozen pairs per level over ~200 levels), where the compiled scalar
# closures stay ahead at every operand size we measured.  The sweep
# entry for rel_prod/exist is therefore an opt-in: set
# ``REPRO_ARENA_SWEEP=<min-nodes>`` (or ``on`` for the default 1500) to
# route operations whose operands both reach that node count through
# the vectorized sweep.  ``or_all`` batching is always on.
_VEC_MIN_NODES = 1500
_VEC_MIN_BATCH = 32


def _sweep_threshold() -> int:
    import os

    raw = os.environ.get("REPRO_ARENA_SWEEP", "").strip().lower()
    if raw in ("", "0", "off", "false"):
        return 0
    if raw in ("on", "true", "1"):
        return _VEC_MIN_NODES
    try:
        return max(0, int(raw))
    except ValueError:
        raise BDDError(f"REPRO_ARENA_SWEEP={raw!r}: expected an integer or on/off")


_VEC_SWEEP_NODES = _sweep_threshold()

# Fused rel_prod_replace cache tag.  Bits 54-56 hold 0b001 with bit 57
# set (value 9 << 54), which no other key shape produces: plain apply
# tags keep bits >= 57 clear, ``replace`` sets bit 57 with bits 54-56
# clear, and ``rel_prod`` tags carry op code 7 in bits 54-56.  The
# interned (varset, map) pair id sits at bit 58, clear of all of them.
# Vectorized sweeps do int64 key arithmetic, so they require the full
# key (tag plus the 54-bit operand pair) to fit in 62 bits; larger
# tags take the scalar path, whose Python-int keys have no such bound.
_TAG_RELPRODR = 9 << 54
_VEC_TAG_LIMIT = 1 << 62


class ArenaBDD(PackedBDD):
    """Flat-arena backend with native fused superops."""

    backend_name = "arena"

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = 2_000_000) -> None:
        super().__init__(num_vars=num_vars, cache_limit=cache_limit)
        # Interned (varset id, map id) pairs for the fused cache tag.
        # Varsets and rename maps are interned and immutable, and levels
        # are stable across GC, so pair ids never need invalidation.
        self._rr_pairs: Dict[Tuple[int, int], int] = {}
        # NumPy mirror of the node arena: append-only between GCs, so a
        # sync copies only the tail created since the last sweep.
        self._mirror_n = 0
        self._mv = self._ml = self._mh = None

    def _vec_ready(self) -> bool:
        return _np is not None and 0 < self.num_vars <= _VEC_MAX_VARS

    def _mirror_sync(self):
        """Bring the NumPy arena mirror up to date; returns its arrays."""
        np = _np
        n = len(self._var)
        if self._mv is None or self._mv.size < n:
            cap = max(n, 1024)
            cap += cap >> 1
            mv = np.empty(cap, np.int64)
            ml = np.empty(cap, np.int64)
            mh = np.empty(cap, np.int64)
            m = self._mirror_n
            if m and self._mv is not None:
                mv[:m] = self._mv[:m]
                ml[:m] = self._ml[:m]
                mh[:m] = self._mh[:m]
            self._mv, self._ml, self._mh = mv, ml, mh
        m = self._mirror_n
        if m < n:
            self._mv[m:n] = self._var[m:n]
            self._ml[m:n] = self._low[m:n]
            self._mh[m:n] = self._high[m:n]
            self._mirror_n = n
        return self._mv, self._ml, self._mh

    def collect_garbage(self, roots):
        remap = super().collect_garbage(roots)
        self._mirror_n = 0  # node ids were rewritten: full resync
        return remap

    def _reaches(self, u: int, limit: int) -> bool:
        """True when the BDD rooted at ``u`` has at least ``limit`` nodes.

        Early-exit traversal: the cost is bounded by ``limit`` visits,
        so using it as a dispatch gate costs O(threshold), not O(size).
        """
        if u < 2:
            return False
        low = self._low
        high = self._high
        seen = {u}
        add = seen.add
        stack = [u]
        pop = stack.pop
        while stack:
            n = pop()
            if len(seen) >= limit:
                return True
            c = low[n]
            if c >= 2 and c not in seen:
                add(c)
                stack.append(c)
            c = high[n]
            if c >= 2 and c not in seen:
                add(c)
                stack.append(c)
        return False

    # ------------------------------------------------------------------
    # Vectorized level-synchronized sweeps (NumPy path)
    # ------------------------------------------------------------------

    def _vec_mk(self, v: int, lo, hi):
        """Batched node construction at one level.

        ``lo``/``hi`` are int64 arrays of already-canonical children.
        Deduplicates the requested nodes with ``np.unique`` so the
        Python unique-table loop runs once per *distinct* node, then
        flushes the watchdog/fault/cache-cap service exactly like the
        scalar ``mk`` does every ``_watchdog_stride`` fresh nodes.
        """
        np = _np
        r = np.empty(lo.size, np.int64)
        eq = lo == hi
        if eq.any():
            r[eq] = lo[eq]
        ne = ~eq
        if ne.any():
            ukey = (v << 54) | (lo[ne] << _SHIFT) | hi[ne]
            uq, inv = np.unique(ukey, return_inverse=True)
            res = np.empty(uq.size, np.int64)
            unique = self._unique
            ug = unique.get
            var_l, low_l, high_l = self._var, self._low, self._high
            added = 0
            for i, k in enumerate(uq.tolist()):
                h = ug(k)
                if h is None:
                    h = len(var_l)
                    if h > _MASK:
                        raise BDDError(
                            f"arena backend exceeds {_MASK} nodes"
                        )
                    var_l.append(v)
                    low_l.append((k >> _SHIFT) & _MASK)
                    high_l.append(k & _MASK)
                    unique[k] = h
                    added += 1
                res[i] = h
            r[ne] = res[inv]
            if added:
                n = len(var_l)
                if n > self.peak_nodes:
                    self.peak_nodes = n
                self._watchdog_tick += added
                if self._watchdog_tick >= self._watchdog_stride:
                    self._watchdog_tick = 0
                    self._mk_service()
        return r

    @staticmethod
    def _vec_lookup(K_all, R_all, known, ck):
        """Results for scheduled/cache-hit pair keys ``ck``."""
        np = _np
        vals = np.empty(ck.size, np.int64)
        if K_all.size:
            idx = np.searchsorted(K_all, ck)
            idx_c = np.minimum(idx, K_all.size - 1)
            in_k = K_all[idx_c] == ck
            vals[in_k] = R_all[idx_c[in_k]]
            rest = ~in_k
        else:
            rest = np.ones(ck.size, bool)
        if rest.any():
            vals[rest] = np.fromiter(
                (known[k] for k in ck[rest].tolist()), np.int64
            )
        return vals

    def _vec_or_pairs(self, A, B):
        """Batched ``or_`` over parallel root arrays (one sweep)."""
        np = _np
        a = np.minimum(A, B)
        b = np.maximum(A, B)
        out = np.where(a == 0, b, np.where(a == 1, 1, a))
        live = (a >= 2) & (a != b)
        n_live = int(live.sum())
        if not n_live:
            return out
        if n_live < _VEC_MIN_BATCH:
            or_ = self.or_
            out[live] = np.fromiter(
                (
                    or_(x, y)
                    for x, y in zip(a[live].tolist(), b[live].tolist())
                ),
                np.int64,
                n_live,
            )
            return out
        keys = (a[live] << _SHIFT) | b[live]
        K_all, R_all, known = self._vec_or_sweep(np.unique(keys))
        out[live] = self._vec_lookup(K_all, R_all, known, keys)
        return out

    def _vec_or_sweep(self, roots):
        """Two-phase level-synchronized OR over unique root pair keys.

        Phase 1 walks the levels top-down, expanding every pair of one
        level at once and bucketing fresh subproblems at the level of
        their topmost variable (children always sit strictly deeper, so
        a single descending pass discovers the whole DAG).  Phase 2
        walks back up: when a level is resolved both cofactor pairs of
        every key are terminal, globally cached, or already resolved at
        a deeper level.  Results live in local arrays — a cache trim
        mid-sweep cannot drop a subresult the upward pass still needs —
        and are published to the unified cache under the same keys the
        scalar closures use.
        """
        np = _np
        mv, ml, mh = self._mirror_sync()
        cache = self._op_cache
        cg = cache.get
        nv = self.num_vars
        buckets: List[List] = [[] for _ in range(nv)]
        known: Dict[int, int] = {}
        x = roots >> _SHIFT
        y = roots & _MASK
        for lvl in np.unique(np.minimum(mv[x], mv[y])):
            sel = np.minimum(mv[x], mv[y]) == lvl
            buckets[int(lvl)].append(roots[sel])
        pend = []
        for l in range(nv):
            if not buckets[l]:
                continue
            keys = np.unique(np.concatenate(buckets[l]))
            buckets[l] = ()
            kl = keys.tolist()
            miss = []
            for i, k in enumerate(kl):
                h = cg(_TAG_OR | k)
                if h is None:
                    miss.append(i)
                else:
                    known[k] = h
            if not miss:
                continue
            if len(miss) != len(kl):
                keys = keys[np.array(miss)]
            pend.append((l, keys))
            x = keys >> _SHIFT
            y = keys & _MASK
            ex = mv[x] == l
            ey = mv[y] == l
            for cx, cy in (
                (np.where(ex, ml[x], x), np.where(ey, ml[y], y)),
                (np.where(ex, mh[x], x), np.where(ey, mh[y], y)),
            ):
                lo = np.minimum(cx, cy)
                hi = np.maximum(cx, cy)
                live = (lo >= 2) & (lo != hi)
                if not live.any():
                    continue
                ck = ((lo << _SHIFT) | hi)[live]
                cl = np.minimum(mv[lo[live]], mv[hi[live]])
                for ul in np.unique(cl):
                    buckets[int(ul)].append(ck[cl == ul])
        if not pend:
            return np.empty(0, np.int64), np.empty(0, np.int64), known
        K_all = np.sort(np.concatenate([k for _, k in pend]))
        R_all = np.empty(K_all.size, np.int64)
        for l, keys in reversed(pend):
            x = keys >> _SHIFT
            y = keys & _MASK
            ex = mv[x] == l
            ey = mv[y] == l
            branches = []
            for cx, cy in (
                (np.where(ex, ml[x], x), np.where(ey, ml[y], y)),
                (np.where(ex, mh[x], x), np.where(ey, mh[y], y)),
            ):
                lo = np.minimum(cx, cy)
                hi = np.maximum(cx, cy)
                res = np.where(lo == 0, hi, np.where(lo == 1, 1, lo))
                live = (lo >= 2) & (lo != hi)
                if live.any():
                    ck = ((lo << _SHIFT) | hi)[live]
                    res[live] = self._vec_lookup(K_all, R_all, known, ck)
                branches.append(res)
            self.op_count += keys.size
            r = self._vec_mk(l, branches[0], branches[1])
            R_all[np.searchsorted(K_all, keys)] = r
            cache.update(zip((_TAG_OR | keys).tolist(), r.tolist()))
        return K_all, R_all, known

    def _vec_relprod(self, a, b, levels, max_level, tag, remap):
        """Vectorized relational product (optionally fused with rename).

        Same two-phase frontier structure as :meth:`_vec_or_sweep`, with
        the rel_prod pair rules: a pair containing ``TRUE`` keeps
        descending through the other operand (that *is* the exist
        recursion), quantified levels OR their branch results — batched
        through :meth:`_vec_or_pairs` — and unquantified levels emit a
        node at ``remap[level]``, which folds an order-safe rename into
        the same sweep for the fused superop.  ``tag`` is the caller's
        cache namespace (plain rel_prod or the fused pair tag), applied
        outside the int64 key space because the fused tag can exceed it.
        """
        np = _np
        mv, ml, mh = self._mirror_sync()
        cache = self._op_cache
        cg = cache.get
        nv = self.num_vars
        qmask = np.zeros(nv, bool)
        qmask[list(levels)] = True
        if remap is None:
            remap = np.arange(nv, dtype=np.int64)
        buckets: List[List] = [[] for _ in range(nv)]
        known: Dict[int, int] = {}
        root_key = (a << _SHIFT) | b
        buckets[min(self._var[a], self._var[b])].append(
            np.array([root_key], np.int64)
        )
        pend = []
        for l in range(nv):
            if not buckets[l]:
                continue
            keys = np.unique(np.concatenate(buckets[l]))
            buckets[l] = ()
            kl = keys.tolist()
            kt = (keys + tag).tolist()
            miss = []
            for i, k in enumerate(kt):
                h = cg(k)
                if h is None:
                    miss.append(i)
                else:
                    known[kl[i]] = h
            if not miss:
                continue
            if len(miss) != len(kl):
                keys = keys[np.array(miss)]
            pend.append((l, keys))
            x = keys >> _SHIFT
            y = keys & _MASK
            ex = mv[x] == l
            ey = mv[y] == l
            for cx, cy in (
                (np.where(ex, ml[x], x), np.where(ey, ml[y], y)),
                (np.where(ex, mh[x], x), np.where(ey, mh[y], y)),
            ):
                lo = np.minimum(cx, cy)
                hi = np.maximum(cx, cy)
                # rel_prod terminal rules: 0 annihilates, (1, 1) is 1;
                # (1, u) stays live — descending it is exist(u).
                live = (lo != 0) & (hi != 1)
                if not live.any():
                    continue
                ck = ((lo << _SHIFT) | hi)[live]
                cl = np.minimum(mv[lo[live]], mv[hi[live]])
                for ul in np.unique(cl):
                    buckets[int(ul)].append(ck[cl == ul])
        if not pend:
            return known[root_key]
        K_all = np.sort(np.concatenate([k for _, k in pend]))
        R_all = np.empty(K_all.size, np.int64)
        for l, keys in reversed(pend):
            x = keys >> _SHIFT
            y = keys & _MASK
            ex = mv[x] == l
            ey = mv[y] == l
            branches = []
            for cx, cy in (
                (np.where(ex, ml[x], x), np.where(ey, ml[y], y)),
                (np.where(ex, mh[x], x), np.where(ey, mh[y], y)),
            ):
                lo = np.minimum(cx, cy)
                hi = np.maximum(cx, cy)
                res = np.where(hi == 1, np.minimum(lo, 1), np.int64(0))
                live = (lo != 0) & (hi != 1)
                if live.any():
                    ck = ((lo << _SHIFT) | hi)[live]
                    res[live] = self._vec_lookup(K_all, R_all, known, ck)
                branches.append(res)
            self.op_count += keys.size
            if qmask[l]:
                r = self._vec_or_pairs(branches[0], branches[1])
            else:
                r = self._vec_mk(int(remap[l]), branches[0], branches[1])
            R_all[np.searchsorted(K_all, keys)] = r
            cache.update(zip((keys + tag).tolist(), r.tolist()))
        return int(R_all[np.searchsorted(K_all, root_key)])

    # ------------------------------------------------------------------
    # Vectorized public entries
    # ------------------------------------------------------------------

    def rel_prod(self, a: int, b: int, varset_id: int) -> int:
        if not self._vec_ready():
            return super().rel_prod(a, b, varset_id)
        info = self._vinfo.get(varset_id) or self._varset_info(varset_id)
        levels, max_level, tag = info
        if not levels:
            return self.and_(a, b)
        if a == 0 or b == 0:
            return FALSE
        if a == 1 and b == 1:
            return TRUE
        if a > b:
            a, b = b, a
        r = self._op_cache.get(tag | (a << _SHIFT) | b)
        if r is not None:
            return r
        if not (
            _VEC_SWEEP_NODES
            and tag < _VEC_TAG_LIMIT
            and self._reaches(a, _VEC_SWEEP_NODES)
            and self._reaches(b, _VEC_SWEEP_NODES)
        ):
            return super().rel_prod(a, b, varset_id)
        return self._vec_relprod(a, b, levels, max_level, tag, None)

    def exist(self, u: int, varset_id: int) -> int:
        if not self._vec_ready():
            return super().exist(u, varset_id)
        info = self._vinfo.get(varset_id) or self._varset_info(varset_id)
        levels, max_level, tag = info
        if not levels or u < 2 or self._var[u] > max_level:
            return u
        key = _TAG_EXIST | (varset_id << _SHIFT) | u
        r = self._op_cache.get(key)
        if r is None:
            if not (
                _VEC_SWEEP_NODES
                and tag < _VEC_TAG_LIMIT
                and self._reaches(u, _VEC_SWEEP_NODES)
            ):
                return super().exist(u, varset_id)
            # exist(u, V) is rel_prod(TRUE, u, V): the (1, u) pair rules
            # reduce the sweep to quantifying descent through u alone.
            r = self._vec_relprod(1, u, levels, max_level, tag, None)
            self._op_cache[key] = r
        return r

    def or_all(self, nodes) -> int:
        """Disjunction of many nodes via batched pairwise tree rounds.

        Each round halves the worklist with one multi-root sweep, so
        bulk loads (fact relations are OR-reduced from thousands of
        tuple minterms) cost ``log2(n)`` sweeps instead of ``n`` scalar
        ``or_`` calls.
        """
        if not self._vec_ready():
            return super().or_all(nodes)
        ns = [n for n in nodes if n != FALSE]
        np = _np
        while len(ns) >= _VEC_MIN_BATCH * 2:
            arr = np.asarray(ns, np.int64)
            half = arr.size // 2
            res = self._vec_or_pairs(arr[0 : 2 * half : 2], arr[1 : 2 * half : 2])
            if (res == 1).any():
                return TRUE
            ns = res.tolist()
            if arr.size % 2:
                ns.append(int(arr[-1]))
        return super().or_all(ns)

    # ------------------------------------------------------------------
    # Fused rel_prod + replace
    # ------------------------------------------------------------------

    def rel_prod_replace(self, a: int, b: int, varset_id: int, map_id: int) -> int:
        mapping = self._replace_maps[map_id]
        if not mapping:
            return self.rel_prod(a, b, varset_id)
        info = self._vinfo.get(varset_id) or self._varset_info(varset_id)
        levels, max_level, _tag = info
        if not levels:
            return self.replace(self.and_(a, b), map_id)
        if (
            self._vec_ready()
            and self._replace_map_safe[map_id]
            and a >= 2
            and b >= 2
        ):
            if a > b:
                a, b = b, a
            pair = (varset_id, map_id)
            pid = self._rr_pairs.get(pair)
            if pid is None:
                pid = self._rr_pairs[pair] = len(self._rr_pairs)
            tag = (pid << 58) | _TAG_RELPRODR
            r = self._op_cache.get(tag + ((a << _SHIFT) | b))
            if r is not None:
                return r
            if (
                _VEC_SWEEP_NODES
                and tag < _VEC_TAG_LIMIT
                and self._reaches(a, _VEC_SWEEP_NODES)
                and self._reaches(b, _VEC_SWEEP_NODES)
            ):
                remap = _np.arange(self.num_vars, dtype=_np.int64)
                for s, t in mapping.items():
                    remap[s] = t
                return self._vec_relprod(a, b, levels, max_level, tag, remap)
            # Small operands: the compiled scalar fused closure wins.
        if (
            not self._replace_map_safe[map_id]
            or self.num_vars > _RECURSION_SAFE_VARS
        ):
            # Order-correcting renames need the ite rebuild; wide arenas
            # need the depth-safe loops.  Compose the primitives.
            return self.replace(self.rel_prod(a, b, varset_id), map_id)
        if a == 0 or b == 0:
            return FALSE
        if a == 1 and b == 1:
            return TRUE
        if a == 1:
            return self.replace(
                self._exist(b, varset_id, levels, max_level), map_id
            )
        if b == 1:
            return self.replace(
                self._exist(a, varset_id, levels, max_level), map_id
            )
        if a > b:  # the underlying AND is commutative
            a, b = b, a
        pair = (varset_id, map_id)
        pid = self._rr_pairs.get(pair)
        if pid is None:
            pid = self._rr_pairs[pair] = len(self._rr_pairs)
        tag = (pid << 58) | _TAG_RELPRODR
        r = self._op_cache.get(tag | (a << _SHIFT) | b)
        if r is not None:
            return r
        fn = self._hot.get(("rr", varset_id, map_id))
        if fn is None:
            fn = self._hot[("rr", varset_id, map_id)] = self._make_relprod_replace(
                varset_id, map_id, levels, max_level, tag
            )
        return fn(a, b)

    def _make_relprod_replace(
        self,
        vid: int,
        mid: int,
        levels: frozenset,
        max_level: int,
        tag: int,
    ):
        """Compile the fused closure for one (varset, rename map) pair.

        Identical shape to the packed backend's ``_make_relprod`` except
        at the emission point: a node the join would create at level
        ``v`` is created at ``mapping.get(v, v)`` instead, and the two
        early-exit paths that leave the fused recursion (the pure
        conjunction below ``max_level``, the one-operand ``exist``
        shortcut) rename their result through the ``mk``-based replace
        before caching it under the fused key.
        """
        mapping = self._replace_maps[mid]
        quant = self._quant(vid, levels, max_level)
        get_nv = mapping.get
        num_vars = self.num_vars
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        or_entry = self._hot.get(_OP_OR)
        if or_entry is None:
            or_entry = self._hot[_OP_OR] = self._make_apply(_OP_OR)
        and_entry = self._hot.get(_OP_AND)
        if and_entry is None:
            and_entry = self._hot[_OP_AND] = self._make_apply(_OP_AND)
        efn = self._hot.get(("e", vid))
        if efn is None:
            efn = self._hot[("e", vid)] = self._make_exist(vid, levels, max_level)
        replace_fast = self._replace_fast
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(a: int, b: int, key: int) -> int:
            nonlocal ops, tick
            ops += 1
            va = var[a]
            vb = var[b]
            if va < vb:
                v = va
                a0, a1, b0, b1 = low[a], high[a], b, b
            elif vb < va:
                v = vb
                a0, a1, b0, b1 = a, a, low[b], high[b]
            else:
                v = va
                a0, a1, b0, b1 = low[a], high[a], low[b], high[b]
            if v > max_level:
                # No quantified variable below this point: the rest is a
                # pure conjunction, renamed on the way out.
                self._watchdog_tick = tick
                self.op_count += ops
                ops = 0
                if a == b:
                    base = a
                else:
                    akey = (a << 27) | b
                    base = cache_get(akey)
                    if base is None:
                        base = and_entry(a, b)
                r = replace_fast(base, mid, mapping) if base >= 2 else base
                tick = self._watchdog_tick
                cache[key] = r
                return r
            x = a0
            y = b0
            if x == 0 or y == 0:
                lo = 0
            elif x == 1 or y == 1:
                if x == 1 and y == 1:
                    lo = 1
                else:
                    self._watchdog_tick = tick
                    self.op_count += ops
                    ops = 0
                    lo = efn(y if x == 1 else x)
                    if lo >= 2:
                        lo = replace_fast(lo, mid, mapping)
                    tick = self._watchdog_tick
            else:
                if x > y:
                    x, y = y, x
                ckey = tag | (x << 27) | y
                lo = cache_get(ckey)
                if lo is None:
                    lo = rec(x, y, ckey)
            x = a1
            y = b1
            if x == 0 or y == 0:
                hi = 0
            elif x == 1 or y == 1:
                if x == 1 and y == 1:
                    hi = 1
                else:
                    self._watchdog_tick = tick
                    self.op_count += ops
                    ops = 0
                    hi = efn(y if x == 1 else x)
                    if hi >= 2:
                        hi = replace_fast(hi, mid, mapping)
                    tick = self._watchdog_tick
            else:
                if x > y:
                    x, y = y, x
                ckey = tag | (x << 27) | y
                hi = cache_get(ckey)
                if hi is None:
                    hi = rec(x, y, ckey)
            if quant[v]:
                # Branch values are already renamed; OR commutes with an
                # injective rename, so combining them directly is exact.
                if lo == hi or hi == 0:
                    r = lo
                elif lo == 0:
                    r = hi
                elif lo == 1 or hi == 1:
                    r = 1
                else:
                    if lo > hi:
                        lo, hi = hi, lo
                    okey = _TAG_OR | (lo << 27) | hi
                    r = cache_get(okey)
                    if r is None:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = or_entry(lo, hi)
                        tick = self._watchdog_tick
            elif lo == hi:
                r = lo
            else:
                nv = get_nv(v, v)
                if not 0 <= nv < num_vars:
                    raise BDDError(
                        f"variable level {nv} out of range 0..{num_vars - 1}"
                    )
                ukey = (nv << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"arena backend exceeds {_MASK} nodes")
                    var.append(nv)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(a: int, b: int) -> int:
            # Contract: operands internal, a <= b, cache missed.
            nonlocal ops, tick
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(a, b, tag | (a << 27) | b)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    # ------------------------------------------------------------------
    # Level-synchronized apply (wide arenas)
    # ------------------------------------------------------------------

    def _apply_loop(self, op: int, a: int, b: int) -> int:
        """Frontier-sweep apply: expand the operand-pair DAG level by
        level, then resolve the levels bottom-up.

        Phase 1 discovers, for each variable level, every distinct
        operand pair the operation needs at that level (children always
        sit at strictly greater levels, so one descending sweep finds
        them all).  Phase 2 walks the levels back up; by the time a pair
        is resolved both its cofactor pairs are either terminal-shortcut
        cases or already resolved.  Results are kept in a local ``done``
        map as well as the shared cache, so a cache trim mid-operation
        cannot drop a subresult the upward sweep still needs.
        """
        var = self._var
        low = self._low
        high = self._high
        cache = self._op_cache
        tag = op << 54
        is_and = op == _OP_AND
        is_or = op == _OP_OR
        is_diff = op == _OP_DIFF
        done: Dict[int, int] = {}

        def shortcut(x: int, y: int):
            """(result, key): terminal-rule result, or the canonical
            cache key of the subproblem when one must be solved."""
            if is_and:
                if x > y:
                    x, y = y, x
                if x < 2:
                    return (y if x else 0), -1
                if x == y:
                    return x, -1
                return None, (x << _SHIFT) | y
            if is_or:
                if x > y:
                    x, y = y, x
                if y == 1:
                    return 1, -1
                if x < 2:
                    return (y if x == 0 else 1), -1
                if x == y:
                    return x, -1
                return None, tag | (x << _SHIFT) | y
            if is_diff:
                if x == 0 or y == 1 or x == y:
                    return 0, -1
                if y == 0:
                    return x, -1
                return None, tag | (x << _SHIFT) | y
            # xor
            if x > y:
                x, y = y, x
            if x == 0:
                return y, -1
            if x == y:
                return 0, -1
            return None, tag | (x << _SHIFT) | y

        root, root_key = shortcut(a, b)
        if root is not None:
            return root
        hit = cache.get(root_key)
        if hit is not None:
            return hit
        buckets: List[List[int]] = [[] for _ in range(self.num_vars)]
        pending = {root_key}
        buckets[min(var[a], var[b])].append(root_key)

        def cofactors(key: int):
            x = (key >> _SHIFT) & _MASK
            y = key & _MASK
            vx = var[x]
            vy = var[y]
            if vx < vy:
                return vx, low[x], high[x], y, y
            if vy < vx:
                return vy, x, x, low[y], high[y]
            return vx, low[x], high[x], low[y], high[y]

        # Phase 1: top-down frontier expansion.
        for lvl in range(self.num_vars):
            for key in buckets[lvl]:
                _v, x0, x1, y0, y1 = cofactors(key)
                for cx, cy in ((x0, y0), (x1, y1)):
                    r, ckey = shortcut(cx, cy)
                    if r is not None or ckey in pending or ckey in done:
                        continue
                    r = cache.get(ckey)
                    if r is not None:
                        done[ckey] = r
                        continue
                    pending.add(ckey)
                    cx = (ckey >> _SHIFT) & _MASK
                    cy = ckey & _MASK
                    buckets[min(var[cx], var[cy])].append(ckey)

        # Phase 2: bottom-up resolution.
        mk = self.mk
        for lvl in range(self.num_vars - 1, -1, -1):
            for key in buckets[lvl]:
                v, x0, x1, y0, y1 = cofactors(key)
                self.op_count += 1
                lo, ckey = shortcut(x0, y0)
                if lo is None:
                    lo = done[ckey]
                hi, ckey = shortcut(x1, y1)
                if hi is None:
                    hi = done[ckey]
                r = lo if lo == hi else mk(v, lo, hi)
                done[key] = r
                cache[key] = r
        return done[root_key]
