"""Reference BDD backend: the original recursive implementation.

This is the kernel the repository grew up with (Bryant 1986, Section
2.4.2 of Whaley & Lam), moved behind :class:`repro.bdd.api.BddKernel`
unchanged in semantics: per-operation dict caches with tuple keys and
straightforward recursive ``apply`` / ``exist`` / ``rel_prod``.  It is
the correctness oracle the differential harness and the randomized
property suite compare the optimized ``packed`` backend against.

Nodes are stored in parallel arrays indexed by integer handles; handle
``0`` is the ``FALSE`` terminal and handle ``1`` is ``TRUE``.  Variables
are identified directly by their *level*: a smaller level is closer to
the root.  Reordering experiments are performed by re-assigning the
levels of finite-domain bits (see :mod:`repro.bdd.ordering`) and
rebuilding, exactly as bddbddb restarts with a fresh order during its
order search.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ...runtime import faults
from ..api import FALSE, TRUE, BDDError, BddKernel

__all__ = ["ReferenceBDD"]

# Operator codes for the binary ``apply`` cache.
_OP_AND = 0
_OP_OR = 1
_OP_DIFF = 2
_OP_XOR = 3

# Terminal result tables for the binary operators, indexed [op][a][b] where
# a/b are 0/1 terminals.  ``None`` marks non-terminal combinations.
_TERMINAL = {
    _OP_AND: {(0, 0): 0, (0, 1): 0, (1, 0): 0, (1, 1): 1},
    _OP_OR: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 1},
    _OP_DIFF: {(0, 0): 0, (0, 1): 0, (1, 0): 1, (1, 1): 0},
    _OP_XOR: {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
}


def _dot_quote(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT identifier."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


class ReferenceBDD(BddKernel):
    """A shared, reduced, ordered BDD node arena (recursive backend).

    Parameters
    ----------
    num_vars:
        Number of boolean variables (levels).  May be grown later with
        :meth:`add_vars`.
    cache_limit:
        Soft cap on the total number of operation-cache entries.  The
        caches are checked every ``_watchdog_stride`` freshly allocated
        nodes and cleared wholesale when they exceed the cap
        (clear-on-overflow — entries are cheap to recompute, and a full
        clear keeps the check O(1) on the hot path).  ``None`` disables
        the cap.
    """

    backend_name = "reference"

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = 2_000_000) -> None:
        if num_vars < 0:
            raise BDDError("num_vars must be non-negative")
        self.num_vars = num_vars
        # Parallel node arrays.  Terminals occupy slots 0 and 1; their level
        # is a sentinel greater than any real variable level so that
        # ``min(level(a), level(b))`` picks real variables first.
        self._var: List[int] = [sys.maxsize, sys.maxsize]
        self._low: List[int] = [0, 1]
        self._high: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Operation caches.
        self._apply_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._exist_cache: Dict[Tuple[int, int], int] = {}
        self._relprod_cache: Dict[Tuple[int, int, int], int] = {}
        self._replace_cache: Dict[Tuple[int, int], int] = {}
        # Persistent model-count cache keyed ``(varset_id, node)``: the
        # per-node count depends only on the level-position map, which the
        # interned varset determines, so entries stay valid across calls
        # until handles are remapped (GC) or caches are trimmed.
        self._satcount_cache: Dict[Tuple[int, int], int] = {}
        # Interned variable sets for quantification: id -> frozenset(levels)
        self._varsets: List[frozenset] = []
        self._varset_ids: Dict[frozenset, int] = {}
        # Interned replace mappings: id -> dict(level -> level)
        self._replace_maps: List[Dict[int, int]] = []
        self._replace_map_keys: Dict[Tuple[Tuple[int, int], ...], int] = {}
        self._replace_map_safe: List[bool] = []
        # Statistics.
        self.peak_nodes = 2
        self.gc_count = 0
        self.op_count = 0
        self.cache_limit = cache_limit
        self.cache_clears = 0
        self.peak_cache_entries = 0
        # Cooperative watchdog (see repro.runtime.budget): called every
        # ``_watchdog_stride`` freshly allocated nodes from inside ``mk``,
        # so runaway apply/rel_prod recursions are interrupted while they
        # grow.  The same stride drives the cache cap and the ``bdd.mk``
        # fault-injection point, keeping the hot path to one counter
        # increment and compare.
        self._watchdog: Optional[Callable[[], None]] = None
        # With faults armed the stride drops so the ``bdd.mk`` injection
        # point fires even in arenas too small to reach the full stride.
        self._watchdog_stride = 64 if faults.armed else 2048
        self._watchdog_tick = 0

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    def add_vars(self, count: int) -> int:
        """Grow the variable universe by ``count`` levels; return new total."""
        if count < 0:
            raise BDDError("count must be non-negative")
        self.num_vars += count
        return self.num_vars

    def var_of(self, u: int) -> int:
        """Level of the root variable of ``u`` (sentinel for terminals)."""
        return self._var[u]

    def low(self, u: int) -> int:
        return self._low[u]

    def high(self, u: int) -> int:
        return self._high[u]

    def node_count(self) -> int:
        """Number of allocated nodes, including the two terminals."""
        return len(self._var)

    def is_terminal(self, u: int) -> bool:
        return u < 2

    def mk(self, var: int, low: int, high: int) -> int:
        """Return the (reduced, hash-consed) node ``(var, low, high)``."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if not 0 <= var < self.num_vars:
            raise BDDError(f"variable level {var} out of range 0..{self.num_vars - 1}")
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        if node + 1 > self.peak_nodes:
            self.peak_nodes = node + 1
        self._watchdog_tick += 1
        if self._watchdog_tick >= self._watchdog_stride:
            self._watchdog_tick = 0
            if faults.armed:
                faults.fire("bdd.mk")
            if self.cache_limit is not None:
                self._trim_caches()
            if self._watchdog is not None:
                self._watchdog()
        return node

    def set_watchdog(self, callback: Callable[[], None], stride: int = 2048) -> None:
        """Install a cooperative check run every ``stride`` new nodes.

        The callback may raise to abort the in-flight operation; the arena
        stays structurally consistent (nodes already interned survive, and
        no operation cache entry is written for an aborted recursion).
        """
        if stride < 1:
            raise BDDError("watchdog stride must be positive")
        self._watchdog = callback
        self._watchdog_stride = stride
        self._watchdog_tick = 0

    def clear_watchdog(self) -> None:
        self._watchdog = None

    def var_bdd(self, var: int) -> int:
        """BDD for the single positive literal ``var``."""
        return self.mk(var, FALSE, TRUE)

    def nvar_bdd(self, var: int) -> int:
        """BDD for the single negative literal ``var``."""
        return self.mk(var, TRUE, FALSE)

    def cube(self, literals: Iterable[Tuple[int, bool]]) -> int:
        """Conjunction of literals given as ``(level, positive)`` pairs."""
        result = TRUE
        for var, positive in sorted(literals, reverse=True):
            if positive:
                result = self.mk(var, FALSE, result)
            else:
                result = self.mk(var, result, FALSE)
        return result

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------

    def _apply(self, op: int, a: int, b: int) -> int:
        terminal = _TERMINAL[op]
        # Normalize commutative operators so (a, b) and (b, a) share a slot.
        if op in (_OP_AND, _OP_OR, _OP_XOR) and a > b:
            a, b = b, a
        if a < 2 and b < 2:
            return terminal[(a, b)]
        # Cheap absorption shortcuts.
        if op == _OP_AND:
            if a == FALSE or b == FALSE:
                return FALSE
            if a == TRUE:
                return b
            if b == TRUE:
                return a
            if a == b:
                return a
        elif op == _OP_OR:
            if a == TRUE or b == TRUE:
                return TRUE
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return a
        elif op == _OP_DIFF:
            if a == FALSE or b == TRUE or a == b:
                return FALSE
            if b == FALSE:
                return a
        elif op == _OP_XOR:
            if a == FALSE:
                return b
            if b == FALSE:
                return a
            if a == b:
                return FALSE
        key = (op, a, b)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        va, vb = self._var[a], self._var[b]
        if va == vb:
            low = self._apply(op, self._low[a], self._low[b])
            high = self._apply(op, self._high[a], self._high[b])
            result = self.mk(va, low, high)
        elif va < vb:
            low = self._apply(op, self._low[a], b)
            high = self._apply(op, self._high[a], b)
            result = self.mk(va, low, high)
        else:
            low = self._apply(op, a, self._low[b])
            high = self._apply(op, a, self._high[b])
            result = self.mk(vb, low, high)
        self._apply_cache[key] = result
        return result

    def and_(self, a: int, b: int) -> int:
        return self._apply(_OP_AND, a, b)

    def or_(self, a: int, b: int) -> int:
        return self._apply(_OP_OR, a, b)

    def diff(self, a: int, b: int) -> int:
        """``a AND NOT b`` — the relational difference."""
        return self._apply(_OP_DIFF, a, b)

    def xor(self, a: int, b: int) -> int:
        return self._apply(_OP_XOR, a, b)

    def and_all(self, nodes: Iterable[int]) -> int:
        result = TRUE
        for n in nodes:
            result = self.and_(result, n)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        # Balanced tree: pairing similar-sized operands keeps the
        # intermediate diagrams (and apply-cache churn) small compared
        # to a left fold over a growing accumulator.
        ns = [n for n in nodes if n != FALSE]
        while len(ns) > 1:
            if TRUE in ns:
                return TRUE
            merged = [
                self.or_(ns[i], ns[i + 1]) for i in range(0, len(ns) - 1, 2)
            ]
            if len(ns) % 2:
                merged.append(ns[-1])
            ns = merged
        return ns[0] if ns else FALSE

    def not_(self, a: int) -> int:
        if a == FALSE:
            return TRUE
        if a == TRUE:
            return FALSE
        cached = self._not_cache.get(a)
        if cached is not None:
            return cached
        result = self.mk(self._var[a], self.not_(self._low[a]), self.not_(self._high[a]))
        self._not_cache[a] = result
        self._not_cache[result] = a
        return result

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``, order-correct."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        if g == FALSE and h == TRUE:
            return self.not_(f)
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        v = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = (self._low[f], self._high[f]) if self._var[f] == v else (f, f)
        g0, g1 = (self._low[g], self._high[g]) if self._var[g] == v else (g, g)
        h0, h1 = (self._low[h], self._high[h]) if self._var[h] == v else (h, h)
        result = self.mk(v, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def varset(self, levels: Iterable[int]) -> int:
        """Intern a set of levels for quantification; returns a varset id."""
        fs = frozenset(levels)
        vid = self._varset_ids.get(fs)
        if vid is None:
            vid = len(self._varsets)
            self._varsets.append(fs)
            self._varset_ids[fs] = vid
        return vid

    def varset_levels(self, varset_id: int) -> frozenset:
        return self._varsets[varset_id]

    def exist(self, u: int, varset_id: int) -> int:
        """Existentially quantify the varset's levels out of ``u``."""
        levels = self._varsets[varset_id]
        if not levels:
            return u
        max_level = max(levels)
        return self._exist(u, varset_id, levels, max_level)

    def _exist(self, u: int, vid: int, levels: frozenset, max_level: int) -> int:
        if u < 2:
            return u
        v = self._var[u]
        if v > max_level:
            return u
        key = (u, vid)
        cached = self._exist_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        low = self._exist(self._low[u], vid, levels, max_level)
        high = self._exist(self._high[u], vid, levels, max_level)
        if v in levels:
            result = self.or_(low, high)
        else:
            result = self.mk(v, low, high)
        self._exist_cache[key] = result
        return result

    def forall(self, u: int, varset_id: int) -> int:
        """Universal quantification: dual of :meth:`exist`."""
        return self.not_(self.exist(self.not_(u), varset_id))

    def implies(self, a: int, b: int) -> int:
        """``a -> b`` as a BDD (used by query post-processing)."""
        return self.or_(self.not_(a), b)

    def iff(self, a: int, b: int) -> int:
        """``a <-> b`` — the complement of XOR."""
        return self.not_(self.xor(a, b))

    def rel_prod(self, a: int, b: int, varset_id: int) -> int:
        """``exist(varset, a AND b)`` computed in one fused recursion.

        This is the workhorse of Datalog rule application: a natural join
        followed by projecting away the join attributes (Section 2.4.2).
        """
        levels = self._varsets[varset_id]
        if not levels:
            return self.and_(a, b)
        max_level = max(levels)
        return self._rel_prod(a, b, varset_id, levels, max_level)

    def _rel_prod(self, a: int, b: int, vid: int, levels: frozenset, max_level: int) -> int:
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE and b == TRUE:
            return TRUE
        if a == TRUE:
            return self._exist(b, vid, levels, max_level)
        if b == TRUE:
            return self._exist(a, vid, levels, max_level)
        if a > b:  # AND is commutative; canonicalize the cache key.
            a, b = b, a
        key = (a, b, vid)
        cached = self._relprod_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        va, vb = self._var[a], self._var[b]
        v = va if va < vb else vb
        if va == vb:
            a0, a1 = self._low[a], self._high[a]
            b0, b1 = self._low[b], self._high[b]
        elif va < vb:
            a0, a1 = self._low[a], self._high[a]
            b0 = b1 = b
        else:
            a0 = a1 = a
            b0, b1 = self._low[b], self._high[b]
        if v > max_level:
            # No quantified variable can appear below this point.
            result = self.and_(a, b)
        else:
            r0 = self._rel_prod(a0, b0, vid, levels, max_level)
            r1 = self._rel_prod(a1, b1, vid, levels, max_level)
            if v in levels:
                result = self.or_(r0, r1)
            else:
                result = self.mk(v, r0, r1)
        self._relprod_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Renaming (replace)
    # ------------------------------------------------------------------

    def replace_map(self, mapping: Dict[int, int]) -> int:
        """Intern a level-renaming map; returns a map id.

        The mapping must be injective.  A fast structural check decides
        whether the straightforward ``mk``-based recursion preserves the
        variable order; if not, :meth:`replace` falls back to an
        order-correcting ``ite`` rebuild.
        """
        items = tuple(sorted(mapping.items()))
        mid = self._replace_map_keys.get(items)
        if mid is not None:
            return mid
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise BDDError("replace mapping must be injective")
        mid = len(self._replace_maps)
        self._replace_maps.append(dict(mapping))
        self._replace_map_keys[items] = mid
        self._replace_map_safe.append(self._mapping_is_order_safe(mapping))
        return mid

    def _mapping_is_order_safe(self, mapping: Dict[int, int]) -> bool:
        """True when the ``mk``-based replace recursion is order-correct.

        Sufficient conditions: the mapping is monotonic (sources and targets
        sort identically) and every level strictly between a source and its
        target is itself touched by the mapping, so no untouched variable
        can be "crossed" by a rename.
        """
        items = sorted(mapping.items())
        targets = [t for _, t in items]
        if targets != sorted(targets):
            return False
        touched = set(mapping.keys()) | set(mapping.values())
        for s, t in items:
            lo, hi = (s, t) if s < t else (t, s)
            for level in range(lo + 1, hi):
                if level not in touched:
                    return False
        return True

    def replace(self, u: int, map_id: int) -> int:
        """Rename variables of ``u`` according to an interned mapping."""
        mapping = self._replace_maps[map_id]
        if not mapping or u < 2:
            return u
        if self._replace_map_safe[map_id]:
            return self._replace_fast(u, map_id, mapping)
        return self._replace_ite(u, map_id, mapping)

    def _replace_fast(self, u: int, mid: int, mapping: Dict[int, int]) -> int:
        if u < 2:
            return u
        key = (u, mid)
        cached = self._replace_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        v = self._var[u]
        nv = mapping.get(v, v)
        result = self.mk(
            nv,
            self._replace_fast(self._low[u], mid, mapping),
            self._replace_fast(self._high[u], mid, mapping),
        )
        self._replace_cache[key] = result
        return result

    def _replace_ite(self, u: int, mid: int, mapping: Dict[int, int]) -> int:
        if u < 2:
            return u
        key = (u, mid)
        cached = self._replace_cache.get(key)
        if cached is not None:
            return cached
        self.op_count += 1
        v = self._var[u]
        nv = mapping.get(v, v)
        low = self._replace_ite(self._low[u], mid, mapping)
        high = self._replace_ite(self._high[u], mid, mapping)
        result = self.ite(self.var_bdd(nv), high, low)
        self._replace_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Counting and enumeration
    # ------------------------------------------------------------------

    def support(self, u: int) -> frozenset:
        """Set of levels appearing in ``u``."""
        seen: set = set()
        levels: set = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n < 2 or n in seen:
                continue
            seen.add(n)
            levels.add(self._var[n])
            stack.append(self._low[n])
            stack.append(self._high[n])
        return frozenset(levels)

    def sat_count(self, u: int, levels: Sequence[int]) -> int:
        """Number of satisfying assignments over exactly ``levels``.

        ``levels`` must be a superset of the support of ``u``.  Python's
        arbitrary-precision integers make this exact even for the paper's
        10^14-context relations.  Per-node counts are cached persistently
        under the interned level set, so repeated counts over the same
        attribute set (the common case: solver statistics every
        iteration) are incremental.
        """
        order = sorted(set(levels))
        index = {lv: i for i, lv in enumerate(order)}
        n = len(order)
        sup = self.support(u)
        if not sup.issubset(index.keys()):
            missing = sorted(sup - set(index))
            raise BDDError(f"sat_count levels missing support levels {missing}")
        vid = self.varset(order)
        cache = self._satcount_cache

        def count(node: int) -> int:
            # Returns count over variables *below* (and including) node's level,
            # normalized to the node's own level position.
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << 0  # weight handled by caller via gap scaling
            key = (vid, node)
            cached = cache.get(key)
            if cached is not None:
                return cached
            v = index[self._var[node]]
            lo, hi = self._low[node], self._high[node]
            lo_count = count(lo) << _gap(v, lo)
            hi_count = count(hi) << _gap(v, hi)
            result = lo_count + hi_count
            cache[key] = result
            return result

        def _gap(parent_pos: int, child: int) -> int:
            if child < 2:
                return n - parent_pos - 1
            return index[self._var[child]] - parent_pos - 1

        if u == FALSE:
            return 0
        if u == TRUE:
            return 1 << n
        top = index[self._var[u]]
        return count(u) << top

    def iter_assignments(self, u: int, levels: Sequence[int]) -> Iterator[Tuple[int, ...]]:
        """Yield all satisfying assignments as bit tuples over ``levels``.

        Bits are yielded in the order of ``levels`` as given.  Don't-care
        variables are expanded, so this is only suitable for relations of
        modest cardinality (e.g. reporting results).
        """
        order = sorted(set(levels))
        index = {lv: i for i, lv in enumerate(order)}
        n = len(order)
        sup = self.support(u)
        if not sup.issubset(index.keys()):
            missing = sorted(sup - set(index))
            raise BDDError(f"iter_assignments missing support levels {missing}")
        out_positions = [index[lv] for lv in levels]

        def walk(node: int, pos: int, bits: List[int]) -> Iterator[Tuple[int, ...]]:
            if pos == n:
                if node == TRUE:
                    yield tuple(bits[p] for p in out_positions)
                return
            if node == FALSE:
                return
            level = order[pos]
            if node != TRUE and self._var[node] == level:
                branches = ((0, self._low[node]), (1, self._high[node]))
            else:
                branches = ((0, node), (1, node))
            for bit, child in branches:
                bits[pos] = bit
                yield from walk(child, pos + 1, bits)

        yield from walk(u, 0, [0] * n)

    def restrict(self, u: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``u`` by fixing the given levels to constants."""
        if not assignment:
            return u
        cache: Dict[int, int] = {}

        def rec(node: int) -> int:
            if node < 2:
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            v = self._var[node]
            if v in assignment:
                result = rec(self._high[node] if assignment[v] else self._low[node])
            else:
                result = self.mk(v, rec(self._low[node]), rec(self._high[node]))
            cache[node] = result
            return result

        return rec(u)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def collect_garbage(self, roots: Iterable[int]) -> Dict[int, int]:
        """Mark-and-sweep: keep nodes reachable from ``roots``.

        Returns a mapping from old handles to new handles; every externally
        held handle **must** be remapped through it.  All operation caches
        are invalidated (their keys reference old handles).
        """
        reachable: set = {FALSE, TRUE}
        stack = [r for r in roots]
        while stack:
            n = stack.pop()
            if n in reachable:
                continue
            reachable.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        order = sorted(reachable)
        mapping = {old: new for new, old in enumerate(order)}
        new_var = [self._var[old] for old in order]
        new_low = [mapping[self._low[old]] for old in order]
        new_high = [mapping[self._high[old]] for old in order]
        self._var, self._low, self._high = new_var, new_low, new_high
        self._rebuild_unique()
        self.clear_caches()
        self.gc_count += 1
        return mapping

    def _rebuild_unique(self) -> None:
        """Rebuild the hash-cons table from the (compacted) node arrays."""
        self._unique = {
            (self._var[i], self._low[i], self._high[i]): i
            for i in range(2, len(self._var))
        }

    def cache_entries(self) -> int:
        """Total entries across the operation caches (memory pressure)."""
        return (
            len(self._apply_cache)
            + len(self._not_cache)
            + len(self._ite_cache)
            + len(self._exist_cache)
            + len(self._relprod_cache)
            + len(self._replace_cache)
            + len(self._satcount_cache)
        )

    def _trim_caches(self) -> None:
        """Enforce ``cache_limit``: clear-on-overflow, peak recorded."""
        entries = self.cache_entries()
        if entries > self.peak_cache_entries:
            self.peak_cache_entries = entries
        if self.cache_limit is not None and entries > self.cache_limit:
            self.clear_caches()
            self.cache_clears += 1

    def clear_caches(self) -> None:
        """Drop operation caches (overflow, GC, reorder, benchmarks)."""
        entries = self.cache_entries()
        if entries > self.peak_cache_entries:
            self.peak_cache_entries = entries
        self._apply_cache.clear()
        self._not_cache.clear()
        self._ite_cache.clear()
        self._exist_cache.clear()
        self._relprod_cache.clear()
        self._replace_cache.clear()
        self._satcount_cache.clear()

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------

    def to_dot(self, u: int, name: str = "bdd") -> str:
        """Graphviz rendering of the BDD rooted at ``u`` (for debugging).

        The graph name and all labels are quoted/escaped, so the output is
        parseable DOT for any ``name`` (spaces, quotes, keywords, ...).
        """
        lines = [f'digraph "{_dot_quote(name)}" {{']
        lines.append('  0 [shape=box,label="0"]; 1 [shape=box,label="1"];')
        seen = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n < 2 or n in seen:
                continue
            seen.add(n)
            lines.append(f'  {n} [label="{_dot_quote(f"x{self._var[n]}")}"];')
            lines.append(f"  {n} -> {self._low[n]} [style=dashed];")
            lines.append(f"  {n} -> {self._high[n]};")
            stack.append(self._low[n])
            stack.append(self._high[n])
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} vars={self.num_vars} nodes={self.node_count()} "
            f"peak={self.peak_nodes} ops={self.op_count}>"
        )
