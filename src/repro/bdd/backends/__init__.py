"""Concrete :class:`repro.bdd.api.BddKernel` backends.

Nothing outside this package may import these modules directly — go
through :func:`repro.bdd.api.create_kernel` (enforced by
``tests/bdd/test_api_boundary.py``).
"""
