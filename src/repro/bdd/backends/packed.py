"""Packed BDD backend: packed-int cache keys + depth-safe iterative core.

Same semantics as :class:`~repro.bdd.backends.reference.ReferenceBDD`
(it subclasses it, so cold paths — cube/support/sat_count/GC/serialize —
are shared code), with the hot paths rebuilt for speed and robustness:

**Packed-integer cache keys.**  The reference backend keys its caches on
tuples, paying an allocation plus a tuple hash per lookup.  Here every
key is a single int: operands packed into 27-bit fields with the
operation tag above them.  27 bits per handle leaves headroom for 134M
nodes (the GC threshold grows arenas to a few million).  Layouts, with
``tag = key >> 54`` disambiguating:

====================  ===============================================
unique (own table)    ``(var << 54) | (low << 27) | high``
and/or/diff/xor       ``(op << 54) | (a << 27) | b``    (op in 0..3)
not                   ``(4 << 54) | a``                 (bidirectional)
ite                   ``(5 << 81) | (f << 54) | (g << 27) | h``
exist                 ``(6 << 54) | (vid << 27) | u``
rel_prod              ``(vid << 57) | (7 << 54) | (a << 27) | b``
replace               ``(8 << 54) | (mid << 27) | u``
====================  ===============================================

The shapes are disjoint under ``key >> 54``: apply/not/exist/replace
tags are the exact constants 0-4, 6, and 8; rel_prod yields ``7 + 8 *
vid`` (congruent to 7 mod 8, which none of the constants are); and ite
yields at least ``5 << 27`` (congruent to 0 mod 8, and far above any
realistic varset id).  All nine can therefore share **one unified
operation cache** (cleared wholesale on overflow, exactly like the
reference backend's clear-on-overflow policy).  The rel_prod layout
keeps the vid *above* a 3-bit tag rather than below a wide one so the
whole key stays within two 30-bit bigint digits for small varset ids —
key construction is pure small-int shifting on the hot path.

**Depth-safe hot loops.**  ``apply`` (and/or/diff/xor), ``exist``, and
``rel_prod`` recursion descends one variable level per step, so its
depth is bounded by the arena's variable count — never by diagram size.
The backend exploits that bound adaptively:

* arenas at most :data:`_RECURSION_SAFE_VARS` variables wide (every
  analysis arena in this reproduction is well under it) run a
  *closure-form recursion*: the node arrays, the unified cache, and the
  unique table live in closure cells, node construction is inlined as a
  direct unique-table probe, and the watchdog / fault-injection tick is
  batched through a local counter.  This is substantially faster than
  the reference's method recursion because the hot state needs no
  attribute traffic and no ``mk`` call per node;
* wider arenas automatically switch to explicit-stack loops (all-int
  work/result stacks, frame kinds distinguished by the sign of the top
  word), which tolerate any depth.

Either way ``RecursionError`` is unreachable: the recursive form only
runs when its depth bound provably fits default interpreter limits, and
the stack form has no recursion at all.  ``not_``, ``ite``, and
``replace`` always use the stack form (they are not solver-hot).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...runtime import faults
from ..api import FALSE, TRUE, BDDError
from .reference import ReferenceBDD

__all__ = ["PackedBDD"]

_SHIFT = 27
_MASK = (1 << _SHIFT) - 1

_TAG_OR = 1 << 54
_TAG_NOT = 4 << 54
_TAG_ITE = 5 << 81
_TAG_EXIST = 6 << 54
_TAG_RELPROD = 7 << 54  # full tag per varset: (vid << 57) | _TAG_RELPROD
_TAG_REPLACE = 8 << 54

# Operator codes shared with the reference backend's apply.
_OP_AND = 0
_OP_OR = 1
_OP_DIFF = 2
_OP_XOR = 3

# Combine-frame markers (eval frames always start with a handle >= 0).
# Markers <= -3 encode the level of a pending mk as ``-3 - level``.
_CONST = -1
_OR = -2

# Widest arena for which the closure-form recursion is provably safe:
# apply/exist/rel_prod descend one level per step and may stack one
# nested or_/exist recursion on top, so worst-case interpreter depth is
# ~2x the variable count plus the caller's frames — comfortably inside
# CPython's default 1000-frame limit at this bound.
_RECURSION_SAFE_VARS = 300


class PackedBDD(ReferenceBDD):
    """Optimized BDD arena: unified packed-key cache, depth-safe hot loops."""

    backend_name = "packed"

    def __init__(self, num_vars: int = 0, cache_limit: Optional[int] = 2_000_000) -> None:
        super().__init__(num_vars=num_vars, cache_limit=cache_limit)
        if self.num_vars > _MASK:
            raise BDDError(f"packed backend supports at most {_MASK} variables")
        # One unified operation cache replaces the per-op tuple-key dicts.
        # The inherited dicts are deleted so any accidentally inherited
        # code path fails fast instead of silently using a dead cache.
        del self._apply_cache
        del self._not_cache
        del self._ite_cache
        del self._exist_cache
        del self._relprod_cache
        del self._replace_cache
        self._unique: Dict[int, int] = {}
        self._op_cache: Dict[int, int] = {}
        # Per-varset quantification flags: vid -> bytes indexed by level
        # (length max_level + 1).  Levels are stable across GC, so this
        # never needs invalidation.
        self._quant_flags: Dict[int, bytes] = {}
        # Per-varset (levels, max_level, rel_prod tag) memo: varsets are
        # interned and immutable, so this never needs invalidation either.
        # It spares the public exist/rel_prod entries a max() per call.
        self._vinfo: Dict[int, tuple] = {}
        # Compiled closure-form recursions, keyed by op code (apply) or
        # (kind, varset id) pairs (exist / rel_prod).  Each closure holds
        # the node arrays, unique table, and cache in cells, so it must
        # be dropped whenever those are rebound (GC) or the watchdog
        # stride changes — see ``_rebuild_unique`` / ``set_watchdog``.
        self._hot: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    def add_vars(self, count: int) -> int:
        total = super().add_vars(count)
        if total > _MASK:
            raise BDDError(f"packed backend supports at most {_MASK} variables")
        self._hot.clear()  # replace closures capture the variable bound
        return total

    def mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var << 54) | (low << _SHIFT) | high
        node = self._unique.get(key)
        if node is not None:
            return node
        if not 0 <= var < self.num_vars:
            raise BDDError(f"variable level {var} out of range 0..{self.num_vars - 1}")
        node = len(self._var)
        if node > _MASK:
            raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        if node + 1 > self.peak_nodes:
            self.peak_nodes = node + 1
        self._watchdog_tick += 1
        if self._watchdog_tick >= self._watchdog_stride:
            self._watchdog_tick = 0
            self._mk_service()
        return node

    def _mk_service(self) -> None:
        """Periodic work run every ``_watchdog_stride`` fresh nodes.

        Shared by :meth:`mk` and the inlined node construction inside the
        hot loops; may raise (fault injection, watchdog abort), in which
        case the in-flight operation unwinds without writing a cache
        entry for the aborted frame — same contract as the reference
        backend.  Counters are flushed before it runs, so a watchdog
        callback observes live statistics.
        """
        if faults.armed:
            faults.fire("bdd.mk")
        if self.cache_limit is not None:
            self._trim_caches()
        if self._watchdog is not None:
            self._watchdog()

    def _rebuild_unique(self) -> None:
        self._unique = {
            (self._var[i] << 54) | (self._low[i] << _SHIFT) | self._high[i]: i
            for i in range(2, len(self._var))
        }
        # GC rebinds the node arrays and the unique table; compiled
        # closures hold the old objects in cells and must be rebuilt.
        self._hot.clear()

    def set_watchdog(self, callback, stride: int = 2048) -> None:
        super().set_watchdog(callback, stride)
        self._hot.clear()  # closures capture the stride

    def clear_watchdog(self) -> None:
        super().clear_watchdog()
        self._hot.clear()

    def _quant(self, vid: int, levels: frozenset, max_level: int) -> bytes:
        flags = self._quant_flags.get(vid)
        if flags is None:
            flags = bytes(1 if i in levels else 0 for i in range(max_level + 1))
            self._quant_flags[vid] = flags
        return flags

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    # Each public entry resolves shortcuts and probes the cache inline;
    # only genuine misses pay the setup cost in ``_apply``.

    def and_(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        if a < 2:
            return b if a else FALSE
        if a == b:
            return a
        r = self._op_cache.get((a << _SHIFT) | b)
        if r is not None:
            return r
        return self._apply(_OP_AND, a, b)

    def or_(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        if b == 1:
            return TRUE
        if a < 2:
            return b if a == 0 else TRUE
        if a == b:
            return a
        r = self._op_cache.get((1 << 54) | (a << _SHIFT) | b)
        if r is not None:
            return r
        return self._apply(_OP_OR, a, b)

    def diff(self, a: int, b: int) -> int:
        if a == FALSE or b == TRUE or a == b:
            return FALSE
        if b == FALSE:
            return a
        r = self._op_cache.get((2 << 54) | (a << _SHIFT) | b)
        if r is not None:
            return r
        return self._apply(_OP_DIFF, a, b)

    def xor(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        if a == FALSE:
            return b
        if a == b:
            return FALSE
        r = self._op_cache.get((3 << 54) | (a << _SHIFT) | b)
        if r is not None:
            return r
        return self._apply(_OP_XOR, a, b)

    def _apply(self, op: int, a: int, b: int) -> int:
        if self.num_vars > _RECURSION_SAFE_VARS:
            return self._apply_loop(op, a, b)
        fn = self._hot.get(op)
        if fn is None:
            fn = self._hot[op] = self._make_apply(op)
        return fn(a, b)

    def _make_apply(self, op: int):
        """Compile the closure-form recursion for one apply operator.

        All hot state (node arrays, unique table, unified cache, watchdog
        stride) lives in closure cells; the returned entry point syncs
        the op/tick counters with the instance around each top-level
        call, so watchdog callbacks and fault hooks observe live values.

        ``rec`` takes an already-canonicalized, shortcut-free operand
        pair together with its *prebuilt* cache key, and resolves each
        cofactor pair inline — shortcut compares plus one cache probe —
        recursing only on a genuine miss and handing the probed key
        down.  Every node pair therefore pays exactly one key
        construction and one cache probe, and shortcut/hit children
        never pay a call at all.
        """
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        tag = op << 54
        is_and = op == _OP_AND
        is_or = op == _OP_OR
        is_diff = op == _OP_DIFF
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(a: int, b: int, key: int) -> int:
            nonlocal ops, tick
            ops += 1
            va = var[a]
            vb = var[b]
            if va < vb:
                v = va
                a0, a1, b0, b1 = low[a], high[a], b, b
            elif vb < va:
                v = vb
                a0, a1, b0, b1 = a, a, low[b], high[b]
            else:
                v = va
                a0, a1, b0, b1 = low[a], high[a], low[b], high[b]
            if is_and:
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 < 2:
                    lo = b0 if a0 else 0
                elif a0 == b0:
                    lo = a0
                else:
                    ckey = (a0 << 27) | b0
                    lo = cache_get(ckey)
                    if lo is None:
                        lo = rec(a0, b0, ckey)
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 < 2:
                    hi = b1 if a1 else 0
                elif a1 == b1:
                    hi = a1
                else:
                    ckey = (a1 << 27) | b1
                    hi = cache_get(ckey)
                    if hi is None:
                        hi = rec(a1, b1, ckey)
            elif is_or:
                if a0 > b0:
                    a0, b0 = b0, a0
                if b0 == 1:
                    lo = 1
                elif a0 < 2:
                    lo = b0 if a0 == 0 else 1
                elif a0 == b0:
                    lo = a0
                else:
                    ckey = tag | (a0 << 27) | b0
                    lo = cache_get(ckey)
                    if lo is None:
                        lo = rec(a0, b0, ckey)
                if a1 > b1:
                    a1, b1 = b1, a1
                if b1 == 1:
                    hi = 1
                elif a1 < 2:
                    hi = b1 if a1 == 0 else 1
                elif a1 == b1:
                    hi = a1
                else:
                    ckey = tag | (a1 << 27) | b1
                    hi = cache_get(ckey)
                    if hi is None:
                        hi = rec(a1, b1, ckey)
            elif is_diff:
                if a0 == 0 or b0 == 1 or a0 == b0:
                    lo = 0
                elif b0 == 0:
                    lo = a0
                else:
                    ckey = tag | (a0 << 27) | b0
                    lo = cache_get(ckey)
                    if lo is None:
                        lo = rec(a0, b0, ckey)
                if a1 == 0 or b1 == 1 or a1 == b1:
                    hi = 0
                elif b1 == 0:
                    hi = a1
                else:
                    ckey = tag | (a1 << 27) | b1
                    hi = cache_get(ckey)
                    if hi is None:
                        hi = rec(a1, b1, ckey)
            else:  # xor
                if a0 > b0:
                    a0, b0 = b0, a0
                if a0 == 0:
                    lo = b0
                elif a0 == b0:
                    lo = 0
                else:
                    ckey = tag | (a0 << 27) | b0
                    lo = cache_get(ckey)
                    if lo is None:
                        lo = rec(a0, b0, ckey)
                if a1 > b1:
                    a1, b1 = b1, a1
                if a1 == 0:
                    hi = b1
                elif a1 == b1:
                    hi = 0
                else:
                    ckey = tag | (a1 << 27) | b1
                    hi = cache_get(ckey)
                    if hi is None:
                        hi = rec(a1, b1, ckey)
            if lo == hi:
                r = lo
            else:
                ukey = (v << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
                    var.append(v)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(a: int, b: int) -> int:
            # Contract: the caller (public fast path or a sibling
            # closure) already applied shortcuts, canonicalized
            # commutative operands, and missed the cache.
            nonlocal ops, tick
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(a, b, tag | (a << 27) | b)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    def _apply_loop(self, op: int, a: int, b: int) -> int:
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        tag = op << 54
        is_and = op == _OP_AND
        is_or = op == _OP_OR
        is_diff = op == _OP_DIFF
        tasks: List[int] = [b, a]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        ops = 0
        tick = self._watchdog_tick
        stride = self._watchdog_stride
        try:
            while tasks:
                a = pop()
                if a >= 0:
                    b = pop()
                    # Terminal and absorption shortcuts (cover all
                    # terminal-terminal pairs, so no table lookup needed).
                    if is_and:
                        if a > b:
                            a, b = b, a
                        if a < 2:
                            rpush(b if a else 0)
                            continue
                        if a == b:
                            rpush(a)
                            continue
                    elif is_or:
                        if a > b:
                            a, b = b, a
                        if b == 1:
                            rpush(1)
                            continue
                        if a < 2:
                            rpush(b if a == 0 else 1)
                            continue
                        if a == b:
                            rpush(a)
                            continue
                    elif is_diff:
                        if a == 0 or b == 1 or a == b:
                            rpush(0)
                            continue
                        if b == 0:
                            rpush(a)
                            continue
                    else:  # xor
                        if a > b:
                            a, b = b, a
                        if a == 0:
                            rpush(b)
                            continue
                        if a == b:
                            rpush(0)
                            continue
                    key = tag | (a << _SHIFT) | b
                    r = cache_get(key)
                    if r is not None:
                        rpush(r)
                        continue
                    ops += 1
                    va = var[a]
                    vb = var[b]
                    if va < vb:
                        v = va
                        a0, a1, b0, b1 = low[a], high[a], b, b
                    elif vb < va:
                        v = vb
                        a0, a1, b0, b1 = a, a, low[b], high[b]
                    else:
                        v = va
                        a0, a1, b0, b1 = low[a], high[a], low[b], high[b]
                    push(key)
                    push(-3 - v)
                    push(b1)
                    push(a1)
                    push(b0)
                    push(a0)
                elif a == _CONST:
                    rpush(pop())
                else:
                    v = -3 - a
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi:
                        r = lo
                    else:
                        ukey = (v << 54) | (lo << _SHIFT) | hi
                        r = unique_get(ukey)
                        if r is None:
                            r = len(var)
                            if r > _MASK:
                                raise BDDError(
                                    f"packed backend arena exceeds {_MASK} nodes"
                                )
                            var.append(v)
                            low.append(lo)
                            high.append(hi)
                            unique[ukey] = r
                            tick += 1
                            if tick >= stride:
                                tick = 0
                                self._watchdog_tick = 0
                                self.op_count += ops
                                ops = 0
                                self._mk_service()
                    cache[key] = r
                    rpush(r)
        finally:
            self.op_count += ops
            self._watchdog_tick = tick
            n = len(var)
            if n > self.peak_nodes:
                self.peak_nodes = n
        return results[0]

    def not_(self, a: int) -> int:
        if a < 2:
            return 1 - a
        r = self._op_cache.get(_TAG_NOT | a)
        if r is not None:
            return r
        var = self._var
        low = self._low
        high = self._high
        unique_get = self._unique.get
        cache = self._op_cache
        cache_get = cache.get
        mk = self.mk
        tasks: List[int] = [a]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        while tasks:
            n = pop()
            if n >= 0:
                if n < 2:
                    rpush(1 - n)
                    continue
                r = cache_get(_TAG_NOT | n)
                if r is not None:
                    rpush(r)
                    continue
                push(n)
                push(-3 - var[n])
                push(high[n])
                push(low[n])
            else:
                v = -3 - n
                n = pop()
                hi = rpop()
                lo = rpop()
                r = unique_get((v << 54) | (lo << _SHIFT) | hi)
                if r is None:
                    r = mk(v, lo, hi)
                cache[_TAG_NOT | n] = r
                cache[_TAG_NOT | r] = n
                rpush(r)
        return results[0]

    def ite(self, f: int, g: int, h: int) -> int:
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return self.not_(f)
        r = self._op_cache.get(_TAG_ITE | (f << 54) | (g << _SHIFT) | h)
        if r is not None:
            return r
        if self.num_vars > _RECURSION_SAFE_VARS:
            return self._ite_loop(f, g, h)
        fn = self._hot.get("i")
        if fn is None:
            fn = self._hot["i"] = self._make_ite()
        return fn(f, g, h)

    def _make_ite(self):
        """Compile the closure-form ite recursion."""
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        not_ = self.not_
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(f: int, g: int, h: int) -> int:
            nonlocal ops, tick
            if f == 1:
                return g
            if f == 0:
                return h
            if g == h:
                return g
            if g == 1 and h == 0:
                return f
            if g == 0 and h == 1:
                self._watchdog_tick = tick
                self.op_count += ops
                ops = 0
                r = not_(f)
                tick = self._watchdog_tick
                return r
            key = _TAG_ITE | (f << 54) | (g << 27) | h
            r = cache_get(key)
            if r is not None:
                return r
            ops += 1
            vf = var[f]
            vg = var[g]
            vh = var[h]
            v = vf if vf < vg else vg
            if vh < v:
                v = vh
            f0, f1 = (low[f], high[f]) if vf == v else (f, f)
            g0, g1 = (low[g], high[g]) if vg == v else (g, g)
            h0, h1 = (low[h], high[h]) if vh == v else (h, h)
            lo = rec(f0, g0, h0)
            hi = rec(f1, g1, h1)
            if lo == hi:
                r = lo
            else:
                ukey = (v << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
                    var.append(v)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(f: int, g: int, h: int) -> int:
            nonlocal ops, tick
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(f, g, h)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    def _ite_loop(self, f: int, g: int, h: int) -> int:
        var = self._var
        low = self._low
        high = self._high
        cache = self._op_cache
        cache_get = cache.get
        mk = self.mk
        tasks: List[int] = [h, g, f]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        ops = 0
        try:
            while tasks:
                f = pop()
                if f >= 0:
                    g = pop()
                    h = pop()
                    if f == 1:
                        rpush(g)
                        continue
                    if f == 0:
                        rpush(h)
                        continue
                    if g == h:
                        rpush(g)
                        continue
                    if g == 1 and h == 0:
                        rpush(f)
                        continue
                    if g == 0 and h == 1:
                        rpush(self.not_(f))
                        continue
                    key = _TAG_ITE | (f << 54) | (g << _SHIFT) | h
                    r = cache_get(key)
                    if r is not None:
                        rpush(r)
                        continue
                    ops += 1
                    vf = var[f]
                    vg = var[g]
                    vh = var[h]
                    v = vf if vf < vg else vg
                    if vh < v:
                        v = vh
                    f0, f1 = (low[f], high[f]) if vf == v else (f, f)
                    g0, g1 = (low[g], high[g]) if vg == v else (g, g)
                    h0, h1 = (low[h], high[h]) if vh == v else (h, h)
                    push(key)
                    push(-3 - v)
                    push(h1)
                    push(g1)
                    push(f1)
                    push(h0)
                    push(g0)
                    push(f0)
                elif f == _CONST:
                    rpush(pop())
                else:
                    v = -3 - f
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi:
                        r = lo
                    else:
                        r = mk(v, lo, hi)
                    cache[key] = r
                    rpush(r)
        finally:
            self.op_count += ops
        return results[0]

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def _varset_info(self, vid: int) -> tuple:
        info = self._vinfo.get(vid)
        if info is None:
            levels = self._varsets[vid]
            info = self._vinfo[vid] = (
                levels,
                max(levels) if levels else -1,
                (vid << 57) | _TAG_RELPROD,
            )
        return info

    def exist(self, u: int, varset_id: int) -> int:
        # Inline the memo probe: this is the hot public entry, and the
        # extra method call of _varset_info is measurable per-op.
        info = self._vinfo.get(varset_id) or self._varset_info(varset_id)
        levels = info[0]
        if not levels:
            return u
        return self._exist(u, varset_id, levels, info[1])

    def _exist(self, u: int, vid: int, levels: frozenset, max_level: int) -> int:
        if u < 2 or self._var[u] > max_level:
            return u
        if self.num_vars > _RECURSION_SAFE_VARS:
            r = self._op_cache.get(_TAG_EXIST | (vid << _SHIFT) | u)
            if r is not None:
                return r
            return self._exist_loop(u, vid, levels, max_level)
        fn = self._hot.get(("e", vid))
        if fn is None:
            fn = self._hot[("e", vid)] = self._make_exist(vid, levels, max_level)
        return fn(u)

    def _make_exist(self, vid: int, levels: frozenset, max_level: int):
        """Compile the closure-form exist recursion for one varset.

        ``rec`` receives an internal node at or below ``max_level``
        together with its prebuilt, probed-and-missed cache key.  Each
        child is resolved inline (terminal/level check, one probe) and
        only recurses on a miss; or-combines probe the unified cache
        under the apply-OR key before falling into the chained apply
        closure.
        """
        tag = _TAG_EXIST | (vid << _SHIFT)
        quant = self._quant(vid, levels, max_level)
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        or_entry = self._hot.get(_OP_OR)
        if or_entry is None:
            or_entry = self._hot[_OP_OR] = self._make_apply(_OP_OR)
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(n: int, key: int) -> int:
            nonlocal ops, tick
            ops += 1
            v = var[n]
            n0 = low[n]
            if n0 < 2 or var[n0] > max_level:
                lo = n0
            else:
                ckey = tag | n0
                lo = cache_get(ckey)
                if lo is None:
                    lo = rec(n0, ckey)
            n1 = high[n]
            if n1 < 2 or var[n1] > max_level:
                hi = n1
            else:
                ckey = tag | n1
                hi = cache_get(ckey)
                if hi is None:
                    hi = rec(n1, ckey)
            if quant[v]:
                if lo == hi or hi == 0:
                    r = lo
                elif lo == 0:
                    r = hi
                elif lo == 1 or hi == 1:
                    r = 1
                else:
                    if lo > hi:
                        lo, hi = hi, lo
                    okey = _TAG_OR | (lo << 27) | hi
                    r = cache_get(okey)
                    if r is None:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = or_entry(lo, hi)
                        tick = self._watchdog_tick
            elif lo == hi:
                r = lo
            else:
                ukey = (v << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
                    var.append(v)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(u: int) -> int:
            nonlocal ops, tick
            if u < 2 or var[u] > max_level:
                return u
            key = tag | u
            r = cache_get(key)
            if r is not None:
                return r
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(u, key)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    def _exist_loop(self, u: int, vid: int, levels: frozenset, max_level: int) -> int:
        quant = self._quant(vid, levels, max_level)
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        or_ = self.or_
        tag = _TAG_EXIST | (vid << _SHIFT)
        tasks: List[int] = [u]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        ops = 0
        tick = self._watchdog_tick
        stride = self._watchdog_stride
        try:
            while tasks:
                n = pop()
                if n >= 0:
                    if n < 2 or var[n] > max_level:
                        rpush(n)
                        continue
                    key = tag | n
                    r = cache_get(key)
                    if r is not None:
                        rpush(r)
                        continue
                    ops += 1
                    v = var[n]
                    n0 = low[n]
                    n1 = high[n]
                    push(key)
                    push(_OR if quant[v] else -3 - v)
                    push(n1)
                    push(n0)
                elif n == _CONST:
                    rpush(pop())
                elif n == _OR:
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi or hi == 0:
                        r = lo
                    elif lo == 0:
                        r = hi
                    elif lo == 1 or hi == 1:
                        r = 1
                    else:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = or_(lo, hi)
                        tick = self._watchdog_tick
                    cache[key] = r
                    rpush(r)
                else:
                    v = -3 - n
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi:
                        r = lo
                    else:
                        ukey = (v << 54) | (lo << _SHIFT) | hi
                        r = unique_get(ukey)
                        if r is None:
                            r = len(var)
                            if r > _MASK:
                                raise BDDError(
                                    f"packed backend arena exceeds {_MASK} nodes"
                                )
                            var.append(v)
                            low.append(lo)
                            high.append(hi)
                            unique[ukey] = r
                            tick += 1
                            if tick >= stride:
                                tick = 0
                                self._watchdog_tick = 0
                                self.op_count += ops
                                ops = 0
                                self._mk_service()
                    cache[key] = r
                    rpush(r)
        finally:
            self.op_count += ops
            self._watchdog_tick = tick
            n = len(var)
            if n > self.peak_nodes:
                self.peak_nodes = n
        return results[0]

    def rel_prod(self, a: int, b: int, varset_id: int) -> int:
        info = self._vinfo.get(varset_id) or self._varset_info(varset_id)
        levels, max_level, tag = info
        if not levels:
            return self.and_(a, b)
        if a == 0 or b == 0:
            return FALSE
        if a == 1 and b == 1:
            return TRUE
        if a == 1:
            return self._exist(b, varset_id, levels, max_level)
        if b == 1:
            return self._exist(a, varset_id, levels, max_level)
        if a > b:  # AND is commutative; canonicalize the cache key.
            a, b = b, a
        r = self._op_cache.get(tag | (a << _SHIFT) | b)
        if r is not None:
            return r
        if self.num_vars > _RECURSION_SAFE_VARS:
            return self._relprod_loop(a, b, varset_id, levels, max_level, tag)
        fn = self._hot.get(("r", varset_id))
        if fn is None:
            fn = self._hot[("r", varset_id)] = self._make_relprod(
                varset_id, levels, max_level, tag
            )
        return fn(a, b)

    def _make_relprod(self, vid: int, levels: frozenset, max_level: int, tag: int):
        """Compile the closure-form rel_prod recursion for one varset.

        Same key-passing discipline as :meth:`_make_apply`: ``rec``
        receives internal, canonicalized operands plus their probed key;
        cofactor pairs are resolved inline (terminal shortcuts, swap, one
        probe) and recurse only on a miss.  Quantified combines and the
        below-``max_level`` conjunction probe the unified cache under the
        apply keys before chaining into the sibling apply/exist closures.
        """
        quant = self._quant(vid, levels, max_level)
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        or_entry = self._hot.get(_OP_OR)
        if or_entry is None:
            or_entry = self._hot[_OP_OR] = self._make_apply(_OP_OR)
        and_entry = self._hot.get(_OP_AND)
        if and_entry is None:
            and_entry = self._hot[_OP_AND] = self._make_apply(_OP_AND)
        efn = self._hot.get(("e", vid))
        if efn is None:
            efn = self._hot[("e", vid)] = self._make_exist(vid, levels, max_level)
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(a: int, b: int, key: int) -> int:
            nonlocal ops, tick
            ops += 1
            va = var[a]
            vb = var[b]
            if va < vb:
                v = va
                a0, a1, b0, b1 = low[a], high[a], b, b
            elif vb < va:
                v = vb
                a0, a1, b0, b1 = a, a, low[b], high[b]
            else:
                v = va
                a0, a1, b0, b1 = low[a], high[a], low[b], high[b]
            if v > max_level:
                # No quantified variable can appear below this point:
                # the rest is pure conjunction.
                if a == b:
                    r = a
                else:
                    akey = (a << 27) | b
                    r = cache_get(akey)
                    if r is None:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = and_entry(a, b)
                        tick = self._watchdog_tick
                cache[key] = r
                return r
            x = a0
            y = b0
            if x == 0 or y == 0:
                lo = 0
            elif x == 1 or y == 1:
                if x == 1 and y == 1:
                    lo = 1
                else:
                    self._watchdog_tick = tick
                    self.op_count += ops
                    ops = 0
                    lo = efn(y if x == 1 else x)
                    tick = self._watchdog_tick
            else:
                if x > y:
                    x, y = y, x
                ckey = tag | (x << 27) | y
                lo = cache_get(ckey)
                if lo is None:
                    lo = rec(x, y, ckey)
            x = a1
            y = b1
            if x == 0 or y == 0:
                hi = 0
            elif x == 1 or y == 1:
                if x == 1 and y == 1:
                    hi = 1
                else:
                    self._watchdog_tick = tick
                    self.op_count += ops
                    ops = 0
                    hi = efn(y if x == 1 else x)
                    tick = self._watchdog_tick
            else:
                if x > y:
                    x, y = y, x
                ckey = tag | (x << 27) | y
                hi = cache_get(ckey)
                if hi is None:
                    hi = rec(x, y, ckey)
            if quant[v]:
                if lo == hi or hi == 0:
                    r = lo
                elif lo == 0:
                    r = hi
                elif lo == 1 or hi == 1:
                    r = 1
                else:
                    if lo > hi:
                        lo, hi = hi, lo
                    okey = _TAG_OR | (lo << 27) | hi
                    r = cache_get(okey)
                    if r is None:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = or_entry(lo, hi)
                        tick = self._watchdog_tick
            elif lo == hi:
                r = lo
            else:
                ukey = (v << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
                    var.append(v)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(a: int, b: int) -> int:
            # Contract: operands internal, a <= b, cache missed.
            nonlocal ops, tick
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(a, b, tag | (a << 27) | b)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    def _relprod_loop(
        self,
        a: int,
        b: int,
        varset_id: int,
        levels: frozenset,
        max_level: int,
        tag: int,
    ) -> int:
        quant = self._quant(varset_id, levels, max_level)
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        or_ = self.or_
        and_ = self.and_
        exist = self._exist
        tasks: List[int] = [b, a]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        ops = 0
        tick = self._watchdog_tick
        stride = self._watchdog_stride
        try:
            while tasks:
                a = pop()
                if a >= 0:
                    b = pop()
                    if a == 0 or b == 0:
                        rpush(0)
                        continue
                    if a == 1 or b == 1:
                        if a == 1 and b == 1:
                            rpush(1)
                            continue
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        rpush(exist(b if a == 1 else a, varset_id, levels, max_level))
                        tick = self._watchdog_tick
                        continue
                    if a > b:  # AND is commutative; canonicalize the key.
                        a, b = b, a
                    key = tag | (a << _SHIFT) | b
                    r = cache_get(key)
                    if r is not None:
                        rpush(r)
                        continue
                    ops += 1
                    va = var[a]
                    vb = var[b]
                    if va < vb:
                        v = va
                        a0, a1, b0, b1 = low[a], high[a], b, b
                    elif vb < va:
                        v = vb
                        a0, a1, b0, b1 = a, a, low[b], high[b]
                    else:
                        v = va
                        a0, a1, b0, b1 = low[a], high[a], low[b], high[b]
                    if v > max_level:
                        # No quantified variable can appear below this point.
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = and_(a, b)
                        tick = self._watchdog_tick
                        cache[key] = r
                        rpush(r)
                        continue
                    push(key)
                    push(_OR if quant[v] else -3 - v)
                    push(b1)
                    push(a1)
                    push(b0)
                    push(a0)
                elif a == _CONST:
                    rpush(pop())
                elif a == _OR:
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi or hi == 0:
                        r = lo
                    elif lo == 0:
                        r = hi
                    elif lo == 1 or hi == 1:
                        r = 1
                    else:
                        self._watchdog_tick = tick
                        self.op_count += ops
                        ops = 0
                        r = or_(lo, hi)
                        tick = self._watchdog_tick
                    cache[key] = r
                    rpush(r)
                else:
                    v = -3 - a
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if lo == hi:
                        r = lo
                    else:
                        ukey = (v << 54) | (lo << _SHIFT) | hi
                        r = unique_get(ukey)
                        if r is None:
                            r = len(var)
                            if r > _MASK:
                                raise BDDError(
                                    f"packed backend arena exceeds {_MASK} nodes"
                                )
                            var.append(v)
                            low.append(lo)
                            high.append(hi)
                            unique[ukey] = r
                            tick += 1
                            if tick >= stride:
                                tick = 0
                                self._watchdog_tick = 0
                                self.op_count += ops
                                ops = 0
                                self._mk_service()
                    cache[key] = r
                    rpush(r)
        finally:
            self.op_count += ops
            self._watchdog_tick = tick
            n = len(var)
            if n > self.peak_nodes:
                self.peak_nodes = n
        return results[0]

    # ------------------------------------------------------------------
    # Renaming (iterative)
    # ------------------------------------------------------------------

    def _replace_fast(self, u: int, mid: int, mapping: Dict[int, int]) -> int:
        if self.num_vars > _RECURSION_SAFE_VARS:
            return self._replace_loop(u, mid, mapping, use_ite=False)
        fn = self._hot.get(("p", mid))
        if fn is None:
            fn = self._hot[("p", mid)] = self._make_replace(mid, mapping, use_ite=False)
        return fn(u)

    def _replace_ite(self, u: int, mid: int, mapping: Dict[int, int]) -> int:
        if self.num_vars > _RECURSION_SAFE_VARS:
            return self._replace_loop(u, mid, mapping, use_ite=True)
        fn = self._hot.get(("q", mid))
        if fn is None:
            fn = self._hot[("q", mid)] = self._make_replace(mid, mapping, use_ite=True)
        return fn(u)

    def _make_replace(self, mid: int, mapping: Dict[int, int], use_ite: bool):
        """Compile the closure-form replace recursion for one rename map."""
        tag = _TAG_REPLACE | (mid << _SHIFT)
        var = self._var
        low = self._low
        high = self._high
        unique = self._unique
        unique_get = unique.get
        cache = self._op_cache
        cache_get = cache.get
        get_nv = mapping.get
        num_vars = self.num_vars
        ite = self.ite
        var_bdd = self.var_bdd
        ops = 0
        tick = 0
        stride = self._watchdog_stride

        def rec(n: int, key: int) -> int:
            nonlocal ops, tick
            ops += 1
            v = var[n]
            nv = get_nv(v, v)
            n0 = low[n]
            if n0 < 2:
                lo = n0
            else:
                ckey = tag | n0
                lo = cache_get(ckey)
                if lo is None:
                    lo = rec(n0, ckey)
            n1 = high[n]
            if n1 < 2:
                hi = n1
            else:
                ckey = tag | n1
                hi = cache_get(ckey)
                if hi is None:
                    hi = rec(n1, ckey)
            if use_ite:
                self._watchdog_tick = tick
                self.op_count += ops
                ops = 0
                r = ite(var_bdd(nv), hi, lo)
                tick = self._watchdog_tick
            elif lo == hi:
                r = lo
            else:
                if not 0 <= nv < num_vars:
                    raise BDDError(
                        f"variable level {nv} out of range 0..{num_vars - 1}"
                    )
                ukey = (nv << 54) | (lo << 27) | hi
                r = unique_get(ukey)
                if r is None:
                    r = len(var)
                    if r > _MASK:
                        raise BDDError(f"packed backend arena exceeds {_MASK} nodes")
                    var.append(nv)
                    low.append(lo)
                    high.append(hi)
                    unique[ukey] = r
                    tick += 1
                    if tick >= stride:
                        tick = 0
                        self._watchdog_tick = 0
                        self.op_count += ops
                        ops = 0
                        self._mk_service()
            cache[key] = r
            return r

        def entry(u: int) -> int:
            nonlocal ops, tick
            if u < 2:
                return u
            key = tag | u
            r = cache_get(key)
            if r is not None:
                return r
            ops = 0
            tick = self._watchdog_tick
            try:
                return rec(u, key)
            finally:
                self.op_count += ops
                self._watchdog_tick = tick
                n = len(var)
                if n > self.peak_nodes:
                    self.peak_nodes = n

        return entry

    def _replace_loop(self, u: int, mid: int, mapping: Dict[int, int], use_ite: bool) -> int:
        var = self._var
        low = self._low
        high = self._high
        cache = self._op_cache
        cache_get = cache.get
        mk = self.mk
        get_nv = mapping.get
        tag = _TAG_REPLACE | (mid << _SHIFT)
        tasks: List[int] = [u]
        push = tasks.append
        pop = tasks.pop
        results: List[int] = []
        rpush = results.append
        rpop = results.pop
        ops = 0
        try:
            while tasks:
                n = pop()
                if n >= 0:
                    if n < 2:
                        rpush(n)
                        continue
                    key = tag | n
                    r = cache_get(key)
                    if r is not None:
                        rpush(r)
                        continue
                    ops += 1
                    v = var[n]
                    push(key)
                    push(-3 - get_nv(v, v))
                    push(high[n])
                    push(low[n])
                elif n == _CONST:
                    rpush(pop())
                else:
                    nv = -3 - n
                    key = pop()
                    hi = rpop()
                    lo = rpop()
                    if use_ite:
                        r = self.ite(self.var_bdd(nv), hi, lo)
                    else:
                        r = mk(nv, lo, hi)
                    cache[key] = r
                    rpush(r)
        finally:
            self.op_count += ops
        return results[0]

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------

    def cache_entries(self) -> int:
        return len(self._op_cache) + len(self._satcount_cache)

    def clear_caches(self) -> None:
        entries = self.cache_entries()
        if entries > self.peak_cache_entries:
            self.peak_cache_entries = entries
        self._op_cache.clear()
        self._satcount_cache.clear()
