"""Finite domains over BDD variables (BuDDy ``fdd``-style).

A :class:`Domain` maps a finite set ``{0, ..., size-1}`` onto a block of
BDD variable levels.  Relations over tuples of domain values are boolean
functions over the union of the attribute domains' levels (Section 2.4.2).

Two constructions here are central to the paper:

* :meth:`Domain.range_bdd` — the "new primitive that creates a BDD
  representation of contiguous ranges of numbers in O(k) operations, where
  k is the number of bits" (Section 4.1).  It is the conjunction of a BDD
  for numbers below the upper bound and one for numbers above the lower
  bound.
* :func:`offset_relation` — the relation ``{(x, x + delta)}``, used to
  compute callee contexts "simply by adding a constant to the contexts of
  the callers" (Section 4.1).  It is built bottom-up from the least
  significant bit with a two-state carry automaton, so its size is linear
  in the number of bits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .api import BDDError, BddKernel, FALSE, TRUE

__all__ = ["Domain", "bits_for", "equality_relation", "offset_relation"]


def bits_for(size: int) -> int:
    """Number of bits needed to represent values ``0..size-1``."""
    if size <= 0:
        raise BDDError(f"domain size must be positive, got {size}")
    return max(1, (size - 1).bit_length())


class Domain:
    """A finite domain bound to a block of BDD levels.

    Parameters
    ----------
    manager:
        The owning BDD manager.
    name:
        Diagnostic name (e.g. ``"V0"`` for the first physical instance of
        the logical variable domain ``V``).
    size:
        Number of elements; values are ``0..size-1``.
    levels:
        The BDD levels for this domain's bits, most-significant first.
        Must contain exactly ``bits_for(size)`` entries.
    """

    def __init__(self, manager: BddKernel, name: str, size: int, levels: Sequence[int]) -> None:
        expected = bits_for(size)
        if len(levels) != expected:
            raise BDDError(
                f"domain {name}: size {size} needs {expected} bits, got {len(levels)}"
            )
        self.manager = manager
        self.name = name
        self.size = size
        self.levels: Tuple[int, ...] = tuple(levels)  # MSB first
        self.bits = expected
        self._varset_id: Optional[int] = None
        # The O(bits) bottom-up constructions (leq/geq/range) build nodes
        # from the least significant bit upward with raw ``mk`` calls, which
        # is only valid if a domain's own bits respect the global order:
        # more significant bit <=> smaller level.  Interleaving *between*
        # domains is unrestricted.
        if list(self.levels) != sorted(self.levels):
            raise BDDError(
                f"domain {name}: levels must be strictly increasing MSB-first"
            )

    # ------------------------------------------------------------------

    def varset(self) -> int:
        """Interned varset id for quantifying this domain away."""
        if self._varset_id is None:
            self._varset_id = self.manager.varset(self.levels)
        return self._varset_id

    def eq_const(self, value: int) -> int:
        """BDD cube for ``x == value``."""
        if not 0 <= value < self.size:
            raise BDDError(f"value {value} out of domain {self.name} (size {self.size})")
        literals = []
        for i, level in enumerate(self.levels):
            bit = (value >> (self.bits - 1 - i)) & 1
            literals.append((level, bool(bit)))
        return self.manager.cube(literals)

    def decode(self, bits: Sequence[int]) -> int:
        """Integer value from a bit tuple ordered like ``self.levels``."""
        value = 0
        for b in bits:
            value = (value << 1) | b
        return value

    # ------------------------------------------------------------------
    # The paper's contiguous-range primitive (Section 4.1)
    # ------------------------------------------------------------------

    def leq_const(self, bound: int) -> int:
        """BDD for ``x <= bound`` in O(bits) nodes."""
        if bound < 0:
            return FALSE
        if bound >= self.size - 1 and bound >= (1 << self.bits) - 1:
            return TRUE
        m = self.manager
        # Build from the least significant bit upward.
        result = TRUE
        for i in range(self.bits - 1, -1, -1):
            level = self.levels[i]
            bit = (bound >> (self.bits - 1 - i)) & 1
            if bit:
                # x_i == 0 -> anything below is fine; x_i == 1 -> recurse.
                result = m.mk(level, TRUE, result)
            else:
                # x_i == 1 -> too big; x_i == 0 -> recurse.
                result = m.mk(level, result, FALSE)
        return result

    def geq_const(self, bound: int) -> int:
        """BDD for ``x >= bound`` in O(bits) nodes."""
        if bound <= 0:
            return TRUE
        if bound >= (1 << self.bits):
            return FALSE
        m = self.manager
        result = TRUE
        for i in range(self.bits - 1, -1, -1):
            level = self.levels[i]
            bit = (bound >> (self.bits - 1 - i)) & 1
            if bit:
                result = m.mk(level, FALSE, result)
            else:
                result = m.mk(level, result, TRUE)
        return result

    def range_bdd(self, lo: int, hi: int) -> int:
        """BDD for ``lo <= x <= hi`` (inclusive), O(bits) construction."""
        if lo > hi:
            return FALSE
        return self.manager.and_(self.geq_const(lo), self.leq_const(hi))

    def full_bdd(self) -> int:
        """BDD for ``x < size`` — the valid-value constraint."""
        return self.leq_const(self.size - 1)

    # ------------------------------------------------------------------

    def replace_map_to(self, other: "Domain") -> int:
        """Interned rename map moving this domain's bits onto ``other``'s."""
        if other.bits < self.bits:
            raise BDDError(
                f"cannot rename {self.name} ({self.bits} bits) onto "
                f"{other.name} ({other.bits} bits)"
            )
        # Align least-significant bits; if the target is wider, the extra
        # high bits are simply absent (value-preserving for in-range values).
        mapping = {}
        for i in range(self.bits):
            src = self.levels[self.bits - 1 - i]
            dst = other.levels[other.bits - 1 - i]
            if src != dst:
                mapping[src] = dst
        return self.manager.replace_map(mapping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Domain {self.name} size={self.size} bits={self.bits}>"


def equality_relation(a: Domain, b: Domain) -> int:
    """BDD for ``x_a == x_b`` over two domains of the same manager.

    Used for built-in ``=``/``!=`` predicates and for copying tuples between
    physical domains when a plain rename is not applicable.
    """
    if a.manager is not b.manager:
        raise BDDError("equality_relation requires domains of the same manager")
    m = a.manager
    bits = min(a.bits, b.bits)
    result = TRUE
    # Conjoin per-bit biconditionals from least significant upward so that
    # (with interleaved orders) the intermediate BDDs stay linear.
    for i in range(bits):
        la = a.levels[a.bits - 1 - i]
        lb = b.levels[b.bits - 1 - i]
        both0 = m.and_(m.nvar_bdd(la), m.nvar_bdd(lb))
        both1 = m.and_(m.var_bdd(la), m.var_bdd(lb))
        result = m.and_(result, m.or_(both0, both1))
    # Any extra high bits of the wider domain must be zero for equality of
    # values to be well-defined.
    for dom, other_bits in ((a, b.bits), (b, a.bits)):
        for i in range(other_bits, dom.bits):
            result = m.and_(result, m.nvar_bdd(dom.levels[dom.bits - 1 - i]))
    return result


def offset_relation(src: Domain, dst: Domain, delta: int, lo: int, hi: int) -> int:
    """BDD for ``{(x, y) | y = x + delta, lo <= x <= hi}``.

    The construction follows the paper's Section 4.1: the relation is the
    conjunction of (a) an adder-with-constant automaton built bottom-up from
    the least significant bit with a carry in {0, 1}, giving a BDD linear in
    the number of bits, and (b) the contiguous-range BDD for ``x``.

    ``delta`` may be negative (used only in tests; the numbering scheme of
    Algorithm 4 only ever adds non-negative offsets).
    """
    if src.manager is not dst.manager:
        raise BDDError("offset_relation requires domains of the same manager")
    if lo > hi:
        return FALSE
    m = src.manager
    # Run the carry automaton over enough bit positions to cover both
    # domains *and* the delta itself, plus one slot so a final carry out of
    # the top real bit is observed (and rejected) rather than lost.
    bits = max(src.bits, dst.bits, abs(delta).bit_length()) + 1
    width = 1 << bits
    if delta >= 0:
        dval = delta
        want_carry = 0
    else:
        dval = delta + width
        if dval < 0:
            return FALSE
        want_carry = 1

    def src_level(i: int) -> Optional[int]:
        """Level of src bit i (i = 0 is LSB); None if beyond src width."""
        if i < src.bits:
            return src.levels[src.bits - 1 - i]
        return None

    def dst_level(i: int) -> Optional[int]:
        if i < dst.bits:
            return dst.levels[dst.bits - 1 - i]
        return None

    # g[c] = BDD over bits 0..i-1 such that the low i bits of y equal the
    # low i bits of (x + dval) and the carry out of bit i-1 is c.
    g = {0: TRUE, 1: FALSE}
    for i in range(bits):
        d_bit = (dval >> i) & 1
        sl = src_level(i)
        dl = dst_level(i)
        new_g = {0: FALSE, 1: FALSE}
        for x_bit in (0, 1):
            if sl is None and x_bit == 1:
                continue  # x bit beyond src width is implicitly 0
            for c_in in (0, 1):
                if g[c_in] == FALSE:
                    continue
                total = x_bit + d_bit + c_in
                y_bit = total & 1
                c_out = total >> 1
                if dl is None and y_bit == 1:
                    continue  # y bit beyond dst width must be 0
                term = g[c_in]
                if sl is not None:
                    lit = m.var_bdd(sl) if x_bit else m.nvar_bdd(sl)
                    term = m.and_(term, lit)
                if dl is not None:
                    lit = m.var_bdd(dl) if y_bit else m.nvar_bdd(dl)
                    term = m.and_(term, lit)
                new_g[c_out] = m.or_(new_g[c_out], term)
        g = new_g
    adder = g[want_carry]
    return m.and_(adder, src.range_bdd(lo, hi))
