"""From-scratch BDD package: kernel, finite domains, variable ordering.

This is the substrate that replaces JavaBDD/BuDDy in the reproduction of
Whaley & Lam (PLDI 2004).  See :mod:`repro.bdd.manager` for the node-level
API, :mod:`repro.bdd.domain` for finite domains (including the paper's
contiguous-range and add-constant primitives), and
:mod:`repro.bdd.ordering` for order specs and the empirical order search.
"""

from .manager import BDD, BDDError, FALSE, TRUE
from .domain import Domain, bits_for, equality_relation, offset_relation
from .ordering import assign_levels, candidate_orders, parse_order, search_order
from .reorder import count_nodes_under_order, rebuild_with_levels, sift_order
from .serialize import load_bdd, save_bdd

__all__ = [
    "BDD",
    "BDDError",
    "FALSE",
    "TRUE",
    "Domain",
    "bits_for",
    "equality_relation",
    "offset_relation",
    "assign_levels",
    "candidate_orders",
    "count_nodes_under_order",
    "load_bdd",
    "parse_order",
    "rebuild_with_levels",
    "save_bdd",
    "search_order",
    "sift_order",
]
