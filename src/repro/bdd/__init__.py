"""From-scratch BDD package: kernel API, backends, domains, ordering.

This is the substrate that replaces JavaBDD/BuDDy in the reproduction of
Whaley & Lam (PLDI 2004).  The node-level surface is the narrow
:class:`repro.bdd.api.BddKernel` interface with pluggable backends
(``reference`` — the recursive original, ``packed`` — packed-int cache
keys and iterative hot loops); construct kernels with
:func:`repro.bdd.api.create_kernel` or the ``--backend`` /
``REPRO_BDD_BACKEND`` plumbing documented in ``docs/kernel.md``.  See
:mod:`repro.bdd.domain` for finite domains (including the paper's
contiguous-range and add-constant primitives) and
:mod:`repro.bdd.ordering` for order specs and the empirical order search.

``repro.bdd.BDD`` resolves lazily (PEP 562) to the kernel class selected
by ``REPRO_BDD_BACKEND``, so the whole test suite — and any legacy call
site — can be pointed at a different backend without code changes.
"""

from .api import (
    BDDError,
    BddKernel,
    FALSE,
    TRUE,
    available_backends,
    create_kernel,
    get_backend_class,
    register_backend,
    resolve_backend_name,
)
from .domain import Domain, bits_for, equality_relation, offset_relation
from .ordering import assign_levels, candidate_orders, parse_order, search_order
from .reorder import count_nodes_under_order, rebuild_with_levels, sift_order
from .serialize import load_bdd, save_bdd

__all__ = [
    "BDD",
    "BDDError",
    "BddKernel",
    "FALSE",
    "TRUE",
    "available_backends",
    "create_kernel",
    "get_backend_class",
    "register_backend",
    "resolve_backend_name",
    "Domain",
    "bits_for",
    "equality_relation",
    "offset_relation",
    "assign_levels",
    "candidate_orders",
    "count_nodes_under_order",
    "load_bdd",
    "parse_order",
    "rebuild_with_levels",
    "save_bdd",
    "search_order",
    "sift_order",
]


def __getattr__(name: str):
    # ``BDD`` is intentionally not bound at import time: it resolves to
    # the environment-selected backend class on each fresh lookup.
    if name == "BDD":
        return get_backend_class(None)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
