"""Dynamic variable reordering by sifting (Rudell's algorithm).

The paper relies on *static* order search (bddbddb's FindBestOrder tries
candidate orders empirically); production BDD packages like BuDDy and CUDD
additionally offer dynamic reordering.  This module provides both styles
on top of :class:`repro.bdd.manager.BDD`:

* :func:`sift_order` — given the functions you care about, tentatively
  move each domain block through every position, keep the best, and
  return the improved level assignment,
* :func:`rebuild_with_levels` — transfer a set of BDD nodes into a fresh
  manager under a new level assignment.

Because the kernel identifies variables with levels (no indirection
table), reordering is implemented as *rebuild under a permutation* rather
than in-place swaps: simpler, obviously correct, and fast enough for the
order-search use case, where it runs once per candidate rather than per
operation.  Blocks (the bits of one finite domain) move as units, which
preserves the Domain invariant that a domain's bits stay MSB-first.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .api import BDDError, BddKernel, FALSE, TRUE, create_kernel

__all__ = ["rebuild_with_levels", "count_nodes_under_order", "sift_order"]


def rebuild_with_levels(
    src: BddKernel,
    roots: Sequence[int],
    level_map: Dict[int, int],
    dst: BddKernel,
) -> List[int]:
    """Copy ``roots`` from ``src`` into ``dst`` with levels remapped.

    ``level_map`` must be a total injective mapping over the levels
    appearing in the roots' support.  The rebuild uses ``ite`` in the
    destination manager, so arbitrary (order-inverting) permutations are
    handled correctly.
    """
    cache: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}

    def copy(node: int) -> int:
        cached = cache.get(node)
        if cached is not None:
            return cached
        var = src.var_of(node)
        new_var = level_map.get(var)
        if new_var is None:
            raise BDDError(f"level {var} missing from level_map")
        low = copy(src.low(node))
        high = copy(src.high(node))
        result = dst.ite(dst.var_bdd(new_var), high, low)
        cache[node] = result
        return result

    out = [copy(r) for r in roots]
    # The rebuild leaves the destination's operation caches full of
    # permutation-specific ite entries that will never hit again; drop
    # them so a reorder cannot silently double the manager's footprint.
    dst.clear_caches()
    return out


def count_nodes_under_order(
    src: BddKernel,
    roots: Sequence[int],
    block_order: Sequence[str],
    blocks: Dict[str, Sequence[int]],
) -> int:
    """Shared node count of ``roots`` when blocks are laid out in
    ``block_order`` (each block's internal bit order preserved)."""
    level_map: Dict[int, int] = {}
    next_level = 0
    for name in block_order:
        for level in blocks[name]:
            level_map[level] = next_level
            next_level += 1
    total_vars = max(src.num_vars, next_level)
    # The scratch arena uses the same backend as the source kernel, so
    # order-search node counts reflect the backend actually in use.
    dst = create_kernel(num_vars=total_vars, backend=src.backend_name)
    new_roots = rebuild_with_levels(src, roots, level_map, dst)
    # Count shared nodes across all roots.
    seen = set()
    stack = list(new_roots)
    while stack:
        n = stack.pop()
        if n < 2 or n in seen:
            continue
        seen.add(n)
        stack.append(dst.low(n))
        stack.append(dst.high(n))
    return len(seen) + 2


def sift_order(
    src: BddKernel,
    roots: Sequence[int],
    blocks: Dict[str, Sequence[int]],
    initial_order: Sequence[str],
    max_rounds: int = 2,
) -> Tuple[List[str], int]:
    """Sift whole domain blocks to minimize shared node count.

    Classic sifting, at block granularity: pick each block in turn, try it
    at every position in the order (keeping other blocks fixed), and leave
    it at the position giving the fewest nodes.  Repeat for up to
    ``max_rounds`` rounds or until a round makes no improvement.

    Returns ``(best_order, best_node_count)``.
    """
    order = list(initial_order)
    if sorted(order) != sorted(blocks):
        raise BDDError("initial_order must mention every block exactly once")
    best_count = count_nodes_under_order(src, roots, order, blocks)
    for _ in range(max_rounds):
        improved = False
        for name in list(order):
            base = [b for b in order if b != name]
            best_pos = order.index(name)
            for pos in range(len(order)):
                candidate = base[:pos] + [name] + base[pos:]
                count = count_nodes_under_order(src, roots, candidate, blocks)
                if count < best_count:
                    best_count = count
                    best_pos = pos
                    improved = True
            order = base[:best_pos] + [name] + base[best_pos:]
        if not improved:
            break
    return order, best_count
