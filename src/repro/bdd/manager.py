"""Backward-compatibility shim for the pre-kernel-split module layout.

The BDD implementation that used to live here is now behind the narrow
:class:`repro.bdd.api.BddKernel` interface: the recursive original moved
to ``repro.bdd.backends.reference`` and an optimized packed/iterative
variant lives in ``repro.bdd.backends.packed``.  New code should call
:func:`repro.bdd.api.create_kernel` (or ``repro.bdd.BDD``, which resolves
through the same factory) instead of importing this module.

``BDD`` here resolves lazily to the backend selected by the
``REPRO_BDD_BACKEND`` environment variable (default ``reference``), so
legacy ``from repro.bdd.manager import BDD`` call sites keep working and
honor backend selection.
"""

from __future__ import annotations

from .api import BDDError, FALSE, TRUE, create_kernel, get_backend_class

__all__ = ["BDD", "FALSE", "TRUE", "BDDError", "create_kernel"]


def __getattr__(name: str):
    if name == "BDD":
        return get_backend_class(None)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
