"""The narrow BDD kernel API: :class:`BddKernel` plus the backend registry.

The paper's relational layer (Section 2.4.2) treats the BDD package as a
substrate hidden behind a stable relational API — bddbddb swaps physical
domain layouts and variable orders freely precisely because no consumer
reaches into the kernel's node tables.  This module is that seam for the
reproduction:

* :class:`BddKernel` — the documented abstract interface every backend
  implements.  The datalog solver, relations, serializer, checkpointing,
  reorder search, and the serve engine talk **only** to this surface
  (enforced by ``tests/bdd/test_api_boundary.py``).
* a **backend registry** — named factories resolved lazily by module
  path, so importing :mod:`repro.bdd` never pays for backends it does
  not use and no module outside ``repro/bdd/backends/`` ever imports a
  backend's internals.
* :func:`create_kernel` — the factory every consumer calls.  Backend
  selection order: explicit ``backend=`` argument, then the
  ``REPRO_BDD_BACKEND`` environment variable, then ``"reference"``.

Built-in backends
-----------------

``reference``
    The original recursive implementation with per-operation dict caches
    (tuple keys).  Simple, obviously correct, and the semantics oracle
    for the differential harness.
``packed``
    The optimized backend: packed-integer cache keys (no tuple
    allocation on the hot path), one unified operation cache with
    clear-on-overflow, and iterative (explicit-stack) ``apply`` /
    ``exist`` / ``rel_prod`` / ``not_`` / ``ite`` / ``replace`` so deep
    diagrams cannot hit ``RecursionError``.
``arena``
    The vectorized backend: the packed flat-arena node representation
    plus native implementations of the fused superops (a single-pass
    ``rel_prod_replace`` that renames while the join result is built)
    and a level-synchronized frontier ``apply`` for wide arenas.

All backends build *identical* reduced ordered BDDs for the same
variable order, so serialized artifacts (``.ptdb`` databases,
checkpoints) are bit-identical regardless of which backend produced
them — see ``repro/bench/differential.py``.
"""

from __future__ import annotations

import importlib
import os
import sys
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "BDDError",
    "BddKernel",
    "DEFAULT_BACKEND",
    "FALSE",
    "TRUE",
    "available_backends",
    "backend_env_var",
    "create_kernel",
    "get_backend_class",
    "register_backend",
    "resolve_backend_name",
]

FALSE = 0
TRUE = 1

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BDD_BACKEND"

DEFAULT_BACKEND = "reference"


class BDDError(Exception):
    """Raised on structurally invalid BDD operations."""


def backend_env_var() -> str:
    """Name of the environment variable selecting the default backend."""
    return BACKEND_ENV_VAR


class BddKernel(ABC):
    """The kernel contract: a shared, reduced, ordered BDD node arena.

    Nodes are integer handles; handle ``0`` is the ``FALSE`` terminal and
    ``1`` is ``TRUE``.  Variables are identified directly by their
    *level* (smaller level = closer to the root); reordering is performed
    by rebuilding under a new level assignment (:mod:`repro.bdd.reorder`).

    Implementations must be *canonical*: structurally equal functions
    under the same variable order share one handle, and two backends
    given the same operation sequence produce structurally identical
    diagrams (handles may differ; serialized forms may not).

    Statistics attributes every backend maintains:

    ``num_vars``            number of variable levels
    ``peak_nodes``          high-water arena size (including terminals)
    ``op_count``            cache-missing operation expansions
    ``gc_count``            completed :meth:`collect_garbage` runs
    ``cache_limit``         soft cap on operation-cache entries (or None)
    ``cache_clears``        clear-on-overflow events
    ``peak_cache_entries``  high-water operation-cache entry count
    ``backend_name``        registry name of the backend (class attribute)
    ``op_tallies``          per-kind count of *top-level* relational op
                            calls (``and_``, ``exist``, ``replace``, ...)
                            — maintained automatically by the ABC (see
                            ``__init_subclass__``), cumulative over the
                            kernel's lifetime, never reset by GC or cache
                            clears.  The plan executor's per-op counters
                            (``SolveStats.plan_ops``) sit one layer above
                            this: a single plan op maps to one tally here.
    """

    #: Registry name; concrete backends override this.
    backend_name: str = "abstract"

    num_vars: int
    peak_nodes: int
    op_count: int
    gc_count: int
    cache_limit: Optional[int]
    cache_clears: int
    peak_cache_entries: int

    #: Reentrancy latch for the tally wrappers: recursive self-calls
    #: (e.g. ``not_`` descending a diagram, ``ite`` negating a branch)
    #: must not inflate the counts — only kernel *entry* calls tally.
    _in_tallied_op: bool = False

    #: Public relational operations whose entry calls are tallied.
    _TALLIED_OPS: Tuple[str, ...] = (
        "and_",
        "or_",
        "diff",
        "xor",
        "not_",
        "ite",
        "exist",
        "forall",
        "rel_prod",
        "replace",
        "rel_prod_replace",
    )

    def __init_subclass__(cls, **kwargs) -> None:
        """Wrap every concrete tallied op so each top-level invocation
        increments ``self.op_tallies[name]``.  Applying the wrapper here
        means any registered backend — including third-party ones — gets
        the counters without instrumenting its own methods."""
        super().__init_subclass__(**kwargs)
        for name in cls._TALLIED_OPS:
            fn = cls.__dict__.get(name)
            if fn is None or getattr(fn, "_tallied", False):
                continue
            setattr(cls, name, _tally_wrap(name, fn))

    @property
    def op_tallies(self) -> Dict[str, int]:
        tallies = self.__dict__.get("_op_tallies")
        if tallies is None:
            tallies = self.__dict__["_op_tallies"] = {}
        return tallies

    # ------------------------------------------------------------------
    # Node primitives
    # ------------------------------------------------------------------

    @abstractmethod
    def add_vars(self, count: int) -> int:
        """Grow the variable universe by ``count`` levels; return new total."""

    @abstractmethod
    def var_of(self, u: int) -> int:
        """Level of the root variable of ``u`` (sentinel for terminals)."""

    @abstractmethod
    def low(self, u: int) -> int:
        """Low (else) child of ``u``."""

    @abstractmethod
    def high(self, u: int) -> int:
        """High (then) child of ``u``."""

    @abstractmethod
    def node_count(self) -> int:
        """Number of allocated nodes, including the two terminals."""

    @abstractmethod
    def is_terminal(self, u: int) -> bool:
        """True for the ``FALSE``/``TRUE`` handles."""

    @abstractmethod
    def mk(self, var: int, low: int, high: int) -> int:
        """Return the (reduced, hash-consed) node ``(var, low, high)``."""

    @abstractmethod
    def var_bdd(self, var: int) -> int:
        """BDD for the single positive literal ``var``."""

    @abstractmethod
    def nvar_bdd(self, var: int) -> int:
        """BDD for the single negative literal ``var``."""

    @abstractmethod
    def cube(self, literals: Iterable[Tuple[int, bool]]) -> int:
        """Conjunction of literals given as ``(level, positive)`` pairs."""

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------

    @abstractmethod
    def and_(self, a: int, b: int) -> int:
        """Conjunction."""

    @abstractmethod
    def or_(self, a: int, b: int) -> int:
        """Disjunction."""

    @abstractmethod
    def diff(self, a: int, b: int) -> int:
        """``a AND NOT b`` — the relational difference."""

    @abstractmethod
    def xor(self, a: int, b: int) -> int:
        """Exclusive or."""

    @abstractmethod
    def not_(self, a: int) -> int:
        """Negation."""

    @abstractmethod
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)``, order-correct."""

    @abstractmethod
    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of many nodes (short-circuits on ``FALSE``)."""

    @abstractmethod
    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of many nodes (short-circuits on ``TRUE``)."""

    @abstractmethod
    def implies(self, a: int, b: int) -> int:
        """``a -> b`` as a BDD (used by query post-processing)."""

    @abstractmethod
    def iff(self, a: int, b: int) -> int:
        """``a <-> b`` — the complement of XOR."""

    # ------------------------------------------------------------------
    # Quantification, relational product, renaming
    # ------------------------------------------------------------------

    @abstractmethod
    def varset(self, levels: Iterable[int]) -> int:
        """Intern a set of levels for quantification; returns a varset id."""

    @abstractmethod
    def varset_levels(self, varset_id: int) -> frozenset:
        """The levels behind an interned varset id."""

    @abstractmethod
    def exist(self, u: int, varset_id: int) -> int:
        """Existentially quantify the varset's levels out of ``u``."""

    @abstractmethod
    def forall(self, u: int, varset_id: int) -> int:
        """Universal quantification: dual of :meth:`exist`."""

    @abstractmethod
    def rel_prod(self, a: int, b: int, varset_id: int) -> int:
        """``exist(varset, a AND b)`` fused into one pass — the workhorse
        of Datalog rule application (Section 2.4.2)."""

    @abstractmethod
    def replace_map(self, mapping: Dict[int, int]) -> int:
        """Intern an injective level-renaming map; returns a map id."""

    @abstractmethod
    def replace(self, u: int, map_id: int) -> int:
        """Rename variables of ``u`` according to an interned mapping."""

    def rel_prod_replace(
        self, a: int, b: int, varset_id: int, map_id: int
    ) -> int:
        """``replace(rel_prod(a, b, varset), map)`` as one kernel call —
        the fused superop the plan optimizer emits for a rename whose
        sole input is a join.  The default composes the two primitives;
        backends may override with a single-pass implementation."""
        return self.replace(self.rel_prod(a, b, varset_id), map_id)

    # ------------------------------------------------------------------
    # Counting, enumeration, cofactoring
    # ------------------------------------------------------------------

    @abstractmethod
    def support(self, u: int) -> frozenset:
        """Set of levels appearing in ``u``."""

    @abstractmethod
    def sat_count(self, u: int, levels: Sequence[int]) -> int:
        """Exact number of satisfying assignments over ``levels``
        (a superset of the support of ``u``)."""

    @abstractmethod
    def iter_assignments(self, u: int, levels: Sequence[int]) -> Iterator[Tuple[int, ...]]:
        """Yield all satisfying assignments as bit tuples over ``levels``."""

    @abstractmethod
    def restrict(self, u: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``u`` by fixing the given levels to constants."""

    # ------------------------------------------------------------------
    # Memory management and instrumentation
    # ------------------------------------------------------------------

    @abstractmethod
    def collect_garbage(self, roots: Iterable[int]) -> Dict[int, int]:
        """Mark-and-sweep keeping nodes reachable from ``roots``; returns
        an old-handle -> new-handle mapping every held handle must be
        remapped through.  All operation caches are invalidated."""

    @abstractmethod
    def cache_entries(self) -> int:
        """Total entries across the operation caches (memory pressure)."""

    @abstractmethod
    def clear_caches(self) -> None:
        """Drop operation caches (overflow, GC, reorder, benchmarks)."""

    @abstractmethod
    def set_watchdog(self, callback: Callable[[], None], stride: int = 2048) -> None:
        """Install a cooperative check run every ``stride`` new nodes.
        The callback may raise to abort the in-flight operation; the
        arena stays structurally consistent."""

    @abstractmethod
    def clear_watchdog(self) -> None:
        """Remove the cooperative watchdog."""

    # ------------------------------------------------------------------
    # Serialization hooks and debugging
    # ------------------------------------------------------------------
    # var_of/low/high/mk *are* the serialize hooks: dump walks the first
    # three, load replays through mk, so any conforming backend round-trips
    # through repro.bdd.serialize unchanged (same canonical bytes).

    @abstractmethod
    def to_dot(self, u: int, name: str = "bdd") -> str:
        """Graphviz rendering of the BDD rooted at ``u`` (debugging)."""

    def stats(self) -> Dict[str, int]:
        """Snapshot of the kernel counters (provenance records)."""
        return {
            "backend": self.backend_name,
            "num_vars": self.num_vars,
            "nodes": self.node_count(),
            "peak_nodes": self.peak_nodes,
            "op_count": self.op_count,
            "gc_count": self.gc_count,
            "cache_entries": self.cache_entries(),
            "peak_cache_entries": self.peak_cache_entries,
            "cache_clears": self.cache_clears,
            "op_tallies": dict(self.op_tallies),
        }


def _tally_wrap(name: str, fn):
    """Count top-level calls to a kernel op (see ``_TALLIED_OPS``)."""

    def wrapped(self, *args, **kwargs):
        if self._in_tallied_op:
            return fn(self, *args, **kwargs)
        tallies = self.op_tallies
        tallies[name] = tallies.get(name, 0) + 1
        self._in_tallied_op = True
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._in_tallied_op = False

    wrapped._tallied = True
    wrapped.__name__ = fn.__name__
    wrapped.__doc__ = fn.__doc__
    wrapped.__qualname__ = getattr(fn, "__qualname__", fn.__name__)
    return wrapped


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

# name -> "module.path:ClassName" (resolved lazily) or an already-loaded
# kernel class (registered programmatically, e.g. by tests).
_REGISTRY: Dict[str, object] = {
    "reference": "repro.bdd.backends.reference:ReferenceBDD",
    "packed": "repro.bdd.backends.packed:PackedBDD",
    "arena": "repro.bdd.backends.arena:ArenaBDD",
}


def register_backend(name: str, target) -> None:
    """Register a backend under ``name``.

    ``target`` is either a :class:`BddKernel` subclass or a lazy
    ``"module.path:ClassName"`` string.  Re-registering a name replaces
    the previous entry (tests use this to inject instrumented kernels).
    """
    if not name or not isinstance(name, str):
        raise BDDError(f"backend name must be a non-empty string, got {name!r}")
    if not isinstance(target, str):
        if not (isinstance(target, type) and issubclass(target, BddKernel)):
            raise BDDError(
                f"backend {name!r} must be a BddKernel subclass or a "
                f"'module:Class' string, got {target!r}"
            )
    _REGISTRY[name] = target


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def resolve_backend_name(backend: Optional[str] = None) -> str:
    """The backend name an explicit/env/default selection resolves to.

    ``backend=None`` falls back to ``$REPRO_BDD_BACKEND``, then to
    ``"reference"``.  Unknown names raise :class:`BDDError` listing the
    registered alternatives (typo-proofing for CLI/env selection).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if backend not in _REGISTRY:
        raise BDDError(
            f"unknown BDD backend {backend!r} "
            f"(available: {', '.join(available_backends())})"
        )
    return backend


def get_backend_class(backend: Optional[str] = None):
    """The kernel class for ``backend`` (resolved like
    :func:`resolve_backend_name`), importing it on first use."""
    name = resolve_backend_name(backend)
    target = _REGISTRY[name]
    if isinstance(target, str):
        module_path, _, attr = target.partition(":")
        module = importlib.import_module(module_path)
        target = getattr(module, attr)
        _REGISTRY[name] = target
    return target


def create_kernel(
    num_vars: int = 0,
    cache_limit: Optional[int] = 2_000_000,
    backend: Optional[str] = None,
) -> "BddKernel":
    """Build a kernel instance — the factory every consumer goes through.

    Selection order: the ``backend`` argument, then the
    ``REPRO_BDD_BACKEND`` environment variable, then ``"reference"``.
    """
    cls = get_backend_class(backend)
    return cls(num_vars=num_vars, cache_limit=cache_limit)
