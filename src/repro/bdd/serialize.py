"""Saving and loading BDDs (BuDDy's ``bdd_save``/``bdd_load`` analogue).

The format is a line-oriented text file::

    # repro-bdd 1
    vars 24
    roots 2
    node 2 5 0 1      # id level low high (ids start at 2; 0/1 terminals)
    node 3 4 2 1
    root 3
    root 2

Node ids are file-local; :func:`save_bdd` renumbers them canonically (2,
3, ... in emission order), so two structurally identical BDDs saved under
the same variable order produce byte-identical files — the property the
checkpoint/resume machinery relies on.  Loading rebuilds through the
target manager's unique table, so structure sharing (also *across*
separately saved files loaded into one manager) is preserved.

Loading is defensive: bad magic, malformed records, dangling node
references, out-of-range levels, duplicate ids, and truncated files (the
``roots`` header promises more roots than the file delivers) all raise
:class:`BDDError` with the file name and line number.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .api import BDDError, BddKernel, FALSE, TRUE

__all__ = ["save_bdd", "load_bdd", "dump_bdd_lines", "parse_bdd_lines"]

PathLike = Union[str, pathlib.Path]

_MAGIC = "# repro-bdd 1"


def dump_bdd_lines(manager: BddKernel, roots: Sequence[int]) -> Tuple[List[str], int]:
    """Serialize the BDDs rooted at ``roots`` to text lines.

    Returns ``(lines, node_count)``.  Node ids are canonical (assigned in
    post-order emission sequence starting at 2), so the output depends
    only on the BDD *structure*, never on manager handle values.  Shared
    subgraphs are written once.
    """
    order: List[int] = []
    seen = {FALSE, TRUE}
    # Post-order so children precede parents in the file.
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            if expanded:
                seen.add(node)
                order.append(node)
                continue
            stack.append((node, True))
            stack.append((manager.high(node), False))
            stack.append((manager.low(node), False))
    canon: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    for i, node in enumerate(order):
        canon[node] = 2 + i
    lines = [_MAGIC, f"vars {manager.num_vars}", f"roots {len(roots)}"]
    for node in order:
        lines.append(
            f"node {canon[node]} {manager.var_of(node)} "
            f"{canon[manager.low(node)]} {canon[manager.high(node)]}"
        )
    for root in roots:
        lines.append(f"root {canon[root]}")
    return lines, len(order)


def save_bdd(manager: BddKernel, roots: Sequence[int], path: PathLike) -> int:
    """Write the BDDs rooted at ``roots`` to ``path``.

    Returns the number of (non-terminal) nodes written.
    """
    lines, count = dump_bdd_lines(manager, roots)
    pathlib.Path(path).write_text("\n".join(lines) + "\n")
    return count


def parse_bdd_lines(
    manager: BddKernel,
    lines: Sequence[str],
    name: str = "<bdd>",
    first_lineno: int = 1,
) -> List[int]:
    """Rebuild saved BDDs from text lines; returns the root handles.

    ``name`` labels diagnostics; ``first_lineno`` is the file line number
    of ``lines[0]`` (checkpoints embed the payload mid-file).
    """
    if not lines or lines[0].strip() != _MAGIC:
        raise BDDError(
            f"{name}:{first_lineno}: not a repro-bdd file (bad or missing "
            f"magic line, expected {_MAGIC!r})"
        )
    mapping: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    roots: List[int] = []
    declared_vars: Optional[int] = None
    declared_roots: Optional[int] = None
    for offset, raw in enumerate(lines[1:], start=1):
        lineno = first_lineno + offset
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        try:
            fields = [int(p) for p in parts[1:]]
        except ValueError:
            raise BDDError(
                f"{name}:{lineno}: non-integer field in {kind!r} record"
            )
        if kind == "vars":
            if len(fields) != 1:
                raise BDDError(f"{name}:{lineno}: malformed vars line")
            declared_vars = fields[0]
            if declared_vars > manager.num_vars:
                raise BDDError(
                    f"{name}:{lineno}: file uses {declared_vars} variables, "
                    f"manager has {manager.num_vars}"
                )
        elif kind == "roots":
            if len(fields) != 1 or fields[0] < 0:
                raise BDDError(f"{name}:{lineno}: malformed roots line")
            declared_roots = fields[0]
        elif kind == "node":
            if len(fields) != 4:
                raise BDDError(f"{name}:{lineno}: malformed node line")
            node_id, level, low, high = fields
            if node_id < 2:
                raise BDDError(
                    f"{name}:{lineno}: node id {node_id} collides with a "
                    f"terminal"
                )
            if node_id in mapping:
                raise BDDError(f"{name}:{lineno}: duplicate node id {node_id}")
            limit = declared_vars if declared_vars is not None else manager.num_vars
            if not 0 <= level < limit:
                raise BDDError(
                    f"{name}:{lineno}: node {node_id} has level {level} "
                    f"outside 0..{limit - 1}"
                )
            if low not in mapping or high not in mapping:
                raise BDDError(
                    f"{name}:{lineno}: node {node_id} references unknown child "
                    f"({low if low not in mapping else high})"
                )
            mapping[node_id] = manager.mk(level, mapping[low], mapping[high])
        elif kind == "root":
            if len(fields) != 1:
                raise BDDError(f"{name}:{lineno}: malformed root line")
            root_id = fields[0]
            if root_id not in mapping:
                raise BDDError(f"{name}:{lineno}: unknown root {root_id}")
            roots.append(mapping[root_id])
        else:
            raise BDDError(f"{name}:{lineno}: unknown record {kind!r}")
    if declared_vars is None:
        raise BDDError(f"{name}: truncated file: missing 'vars' header")
    if declared_roots is None:
        raise BDDError(f"{name}: truncated file: missing 'roots' header")
    if len(roots) != declared_roots:
        raise BDDError(
            f"{name}: truncated file: header promises {declared_roots} "
            f"roots, found {len(roots)}"
        )
    return roots


def load_bdd(manager: BddKernel, path: PathLike) -> List[int]:
    """Load a file written by :func:`save_bdd`; returns the root handles.

    The target manager must have at least as many variables as the saved
    one (grow it with :meth:`BDD.add_vars` first if needed).  Corrupt
    input — truncation, dangling references, bad magic — raises
    :class:`BDDError` naming the offending line.
    """
    text = pathlib.Path(path).read_text()
    return parse_bdd_lines(manager, text.splitlines(), name=str(path))
