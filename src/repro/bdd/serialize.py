"""Saving and loading BDDs (BuDDy's ``bdd_save``/``bdd_load`` analogue).

The format is a line-oriented text file::

    # repro-bdd 1
    vars 24
    roots 2
    node 2 5 0 1      # id level low high (ids start at 2; 0/1 terminals)
    node 3 4 2 1
    root 3
    root 2

Node ids are file-local; loading rebuilds through the target manager's
unique table, so structure sharing (also *across* separately saved files
loaded into one manager) is preserved.  Useful for checkpointing expensive
relations — e.g. the ``IEC`` of a large call graph — between runs.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence, Tuple, Union

from .manager import BDD, BDDError, FALSE, TRUE

__all__ = ["save_bdd", "load_bdd"]

PathLike = Union[str, pathlib.Path]

_MAGIC = "# repro-bdd 1"


def save_bdd(manager: BDD, roots: Sequence[int], path: PathLike) -> int:
    """Write the BDDs rooted at ``roots`` to ``path``.

    Returns the number of (non-terminal) nodes written.  Shared subgraphs
    are written once.
    """
    order: List[int] = []
    seen = {FALSE, TRUE}
    # Post-order so children precede parents in the file.
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in seen:
                continue
            if expanded:
                seen.add(node)
                order.append(node)
                continue
            stack.append((node, True))
            stack.append((manager.high(node), False))
            stack.append((manager.low(node), False))
    lines = [_MAGIC, f"vars {manager.num_vars}", f"roots {len(roots)}"]
    for node in order:
        lines.append(
            f"node {node} {manager.var_of(node)} "
            f"{manager.low(node)} {manager.high(node)}"
        )
    for root in roots:
        lines.append(f"root {root}")
    pathlib.Path(path).write_text("\n".join(lines) + "\n")
    return len(order)


def load_bdd(manager: BDD, path: PathLike) -> List[int]:
    """Load a file written by :func:`save_bdd`; returns the root handles.

    The target manager must have at least as many variables as the saved
    one (grow it with :meth:`BDD.add_vars` first if needed).
    """
    text = pathlib.Path(path).read_text()
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise BDDError(f"{path}: not a repro-bdd file")
    mapping: Dict[int, int] = {FALSE: FALSE, TRUE: TRUE}
    roots: List[int] = []
    declared_vars = None
    for lineno, line in enumerate(lines[1:], start=2):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "vars":
            declared_vars = int(parts[1])
            if declared_vars > manager.num_vars:
                raise BDDError(
                    f"{path}: file uses {declared_vars} variables, manager "
                    f"has {manager.num_vars}"
                )
        elif kind == "roots":
            continue
        elif kind == "node":
            if len(parts) != 5:
                raise BDDError(f"{path}:{lineno}: malformed node line")
            node_id, level, low, high = (int(p) for p in parts[1:])
            if low not in mapping or high not in mapping:
                raise BDDError(
                    f"{path}:{lineno}: node {node_id} references unknown child"
                )
            mapping[node_id] = manager.mk(level, mapping[low], mapping[high])
        elif kind == "root":
            root_id = int(parts[1])
            if root_id not in mapping:
                raise BDDError(f"{path}:{lineno}: unknown root {root_id}")
            roots.append(mapping[root_id])
        else:
            raise BDDError(f"{path}:{lineno}: unknown record {kind!r}")
    return roots
