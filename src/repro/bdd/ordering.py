"""Variable-ordering specifications and empirical order search.

bddbddb describes variable orders with strings such as::

    C0xC1_VxV1_H0xH1_F_T_I_M_N_Z

Underscore-separated *groups* are laid out sequentially (all bits of the
first group before all bits of the second), and ``x``-joined domains within
a group are *interleaved* bit-by-bit.  Interleaving related attributes
(e.g. the caller and callee context domains ``C0``/``C1``) is what lets the
BDD share structure across contexts — the paper's Section 2.4.2 example of
why ordering matters.

The paper also notes that finding the best order is NP-complete and that
bddbddb "automatically explores different alternatives empirically to find
an effective ordering"; :func:`search_order` is that tool in miniature.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from .api import BDDError

__all__ = ["parse_order", "assign_levels", "candidate_orders", "search_order"]


def parse_order(spec: str) -> List[List[str]]:
    """Parse an order spec into groups of interleaved domain names.

    >>> parse_order("C0xC1_V0_H0xH1")
    [['C0', 'C1'], ['V0'], ['H0', 'H1']]
    """
    groups: List[List[str]] = []
    for chunk in spec.split("_"):
        if not chunk:
            raise BDDError(f"empty group in order spec {spec!r}")
        groups.append(chunk.split("x"))
    return groups


def assign_levels(spec: str, domain_bits: Dict[str, int]) -> Dict[str, List[int]]:
    """Assign BDD levels to every domain bit according to an order spec.

    Parameters
    ----------
    spec:
        Order string, e.g. ``"C0xC1_V0xV1_H0xH1"``.  Every domain in
        ``domain_bits`` must appear exactly once.
    domain_bits:
        Map from domain name to its bit width.

    Returns
    -------
    Map from domain name to its levels, most-significant bit first.  Within
    every domain the levels are strictly increasing, as required by
    :class:`repro.bdd.domain.Domain`.
    """
    groups = parse_order(spec)
    mentioned = [name for group in groups for name in group]
    if sorted(mentioned) != sorted(domain_bits):
        missing = set(domain_bits) - set(mentioned)
        extra = set(mentioned) - set(domain_bits)
        raise BDDError(
            f"order spec domains do not match: missing={sorted(missing)} "
            f"extra={sorted(extra)}"
        )
    levels: Dict[str, List[int]] = {name: [] for name in domain_bits}
    next_level = 0
    for group in groups:
        # Round-robin over the group's domains, MSB first, so that bit i of
        # each domain sits adjacent to bit i of its partners.
        queues = [(name, list(range(domain_bits[name]))) for name in group]
        pending = [(name, iter(bits)) for name, bits in queues]
        active = [(name, it) for name, it in pending]
        while active:
            still = []
            for name, it in active:
                try:
                    next(it)
                except StopIteration:
                    continue
                levels[name].append(next_level)
                next_level += 1
                still.append((name, it))
            active = still
    return levels


def candidate_orders(
    domain_names: Sequence[str],
    interleave_pairs: Sequence[Tuple[str, str]] = (),
    max_candidates: int = 12,
) -> List[str]:
    """Generate a small set of plausible order specs to try empirically.

    ``interleave_pairs`` lists domains that are joined/renamed against each
    other frequently (e.g. ``("V0", "V1")``); candidates always interleave
    them.  The remaining variation is the relative order of the groups.
    """
    paired = {}
    for a, b in interleave_pairs:
        paired.setdefault(a, []).append(b)
    grouped: List[str] = []
    used = set()
    for name in domain_names:
        if name in used:
            continue
        members = [name] + [b for b in paired.get(name, []) if b not in used]
        used.update(members)
        grouped.append("x".join(members))
    candidates = []
    base = "_".join(grouped)
    candidates.append(base)
    candidates.append("_".join(reversed(grouped)))
    for perm in itertools.permutations(grouped):
        spec = "_".join(perm)
        if spec not in candidates:
            candidates.append(spec)
        if len(candidates) >= max_candidates:
            break
    return candidates


def search_order(
    run: Callable[[str], float],
    candidates: Iterable[str],
    budget_seconds: float = 60.0,
) -> Tuple[str, Dict[str, float]]:
    """Empirically pick the fastest order.

    ``run`` executes the workload under a given order spec and returns its
    cost (seconds, BDD nodes — anything comparable).  Candidates are tried
    until the time budget is exhausted; the best seen wins.  This is the
    miniature counterpart of bddbddb's FindBestOrder.
    """
    results: Dict[str, float] = {}
    best_spec = None
    best_cost = float("inf")
    deadline = time.monotonic() + budget_seconds
    for spec in candidates:
        cost = run(spec)
        results[spec] = cost
        if cost < best_cost:
            best_cost = cost
            best_spec = spec
        if time.monotonic() > deadline:
            break
    if best_spec is None:
        raise BDDError("search_order: no candidates evaluated")
    return best_spec, results
