"""Program-free fact sets: everything the solvers need, rebuilt from a
database.

The incremental recompiler starts from a ``.ptdb`` file, not from source
— the whole point is that re-extraction (and the program text itself)
is unnecessary for relation-level edits.  :class:`FactSet` is a
duck-type of :class:`~repro.ir.facts.Facts` carrying exactly the slice
the analysis drivers consume — domain maps, input relations, site
bookkeeping, entry methods, the variable-representative table — plus
the ``thread_sites`` list that replaces the type-hierarchy walk of the
escape analysis (the hierarchy does not survive into the database; the
computed sites do, via ``meta["facts"]``).

``apply_diff`` produces a *new* fact set (the baseline stays usable for
old-versus-new comparisons) together with the effective per-relation
edits, enforcing the edit semantics: adds are idempotent, removals of
absent tuples are errors (a removal that silently does nothing almost
certainly means the diff was written against the wrong baseline).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runtime.errors import InvalidInputError
from .diff import EDITABLE_RELATIONS, FactDiff, FactDiffError

__all__ = ["AppliedDiff", "FactSet"]


class _EntryStub:
    def __init__(self, qualified: str) -> None:
        self.qualified = qualified


class _ProgramStub:
    """Stands in for :class:`~repro.ir.program.Program` where the
    packager and numbering layers only need the entry name and stats."""

    def __init__(self, entry: str, stats: Dict[str, Any]) -> None:
        self.entry = _EntryStub(entry)
        self._stats = dict(stats)

    def stats(self) -> Dict[str, Any]:
        return dict(self._stats)


class AppliedDiff:
    """Effective edits of one ``apply_diff`` call.

    ``changes`` maps each touched relation to its *effective* added and
    removed ordinal-tuple lists (idempotent re-adds dropped)."""

    def __init__(
        self, changes: Dict[str, Tuple[List[tuple], List[tuple]]]
    ) -> None:
        self.changes = changes

    def is_empty(self) -> bool:
        return not any(a or r for a, r in self.changes.values())

    def added(self, name: str) -> List[tuple]:
        return self.changes.get(name, ([], []))[0]

    def removed(self, name: str) -> List[tuple]:
        return self.changes.get(name, ([], []))[1]

    def relations(self) -> List[str]:
        return sorted(
            name for name, (a, r) in self.changes.items() if a or r
        )


class FactSet:
    """A :class:`~repro.ir.facts.Facts` duck-type without the program."""

    def __init__(
        self,
        maps: Dict[str, List[str]],
        relations: Dict[str, List[tuple]],
        site_method: Dict[int, int],
        alloc_sites: Dict[int, List[int]],
        global_site: int,
        max_arity: int,
        entry_ids: List[int],
        thread_sites: List[Tuple[int, int]],
        var_reps: Dict[Tuple[str, str], str],
        program_entry: str,
        program_stats: Dict[str, Any],
    ) -> None:
        self.maps = maps
        self.relations = relations
        self.site_method = site_method
        self.alloc_sites = alloc_sites
        self.global_site = global_site
        self.max_arity = max_arity
        self._entry_ids = list(entry_ids)
        self.thread_sites = sorted(tuple(t) for t in thread_sites)
        self._var_reps = var_reps
        self.program = _ProgramStub(program_entry, program_stats)
        self._indexes: Dict[str, Dict[str, int]] = {}

    # -- Facts interface ------------------------------------------------

    @property
    def sizes(self) -> Dict[str, int]:
        out = {dom: max(1, len(names)) for dom, names in self.maps.items()}
        out["Z"] = self.max_arity
        return out

    def _index(self, domain: str) -> Dict[str, int]:
        idx = self._indexes.get(domain)
        if idx is None:
            idx = self._indexes[domain] = {
                name: i for i, name in enumerate(self.maps.get(domain, ()))
            }
        return idx

    def id_of(self, domain: str, name: str) -> int:
        ordinal = self._index(domain).get(name)
        if ordinal is None:
            raise InvalidInputError(
                f"no element {name!r} in domain {domain}"
            )
        return ordinal

    def name_of(self, domain: str, ordinal: int) -> str:
        return self.maps[domain][ordinal]

    def var_id(self, method: str, var: str) -> int:
        rep = self._var_reps.get((method, var))
        if rep is None:
            raise InvalidInputError(f"no variable {var!r} in {method}")
        return self.id_of("V", rep)

    def method_id(self, qualified: str) -> int:
        try:
            return self.id_of("M", qualified)
        except InvalidInputError:
            raise InvalidInputError(f"no method {qualified!r} in the database")

    def entry_method_ids(self) -> List[int]:
        return list(self._entry_ids)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_facts(
        cls, facts, thread_sites: Optional[Sequence[Tuple[int, int]]] = None
    ) -> "FactSet":
        """Snapshot full extracted Facts (tests, differential gates)."""
        if thread_sites is None:
            from ..analysis.escape import thread_alloc_sites

            thread_sites = thread_alloc_sites(facts)
        return cls(
            maps={dom: list(names) for dom, names in facts.maps.items()},
            relations={
                name: [tuple(t) for t in rows]
                for name, rows in facts.relations.items()
            },
            site_method=dict(facts.site_method),
            alloc_sites={
                m: list(sites) for m, sites in facts.alloc_sites.items()
            },
            global_site=facts.global_site,
            max_arity=facts.max_arity,
            entry_ids=facts.entry_method_ids(),
            thread_sites=thread_sites,
            var_reps=dict(facts._var_reps),
            program_entry=facts.program.entry.qualified,
            program_stats=facts.program.stats(),
        )

    @classmethod
    def from_db_meta(cls, meta: Dict[str, Any], name: str = "<db>") -> "FactSet":
        """Rebuild the fact set embedded in a database's meta record."""
        embedded = meta.get("facts")
        if not isinstance(embedded, dict):
            raise FactDiffError(
                f"{name}: database has no embedded fact tables "
                f"(meta['facts']) — it was written by an older tool; "
                f"re-run 'repro compile-db' to produce a recompilable "
                f"database"
            )
        maps = {
            dom: list(names) for dom, names in meta.get("maps", {}).items()
        }
        program_meta = meta.get("program", {})
        var_index = maps.get("V", [])
        var_reps: Dict[Tuple[str, str], str] = {}
        for spec, ordinal in meta.get("var_reps", {}).items():
            method, _, var = spec.rpartition(":")
            var_reps[(method, var)] = var_index[int(ordinal)]
        return cls(
            maps=maps,
            relations={
                rel: [tuple(t) for t in rows]
                for rel, rows in embedded.get("relations", {}).items()
            },
            site_method={
                int(site): int(m)
                for site, m in meta.get("site_method", {}).items()
            },
            alloc_sites={
                int(m): list(sites)
                for m, sites in embedded.get("alloc_sites", {}).items()
            },
            global_site=int(embedded.get("global_site", -1)),
            max_arity=int(embedded.get("max_arity", 1)),
            entry_ids=[int(m) for m in embedded.get("entry_ids", ())],
            thread_sites=[
                (int(h), int(r)) for h, r in embedded.get("thread_sites", ())
            ],
            var_reps=var_reps,
            program_entry=str(program_meta.get("entry", "")),
            program_stats=dict(program_meta.get("stats", {})),
        )

    # -- editing --------------------------------------------------------

    def apply_diff(self, diff: FactDiff) -> Tuple["FactSet", AppliedDiff]:
        """Apply a *resolved* diff; returns ``(new_facts, applied)``.

        The receiver is not mutated.  Adds of already-present tuples are
        dropped (idempotent); removals of absent tuples raise
        :class:`FactDiffError`.
        """
        new_relations = {
            name: list(rows) for name, rows in self.relations.items()
        }
        changes: Dict[str, Tuple[List[tuple], List[tuple]]] = {}
        for rel in sorted(set(diff.added) | set(diff.removed)):
            if rel not in EDITABLE_RELATIONS:
                raise FactDiffError(
                    f"{diff.name}: relation {rel!r} is not editable",
                    predicate=rel,
                )
            current = set(new_relations.get(rel, ()))
            removed = []
            for t in diff.removed.get(rel, ()):
                t = tuple(t)
                if t not in current:
                    raise FactDiffError(
                        f"{diff.name}: {rel}: cannot remove {t} — not "
                        f"present in the baseline (wrong baseline, or "
                        f"already removed?)",
                        predicate=rel,
                    )
                current.discard(t)
                removed.append(t)
            added = []
            for t in diff.added.get(rel, ()):
                t = tuple(t)
                if t in current:
                    continue  # idempotent re-add
                current.add(t)
                added.append(t)
            new_relations[rel] = sorted(current)
            changes[rel] = (sorted(added), sorted(removed))
        clone = FactSet(
            maps=self.maps,
            relations=new_relations,
            site_method=self.site_method,
            alloc_sites=self.alloc_sites,
            global_site=self.global_site,
            max_arity=self.max_arity,
            entry_ids=self._entry_ids,
            thread_sites=self.thread_sites,
            var_reps=self._var_reps,
            program_entry=self.program.entry.qualified,
            program_stats=self.program.stats(),
        )
        return clone, AppliedDiff(changes)
