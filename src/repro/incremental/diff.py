"""FactDiff: the edit format of the incremental recompiler.

A fact diff is a small JSON document describing a program edit at the
level of the *extracted input relations* — the same level the solver
consumes — so the recompiler never needs to re-extract or even see
source text::

    {
      "format": "repro-factdiff 1",
      "baseline": {"db_id": "f3a29c...", "facts_sha256": "9b1d..."},
      "add":    {"vP0": [["Main.main:p", "new Object#3"]]},
      "remove": {"store": [[12, 0, 7]]}
    }

Only the five *editable* relations may appear — ``vP0``, ``store``,
``load``, ``assign0`` (alias ``assign``), and ``IE0`` — chosen because
they capture statement-level edits (allocations, field writes/reads,
copies, direct call targets) without changing any domain: every tuple
must name elements that already exist, so the domain maps, the variable
order, and the BDD encodings of the baseline all remain valid.  Edits
that introduce new variables or allocation sites are program growth, not
a diff — they go through a full ``compile-db``.

Tuples may use integer ordinals (bounds-checked against the domain
maps) or names: domain element names for ``H``/``F``/``I``/``M``, and
``Method.qualified:var`` specs for ``V`` (resolved through the
copy-factoring representative table, exactly like the query layer).

Everything wrong with a diff raises a *typed* error rooted at
:class:`~repro.runtime.errors.InvalidInputError`:

* :class:`FactDiffError` — malformed document, unknown relation, bad
  arity, unknown name, ordinal out of range, removal of an absent tuple;
* :class:`DiffConflictError` — the same tuple both added and removed;
* :class:`BaselineMismatchError` — the diff's declared baseline does not
  match the database it is being applied to.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..runtime.errors import InvalidInputError

__all__ = [
    "EDITABLE_RELATIONS",
    "BaselineMismatchError",
    "DiffConflictError",
    "FactDiff",
    "FactDiffError",
]

PathLike = Union[str, pathlib.Path]

_FORMAT = "repro-factdiff 1"

# Editable relation -> attribute domains.  The schema here is the
# contract: a diff may only speak these relations, with these arities.
EDITABLE_RELATIONS: Dict[str, Tuple[str, ...]] = {
    "vP0": ("V", "H"),
    "store": ("V", "F", "V"),
    "load": ("V", "F", "V"),
    "assign0": ("V", "V"),
    "IE0": ("I", "M"),
}

# ``assign`` is what Algorithm 1's rule set calls the relation; the
# extracted input table is ``assign0``.  Accept both spellings.
_ALIASES = {"assign": "assign0"}


class FactDiffError(InvalidInputError):
    """A fact diff is malformed or references unknown facts."""


class DiffConflictError(FactDiffError):
    """The same tuple appears in both ``add`` and ``remove``."""


class BaselineMismatchError(FactDiffError):
    """The diff was produced against a different baseline database."""


@dataclass
class FactDiff:
    """A parsed (not yet resolved) fact diff.

    ``added``/``removed`` hold the tuples exactly as written — ints or
    name strings; :meth:`resolve` turns them into pure-ordinal tuples
    against a concrete fact set.  ``baseline`` is the optional identity
    of the database the diff was authored against.
    """

    added: Dict[str, List[tuple]] = field(default_factory=dict)
    removed: Dict[str, List[tuple]] = field(default_factory=dict)
    baseline: Dict[str, str] = field(default_factory=dict)
    name: str = "<diff>"

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, doc: Any, name: str = "<diff>") -> "FactDiff":
        """Validate and normalize a decoded JSON document."""
        if not isinstance(doc, dict):
            raise FactDiffError(
                f"{name}: a fact diff must be a JSON object, "
                f"got {type(doc).__name__}"
            )
        fmt = doc.get("format", _FORMAT)
        if fmt != _FORMAT:
            raise FactDiffError(
                f"{name}: unsupported diff format {fmt!r} "
                f"(this build reads {_FORMAT!r})"
            )
        unknown = set(doc) - {"format", "baseline", "add", "remove", "comment"}
        if unknown:
            raise FactDiffError(
                f"{name}: unknown diff keys {sorted(unknown)} "
                f"(allowed: format, baseline, add, remove, comment)"
            )
        baseline = doc.get("baseline", {})
        if not isinstance(baseline, dict) or not all(
            isinstance(v, str) for v in baseline.values()
        ):
            raise FactDiffError(
                f"{name}: baseline must be an object of string ids"
            )
        bad_keys = set(baseline) - {"db_id", "facts_sha256"}
        if bad_keys:
            raise FactDiffError(
                f"{name}: unknown baseline keys {sorted(bad_keys)} "
                f"(allowed: db_id, facts_sha256)"
            )
        return cls(
            added=cls._parse_side(doc.get("add", {}), "add", name),
            removed=cls._parse_side(doc.get("remove", {}), "remove", name),
            baseline=dict(baseline),
            name=name,
        )

    @staticmethod
    def _parse_side(side: Any, label: str, name: str) -> Dict[str, List[tuple]]:
        if not isinstance(side, dict):
            raise FactDiffError(
                f"{name}: {label!r} must map relation names to tuple lists"
            )
        out: Dict[str, List[tuple]] = {}
        for rel, rows in side.items():
            canonical = _ALIASES.get(rel, rel)
            if canonical not in EDITABLE_RELATIONS:
                raise FactDiffError(
                    f"{name}: relation {rel!r} is not editable "
                    f"(editable: {sorted(EDITABLE_RELATIONS)})",
                    predicate=rel,
                )
            arity = len(EDITABLE_RELATIONS[canonical])
            tuples: List[tuple] = []
            for row in rows if isinstance(rows, list) else _bad_rows(name, rel):
                if not isinstance(row, (list, tuple)) or len(row) != arity:
                    raise FactDiffError(
                        f"{name}: {label} {rel}: tuple {row!r} must have "
                        f"{arity} elements "
                        f"({', '.join(EDITABLE_RELATIONS[canonical])})",
                        predicate=canonical,
                    )
                for value in row:
                    if not isinstance(value, (int, str)) or isinstance(
                        value, bool
                    ):
                        raise FactDiffError(
                            f"{name}: {label} {rel}: element {value!r} must "
                            f"be an ordinal or a name string",
                            predicate=canonical,
                        )
                tuples.append(tuple(row))
            if tuples:
                out.setdefault(canonical, []).extend(tuples)
        return out

    @classmethod
    def load(cls, path: PathLike) -> "FactDiff":
        """Parse a diff from a JSON file."""
        target = pathlib.Path(path)
        try:
            text = target.read_text()
        except OSError as err:
            if isinstance(err, FileNotFoundError):
                raise
            raise FactDiffError(f"{target}: cannot read diff: {err}")
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as err:
            raise FactDiffError(f"{target}: not valid JSON: {err}")
        return cls.parse(doc, name=str(target))

    # -- inspection ----------------------------------------------------

    def is_empty(self) -> bool:
        return not any(self.added.values()) and not any(self.removed.values())

    def relations(self) -> List[str]:
        """Editable relations this diff touches, sorted."""
        return sorted(set(self.added) | set(self.removed))

    def size(self) -> int:
        return sum(len(v) for v in self.added.values()) + sum(
            len(v) for v in self.removed.values()
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "added": {k: len(v) for k, v in sorted(self.added.items())},
            "removed": {k: len(v) for k, v in sorted(self.removed.items())},
            "baseline": dict(self.baseline),
        }

    def sha256(self) -> str:
        """Canonical digest of the edit content (provenance stamping)."""
        payload = {
            "add": {k: sorted(map(list, v)) for k, v in self.added.items()},
            "remove": {
                k: sorted(map(list, v)) for k, v in self.removed.items()
            },
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    # -- resolution ----------------------------------------------------

    def check_baseline(self, db_id: str, facts_sha256: Optional[str]) -> None:
        """Verify the diff was authored against this database."""
        want_db = self.baseline.get("db_id")
        if want_db is not None and want_db != db_id:
            raise BaselineMismatchError(
                f"{self.name}: diff baseline db_id {want_db} does not match "
                f"database {db_id} — recompute the diff against the "
                f"database you are editing"
            )
        want_facts = self.baseline.get("facts_sha256")
        if (
            want_facts is not None
            and facts_sha256 is not None
            and want_facts != facts_sha256
        ):
            raise BaselineMismatchError(
                f"{self.name}: diff baseline facts digest "
                f"{want_facts[:12]}... does not match the database's "
                f"{facts_sha256[:12]}..."
            )

    def resolve(self, facts) -> "FactDiff":
        """Return a pure-ordinal diff resolved against ``facts``.

        ``facts`` is anything with ``maps`` and ``var_id`` (full
        :class:`~repro.ir.facts.Facts` or the incremental
        :class:`~repro.incremental.state.FactSet`).  Names are resolved,
        ordinals bounds-checked, and add/remove conflicts detected.
        """
        added = {
            rel: [self._resolve_tuple(facts, rel, t) for t in rows]
            for rel, rows in self.added.items()
        }
        removed = {
            rel: [self._resolve_tuple(facts, rel, t) for t in rows]
            for rel, rows in self.removed.items()
        }
        for rel in set(added) & set(removed):
            clash = set(added[rel]) & set(removed[rel])
            if clash:
                raise DiffConflictError(
                    f"{self.name}: relation {rel}: tuples "
                    f"{sorted(clash)} are both added and removed",
                    predicate=rel,
                )
        return FactDiff(
            added=added,
            removed=removed,
            baseline=dict(self.baseline),
            name=self.name,
        )

    def _resolve_tuple(self, facts, rel: str, row: tuple) -> tuple:
        domains = EDITABLE_RELATIONS[rel]
        out = []
        for domain, value in zip(domains, row):
            if isinstance(value, int):
                limit = len(facts.maps.get(domain, ()))
                if not 0 <= value < limit:
                    raise FactDiffError(
                        f"{self.name}: {rel}: ordinal {value} is outside "
                        f"domain {domain} (size {limit})",
                        predicate=rel,
                        value=value,
                    )
                out.append(value)
                continue
            out.append(self._resolve_name(facts, rel, domain, value))
        return tuple(out)

    def _resolve_name(self, facts, rel: str, domain: str, value: str) -> int:
        if domain == "V" and ":" in value:
            method, _, var = value.rpartition(":")
            try:
                return facts.var_id(method, var)
            except Exception:
                raise FactDiffError(
                    f"{self.name}: {rel}: no variable {value!r} in the "
                    f"baseline program",
                    predicate=rel,
                    value=value,
                )
        names = facts.maps.get(domain, ())
        try:
            return names.index(value)
        except ValueError:
            raise FactDiffError(
                f"{self.name}: {rel}: no element {value!r} in domain "
                f"{domain}",
                predicate=rel,
                value=value,
            )


def _bad_rows(name: str, rel: str):
    raise FactDiffError(f"{name}: relation {rel}: tuples must be a list")
