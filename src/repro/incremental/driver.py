"""The incremental recompiler: delta facts in, delta ``.ptdb`` out.

``recompile_database`` turns a baseline database plus a
:class:`~repro.incremental.diff.FactDiff` into a *new* database that is
fingerprint-identical to what a from-scratch compile of the edited facts
would produce (``db_id`` is the gate: it hashes the stable meta and the
canonical BDD payload, so two databases with the same id answer every
query identically).

Per-phase strategy, mirroring how each analysis consumes the edit:

* **context-insensitive (Algorithm 3)** — always warm-started: the
  previous fixpoint is restored from the bundle's ``ci`` checkpoint, the
  relation-level edits are applied, and the solver's
  ``solve_incremental`` pushes added tuples semi-naively / recomputes
  only removal-affected strata.
* **context-sensitive (Algorithm 5)** — warm-started *iff* the solved
  ``IE`` relation (hence the call graph, the context numbering, the
  ``C`` domain, and ``IEC``/``MC``) is unchanged by the edit.  If ``IE``
  changed, the numbering itself is stale and the phase re-solves against
  the new call graph — still without touching source, and still with the
  CI phase incremental.
* **escape (Algorithm 7)** — its solver inputs (``assign``, ``HT``,
  ``vP0T``, ``vP0``) are *computed* from facts + call graph, so the
  driver recomputes them for old and new facts (pure bookkeeping),
  diffs the two, and warm-starts from the ``escape`` checkpoint.  The
  ``C`` domain depends only on the thread allocation sites, which no
  editable relation can change.

A missing, stale (wrong ``db_id``), or corrupt bundle degrades to a cold
compile of the edited fact set — slower, never wrong.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..bdd import FALSE
from ..callgraph import call_graph_from_ie
from ..runtime import ResourceBudget
from ..runtime.checkpoint import load_checkpoint_lines
from ..runtime.errors import CheckpointError, InvalidInputError
from .diff import FactDiff
from .fixpoint import (
    FixpointBundle,
    FixpointError,
    bundle_path_for,
    load_fixpoint_bundle,
    write_fixpoint_bundle,
)
from .state import AppliedDiff, FactSet

__all__ = ["RecompileResult", "recompile_database"]

PathLike = Union[str, pathlib.Path]


@dataclass
class RecompileResult:
    """Outcome of one recompile: the new database plus how it was made.

    ``modes`` records the per-phase strategy actually used — ``noop``
    (edit had no effect on the phase), ``delta`` (warm-started from the
    fixpoint bundle), ``recomputed`` (phase re-solved because its
    derived structures were invalidated), or ``cold`` (no usable bundle;
    full compile).  ``state`` carries the live solvers for writing the
    next fixpoint bundle; it is ``None`` only for no-op recompiles,
    where the previous bundle is still valid verbatim.
    """

    db: Any
    modes: Dict[str, str]
    timings: Dict[str, float] = field(default_factory=dict)
    state: Any = None
    diff_sha256: str = ""
    parent_db_id: str = ""

    @property
    def db_id(self) -> str:
        return self.db.db_id

    def changed(self) -> bool:
        return self.db.db_id != self.parent_db_id


def _editable_edits(
    solver, applied: AppliedDiff
) -> Tuple[Dict[str, int], Set[str]]:
    """Apply effective relation edits to a warm solver's inputs.

    The solver holds the previous fixpoint (checkpoint just loaded), so
    its input relations hold the *old* tuple sets; this patches them to
    the new sets and returns ``(added_nodes, dirty)`` for
    ``solve_incremental``.  Relations the solver does not declare are
    skipped (e.g. ``IE0`` for Algorithm 5, whose call-graph knowledge
    arrives pre-numbered via ``IEC``).
    """
    m = solver.manager
    added_nodes: Dict[str, int] = {}
    dirty: Set[str] = set()
    for name in applied.relations():
        if name not in solver.relations:
            continue
        rel = solver.relations[name]
        add_node = FALSE
        for t in applied.added(name):
            add_node = m.or_(add_node, rel._tuple_node(t))
        remove_node = FALSE
        for t in applied.removed(name):
            remove_node = m.or_(remove_node, rel._tuple_node(t))
        if remove_node != FALSE:
            rel.set_node(m.diff(rel.node, remove_node))
            dirty.add(name)
        if add_node != FALSE:
            delta = m.diff(add_node, rel.node)
            if delta != FALSE:
                rel.set_node(m.or_(rel.node, delta))
                added_nodes[name] = delta
    return added_nodes, dirty


def _tuple_set_edits(
    solver, name: str, old: Sequence[tuple], new: Sequence[tuple]
) -> Tuple[int, bool]:
    """Patch a computed input relation from ``old`` to ``new`` tuples.

    Returns ``(added_node, shrunk)``.  The solver relation currently
    holds exactly ``old`` (it came out of the checkpoint)."""
    m = solver.manager
    old_set, new_set = set(map(tuple, old)), set(map(tuple, new))
    rel = solver.relations[name]
    add_node = FALSE
    for t in sorted(new_set - old_set):
        add_node = m.or_(add_node, rel._tuple_node(t))
    remove_node = FALSE
    for t in sorted(old_set - new_set):
        remove_node = m.or_(remove_node, rel._tuple_node(t))
    if remove_node != FALSE:
        rel.set_node(m.diff(rel.node, remove_node))
    if add_node != FALSE:
        rel.set_node(m.or_(rel.node, add_node))
    return add_node, remove_node != FALSE


def recompile_database(
    db,
    diff,
    *,
    fixpoint_path: Optional[PathLike] = None,
    backend: Optional[str] = None,
    budget: Optional[ResourceBudget] = None,
    optimize: Optional[bool] = None,
    disabled_passes: Optional[Sequence[str]] = None,
) -> RecompileResult:
    """Apply ``diff`` to ``db``; return the recompiled database.

    ``db`` is a :class:`~repro.serve.database.PointsToDatabase` or a
    path to one; ``diff`` a :class:`FactDiff` or a path to a diff file.
    ``fixpoint_path`` overrides the default bundle location
    (``<db>.fix`` beside the database).  All input problems raise typed
    :class:`~repro.runtime.errors.InvalidInputError` subclasses.
    """
    from ..serve.database import PointsToDatabase

    if not isinstance(db, PointsToDatabase):
        db = PointsToDatabase.load(db, backend=backend)
    if not isinstance(diff, FactDiff):
        diff = FactDiff.load(diff)
    if budget is not None:
        budget.start()

    base_facts = FactSet.from_db_meta(db.meta, name=db.path or "<db>")
    parent_facts_sha = db.meta.get("program", {}).get("facts_sha256")
    diff.check_baseline(db.db_id, parent_facts_sha)
    resolved = diff.resolve(base_facts)

    provenance: Dict[str, Any] = {
        "parent_db_id": db.db_id,
        "parent_facts_sha256": parent_facts_sha,
        "diff_sha256": resolved.sha256(),
        "edit": resolved.summary(),
    }
    modref = bool(db.meta.get("config", {}).get("modref", True))
    main = db.meta.get("program", {}).get("main", "Main")
    order_spec = db.meta.get("config", {}).get("order_spec")

    new_facts: FactSet
    applied: Optional[AppliedDiff]
    if resolved.is_empty():
        applied = None
    else:
        new_facts, applied = base_facts.apply_diff(resolved)
        if applied.is_empty():
            applied = None
    if applied is None:
        # No effective edit: the baseline *is* the answer; same db_id.
        modes = {"ci": "noop", "cs": "noop", "escape": "noop"}
        db.meta["provenance"] = dict(provenance, modes=modes)
        return RecompileResult(
            db=db,
            modes=modes,
            state=None,
            diff_sha256=provenance["diff_sha256"],
            parent_db_id=db.db_id,
        )

    bundle = _find_bundle(db, fixpoint_path)
    if bundle is None:
        return _cold_recompile(
            db, new_facts, provenance,
            modref=modref, main=main, backend=backend, budget=budget,
            optimize=optimize, disabled_passes=disabled_passes,
        )
    return _warm_recompile(
        db, bundle, base_facts, new_facts, applied, provenance,
        modref=modref, main=main, order_spec=order_spec, backend=backend,
        budget=budget, optimize=optimize, disabled_passes=disabled_passes,
    )


def _find_bundle(db, fixpoint_path) -> Optional[FixpointBundle]:
    if fixpoint_path is None:
        if db.path is None:
            return None
        fixpoint_path = bundle_path_for(db.path)
        if not pathlib.Path(fixpoint_path).exists():
            return None
    try:
        bundle = load_fixpoint_bundle(fixpoint_path)
    except FileNotFoundError:
        raise
    except InvalidInputError:
        return None  # corrupt or cross-version bundle: degrade to cold
    if bundle.db_id != db.db_id:
        return None  # bundle belongs to a different database generation
    return bundle


def _cold_recompile(
    db, new_facts, provenance, *, modref, main,
    backend, budget, optimize, disabled_passes,
) -> RecompileResult:
    from ..serve.database import compile_database_with_state

    modes = {"ci": "cold", "cs": "cold", "escape": "cold"}
    t0 = time.monotonic()
    new_db, state = compile_database_with_state(
        facts=new_facts,
        main=main,
        modref=modref,
        budget=budget,
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
        provenance=dict(provenance, modes=modes),
    )
    return RecompileResult(
        db=new_db,
        modes=modes,
        timings={"total_s": time.monotonic() - t0},
        state=state,
        diff_sha256=provenance["diff_sha256"],
        parent_db_id=db.db_id,
    )


def _warm_recompile(
    db, bundle, base_facts, new_facts, applied, provenance, *,
    modref, main, order_spec, backend, budget, optimize, disabled_passes,
) -> RecompileResult:
    from ..analysis.base import load_datalog_source, make_solver
    from ..analysis.context_sensitive import ContextSensitiveAnalysis
    from ..analysis.escape import EscapeResult, build_escape_inputs
    from ..serve.database import CompileState, package_database

    modes: Dict[str, str] = {}
    timings: Dict[str, float] = {}
    solver_kwargs = dict(
        backend=backend,
        optimize=optimize,
        disabled_passes=disabled_passes,
    )
    label = bundle.path

    # ---- phase 1: context-insensitive (always warm) -------------------
    t0 = time.monotonic()
    ci_solver = make_solver(
        new_facts,
        load_datalog_source("algorithm3"),
        budget=budget.share_deadline() if budget is not None else None,
        load_facts=False,  # the ci checkpoint restores every relation
        **solver_kwargs,
    )
    _load_section(ci_solver, bundle, "ci", label)
    added_nodes, dirty = _editable_edits(ci_solver, applied)
    ci_solver.solve_incremental(added_nodes, dirty)
    ie_new = sorted(ci_solver.relation("IE").tuples())
    graph = call_graph_from_ie(new_facts, ie_new)
    timings["context_insensitive_s"] = time.monotonic() - t0
    modes["ci"] = "delta"

    # ---- phase 2: context-sensitive ----------------------------------
    t0 = time.monotonic()
    old_ie = sorted(tuple(t) for t in db.tuples.get("IE", ()))
    fragments = ["query_modref"] if modref else ()
    if ie_new == old_ie:
        # Call graph unchanged => numbering, C domain, IEC, MC all valid.
        cs_solver = make_solver(
            new_facts,
            load_datalog_source("algorithm5", fragments),
            size_overrides={"C": int(bundle.meta["cs_c_size"])},
            order_spec=order_spec,
            budget=(
                budget.share_deadline(
                    node_budget=budget.node_budget,
                    max_iterations=budget.max_iterations,
                )
                if budget is not None
                else None
            ),
            load_facts=False,  # the cs checkpoint restores every relation
            **solver_kwargs,
        )
        _load_section(cs_solver, bundle, "cs", label)
        added_nodes, dirty = _editable_edits(cs_solver, applied)
        cs_solver.solve_incremental(added_nodes, dirty)
        cs_c_size = int(bundle.meta["cs_c_size"])
        max_paths = int(bundle.meta["max_paths"])
        modes["cs"] = "delta"
    else:
        # The numbering is derived from the call graph; a changed IE
        # invalidates it, so this phase re-solves (CI stays incremental).
        cs_result = ContextSensitiveAnalysis(
            facts=new_facts,
            call_graph=graph,
            query_fragments=fragments,
            order_spec=order_spec,
            budget=(
                budget.share_deadline(
                    node_budget=budget.node_budget,
                    max_iterations=budget.max_iterations,
                )
                if budget is not None
                else None
            ),
            degrade=False,
            **solver_kwargs,
        ).run()
        cs_solver = cs_result.solver
        cs_c_size = cs_result.numbering.context_domain_size()
        max_paths = cs_result.max_paths()
        modes["cs"] = "recomputed"
    timings["context_sensitive_s"] = time.monotonic() - t0

    # ---- phase 3: escape ---------------------------------------------
    t0 = time.monotonic()
    thread_sites = sorted(
        (int(h), int(r)) for h, r in bundle.meta.get("thread_sites", ())
    )
    old_graph = (
        graph if ie_new == old_ie else call_graph_from_ie(base_facts, old_ie)
    )
    old_inputs = build_escape_inputs(base_facts, old_graph, thread_sites)
    new_inputs = build_escape_inputs(new_facts, graph, thread_sites)
    esc_solver = make_solver(
        new_facts,
        load_datalog_source("algorithm7"),
        size_overrides={"C": int(bundle.meta["escape_c_size"])},
        budget=budget.share_deadline() if budget is not None else None,
        load_facts=False,  # the escape checkpoint restores every relation
        **solver_kwargs,
    )
    _load_section(esc_solver, bundle, "escape", label)
    added_nodes, dirty = {}, set()
    computed = [
        ("assign", old_inputs.assign, new_inputs.assign),
        ("HT", old_inputs.ht, new_inputs.ht),
        ("vP0T", old_inputs.vp0t, new_inputs.vp0t),
        ("vP0", old_inputs.vp0, new_inputs.vp0),
    ]
    for name, old_tuples, new_tuples in computed:
        add_node, shrunk = _tuple_set_edits(
            esc_solver, name, old_tuples, new_tuples
        )
        if add_node != FALSE:
            added_nodes[name] = add_node
        if shrunk:
            dirty.add(name)
    direct = AppliedDiff(
        {
            name: edits
            for name, edits in applied.changes.items()
            if name in ("store", "load")
        }
    )
    direct_added, direct_dirty = _editable_edits(esc_solver, direct)
    for name, node in direct_added.items():
        m = esc_solver.manager
        added_nodes[name] = m.or_(added_nodes.get(name, FALSE), node)
    dirty |= direct_dirty
    esc_solver.solve_incremental(added_nodes, dirty)
    esc = EscapeResult(
        facts=new_facts,
        solver=esc_solver,
        seconds=0.0,
        thread_contexts=new_inputs.contexts,
    )
    escape_verdicts = {
        "escaped": sorted(esc.escaped_heaps()),
        "captured": sorted(esc.captured_heaps()),
        "sync_needed": sorted(esc.needed_sync_vars()),
        "sync_unneeded": sorted(esc.unneeded_sync_vars()),
    }
    timings["escape_s"] = time.monotonic() - t0
    modes["escape"] = "delta"

    new_db = package_database(
        new_facts,
        cs_solver,
        ie_new,
        escape_verdicts,
        max_paths=max_paths,
        thread_sites=thread_sites,
        modref=modref,
        budget_class=db.meta.get("config", {}).get("budget_class"),
        main=main,
        timings=timings,
        provenance=dict(provenance, modes=modes),
    )
    state = CompileState(
        ci_solver=ci_solver,
        cs_solver=cs_solver,
        escape_solver=esc_solver,
        ie_tuples=ie_new,
        cs_c_size=cs_c_size,
        escape_c_size=int(bundle.meta["escape_c_size"]),
        thread_sites=thread_sites,
        max_paths=max_paths,
    )
    return RecompileResult(
        db=new_db,
        modes=modes,
        timings=timings,
        state=state,
        diff_sha256=provenance["diff_sha256"],
        parent_db_id=db.db_id,
    )


def _load_section(solver, bundle: FixpointBundle, name: str, label: str):
    try:
        return load_checkpoint_lines(
            solver, bundle.section(name), f"{label}#{name}"
        )
    except CheckpointError as err:
        raise FixpointError(
            f"{label}: section {name} does not restore into a solver "
            f"built from this database's facts: {err}"
        )
