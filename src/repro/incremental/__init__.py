"""Incremental recompilation: delta facts in, delta ``.ptdb`` out.

The paper's pipeline is batch: extract facts, solve, query.  This
package adds the *edit loop* around it — apply a small relation-level
edit (a :class:`~repro.incremental.diff.FactDiff`) to an existing
database and produce a new database that is fingerprint-identical
(``db_id``) to a from-scratch solve of the edited facts, in a fraction
of the time, then hand it to the serve layer's hot-swap reload:

* :mod:`repro.incremental.diff` — the ``FactDiff`` edit format and its
  typed validation errors,
* :mod:`repro.incremental.state` — :class:`FactSet`, the program-free
  fact tables rebuilt from a database's embedded meta,
* :mod:`repro.incremental.fixpoint` — the ``.ptdb.fix`` bundle holding
  all three solvers' checkpointed fixpoints for warm starts,
* :mod:`repro.incremental.driver` — ``recompile_database``, the
  per-phase incremental orchestration.

See ``docs/incremental.md`` for the edit -> recompile -> reload loop
and the removal-soundness argument.
"""

from .diff import (
    EDITABLE_RELATIONS,
    BaselineMismatchError,
    DiffConflictError,
    FactDiff,
    FactDiffError,
)
from .driver import RecompileResult, recompile_database
from .fixpoint import (
    FixpointBundle,
    FixpointError,
    bundle_path_for,
    load_fixpoint_bundle,
    write_fixpoint_bundle,
)
from .state import AppliedDiff, FactSet

__all__ = [
    "AppliedDiff",
    "BaselineMismatchError",
    "DiffConflictError",
    "EDITABLE_RELATIONS",
    "FactDiff",
    "FactDiffError",
    "FactSet",
    "FixpointBundle",
    "FixpointError",
    "RecompileResult",
    "bundle_path_for",
    "load_fixpoint_bundle",
    "recompile_database",
    "write_fixpoint_bundle",
]
