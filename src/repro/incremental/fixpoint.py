"""The fixpoint bundle (``.ptdb.fix``): warm-start state for recompiles.

A ``.ptdb`` deliberately stores only what queries need — ``vPC`` and
friends.  Warm-starting an incremental recompile needs more: the *full*
solver state of all three analyses (every input, intermediate, and
output relation), because semi-naive delta seeding resumes from the
previous fixpoint.  That state lives beside the database in a bundle::

    # repro-fixpoint 1
    meta {"db_id": ..., "cs_c_size": ..., "sections": ["ci","cs","escape"], ...}
    section ci <n lines>
    # repro-checkpoint 2
    ...
    section cs <n lines>
    ...
    section escape <n lines>
    ...

Each section is a complete, self-verifying v2 checkpoint document (its
own meta, digest, and payload), so the existing checkpoint loader does
all integrity and schema checking; the bundle adds only the envelope
and the cross-phase facts: which database this fixpoint belongs to
(``db_id`` — a bundle for the wrong database is rejected up front), the
context-domain sizes the solvers were built with, the variable order,
and the path count.

Losing or lacking a bundle is never fatal: the recompiler falls back to
a cold (from-scratch) compile of the edited facts and writes a fresh
bundle next to the new database.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Union

from ..runtime.atomic import atomic_write_text
from ..runtime.errors import InvalidInputError
from ..runtime.checkpoint import checkpoint_lines
from ..runtime.version import check_tool_version, tool_meta

__all__ = [
    "FixpointBundle",
    "FixpointError",
    "bundle_path_for",
    "load_fixpoint_bundle",
    "write_fixpoint_bundle",
]

PathLike = Union[str, pathlib.Path]

_MAGIC = "# repro-fixpoint 1"
FORMAT_VERSION = 1
SECTIONS = ("ci", "cs", "escape")


class FixpointError(InvalidInputError):
    """A fixpoint bundle is unreadable, malformed, or mismatched."""


@dataclass
class FixpointBundle:
    """A parsed bundle: envelope meta plus raw checkpoint sections."""

    meta: Dict[str, Any]
    sections: Dict[str, List[str]]
    path: str

    @property
    def db_id(self) -> str:
        return self.meta.get("db_id", "")

    def section(self, name: str) -> List[str]:
        lines = self.sections.get(name)
        if lines is None:
            raise FixpointError(
                f"{self.path}: bundle has no {name!r} section "
                f"(has {sorted(self.sections)})"
            )
        return lines


def bundle_path_for(db_path: PathLike) -> pathlib.Path:
    """Where a database's fixpoint bundle lives: ``<db>.fix`` beside it."""
    target = pathlib.Path(db_path)
    return target.with_name(target.name + ".fix")


def write_fixpoint_bundle(path: PathLike, db, state, modref: bool = True) -> str:
    """Checkpoint all three solvers of ``state`` beside database ``db``.

    ``state`` is a :class:`~repro.serve.database.CompileState`.  Returns
    the written path.
    """
    meta: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "tool": tool_meta(),
        "db_id": db.db_id,
        "facts_sha256": db.meta.get("program", {}).get("facts_sha256"),
        "cs_c_size": state.cs_c_size,
        "escape_c_size": state.escape_c_size,
        "order_spec": db.meta.get("config", {}).get("order_spec"),
        "max_paths": state.max_paths,
        "thread_sites": [list(t) for t in state.thread_sites],
        "modref": modref,
        "sections": list(SECTIONS),
    }
    lines = [
        _MAGIC,
        "meta " + json.dumps(meta, sort_keys=True, separators=(",", ":")),
    ]
    solvers = {
        "ci": state.ci_solver,
        "cs": state.cs_solver,
        "escape": state.escape_solver,
    }
    for name in SECTIONS:
        section, _ = checkpoint_lines(solvers[name])
        lines.append(f"section {name} {len(section)}")
        lines.extend(section)
    return atomic_write_text(path, "\n".join(lines) + "\n")


def load_fixpoint_bundle(path: PathLike) -> FixpointBundle:
    """Parse a bundle envelope; sections stay as raw checkpoint lines.

    Raises :class:`FixpointError` for structural problems; each
    section's own integrity is verified later by the checkpoint loader.
    """
    target = pathlib.Path(path)
    try:
        text = target.read_text()
    except OSError as err:
        if isinstance(err, FileNotFoundError):
            raise
        raise FixpointError(f"{target}: cannot read bundle: {err}")
    lines = text.splitlines()
    if not lines or lines[0].strip() != _MAGIC:
        raise FixpointError(
            f"{target}:1: not a repro-fixpoint file (expected {_MAGIC!r})"
        )
    if len(lines) < 2 or not lines[1].startswith("meta "):
        raise FixpointError(f"{target}:2: missing meta record")
    try:
        meta = json.loads(lines[1][len("meta "):])
    except json.JSONDecodeError as err:
        raise FixpointError(f"{target}:2: corrupt meta json: {err}")
    if meta.get("format_version") != FORMAT_VERSION:
        raise FixpointError(
            f"{target}:2: unsupported bundle format_version "
            f"{meta.get('format_version')!r} (this build reads "
            f"{FORMAT_VERSION}); recompile from scratch"
        )
    check_tool_version(meta, str(target), "fixpoint bundle")
    sections: Dict[str, List[str]] = {}
    i = 2
    while i < len(lines):
        header = lines[i]
        if not header.strip():
            i += 1
            continue
        parts = header.split()
        if len(parts) != 3 or parts[0] != "section":
            raise FixpointError(
                f"{target}:{i + 1}: expected 'section <name> <lines>', "
                f"got {header!r}"
            )
        name = parts[1]
        try:
            count = int(parts[2])
        except ValueError:
            raise FixpointError(
                f"{target}:{i + 1}: malformed section line count"
            )
        body = lines[i + 1 : i + 1 + count]
        if len(body) != count:
            raise FixpointError(
                f"{target}: truncated bundle: section {name} promises "
                f"{count} lines, found {len(body)}"
            )
        if name in sections:
            raise FixpointError(
                f"{target}:{i + 1}: duplicate section {name!r}"
            )
        sections[name] = body
        i += 1 + count
    missing = [s for s in meta.get("sections", SECTIONS) if s not in sections]
    if missing:
        raise FixpointError(
            f"{target}: bundle is missing sections {missing}"
        )
    return FixpointBundle(meta=meta, sections=sections, path=str(target))
