"""Benchmark demand-driven resolution against its two alternatives.

A query for a variable outside the compiled database's budget class has
three possible costs:

* **demand** — the serve engine's goal-directed evaluator: magic-sets
  rewrite of the Algorithm 5 rules, seeded with the one goal tuple and
  pushed to fixpoint (cold = evaluator construction + first solve;
  incremental = further goals reusing the materialized sub-relations),
* **re-solve** — what answering without demand would cost: a fresh,
  exhaustive ``compile-db`` of the whole program, and
* **warm hit** — the floor: the same query answered from the engine's
  result cache once demand has materialized it.

Every timed cell is *answer-identity gated*: the demand answer must
equal the exhaustive database's answer for every sampled variable (and
every sampled context), on every backend, or the run fails with
``RuntimeError`` and no timings are written.  The gate result is
recorded per cell (``identity_checked`` / ``identical``).

Output: ``results/BENCH_demand.json``.  Run as::

    python -m repro.bench.demand_bench --entries freetts jetty
    python -m repro.bench.demand_bench --smoke   # CI: small + fast
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence

from ..serve import PointsToDatabase, QueryEngine, compile_database
from .corpus import corpus_entry

__all__ = ["run_demand_bench", "main"]

_DEFAULT_ENTRIES = ("freetts", "jetty")
_DEFAULT_BACKENDS = ("reference", "packed")
# Generated corpus programs keep their allocation-heavy worker methods
# in the ``Layers`` class; covering only ``Util.*`` leaves all of them
# outside the budget class — the worst (= most honest) case for demand.
_BUDGET_CLASS = "Util.*"
_DEFAULT_TARGETS = 6


def _uncovered_specs(db: PointsToDatabase, count: int) -> List[str]:
    """Variable specs the compiled budget class does not cover."""
    out = []
    for spec in sorted(db.var_reps):
        try:
            v = db.var_id(spec)
        except KeyError:
            continue
        if not db.covers_variable(v):
            out.append(spec)
        if len(out) >= count:
            break
    return out


def _gate_identity(
    full_engine: QueryEngine,
    demand_engine: QueryEngine,
    specs: Sequence[str],
    contexts: Sequence[Optional[int]],
) -> int:
    """Raise unless demand answers match the exhaustive database."""
    checked = 0
    for spec in specs:
        for c in contexts:
            args = {"variable": spec, "context": c}
            want = full_engine.query("points-to", dict(args))
            got = demand_engine.query("points-to", dict(args))
            if got["heaps"] != want["heaps"]:
                raise RuntimeError(
                    f"answer identity violated for {spec!r} (context {c}): "
                    f"demand={got['heaps']} exhaustive={want['heaps']} — "
                    "timings withheld"
                )
            if not want["demand"] and not got["demand"]:
                raise RuntimeError(
                    f"{spec!r} was expected to route to demand but did not"
                )
            checked += 1
    return checked


def bench_cell(
    name: str,
    backend: str,
    *,
    targets: int = _DEFAULT_TARGETS,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    program = corpus_entry(name).build()

    # The re-solve baseline IS a full compile: answering an uncovered
    # query without demand means re-running compile-db unrestricted.
    t0 = time.perf_counter()
    full = compile_database(program, backend=backend)
    resolve_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    restricted = compile_database(
        program, backend=backend, budget_class=_BUDGET_CLASS
    )
    restricted_compile_s = time.perf_counter() - t0

    # Serve path: the restricted artifact is saved and loaded back, the
    # way a real server would hold it.
    directory = pathlib.Path(workdir) if workdir else pathlib.Path(
        tempfile.mkdtemp(prefix="demand-bench-")
    )
    db_path = str(directory / f"{name}-{backend}.ptdb")
    restricted.save(db_path)
    loaded = PointsToDatabase.load(db_path, backend=backend)

    specs = _uncovered_specs(loaded, targets)
    if not specs:
        raise RuntimeError(
            f"budget class {_BUDGET_CLASS!r} left no uncovered variables "
            f"in {name} — nothing for demand to answer"
        )

    engine = QueryEngine(loaded, cache_size=4096)

    # Cold: evaluator construction + the first goal-directed solve.
    t0 = time.perf_counter()
    engine.query("points-to", {"variable": specs[0]})
    demand_cold_s = time.perf_counter() - t0

    # Incremental: new goals against the already-materialized solver.
    incr: List[float] = []
    for spec in specs[1:]:
        t0 = time.perf_counter()
        engine.query("points-to", {"variable": spec})
        incr.append(time.perf_counter() - t0)

    # Warm hit: the cache floor for an already-answered demand query.
    t0 = time.perf_counter()
    engine.query("points-to", {"variable": specs[0]})
    warm_hit_s = time.perf_counter() - t0

    full_engine = QueryEngine(full, cache_size=4096)
    checked = _gate_identity(full_engine, engine, specs, (None, 0))

    if demand_cold_s >= resolve_s:
        raise RuntimeError(
            f"{name}/{backend}: cold demand ({demand_cold_s:.3f}s) is not "
            f"faster than a full re-solve ({resolve_s:.3f}s) — the "
            "goal-directed path lost its reason to exist"
        )

    stats = engine.stats()["demand"]
    return {
        "entry": name,
        "backend": backend,
        "budget_class": _BUDGET_CLASS,
        "uncovered_sampled": len(specs),
        "resolve_s": round(resolve_s, 4),
        "restricted_compile_s": round(restricted_compile_s, 4),
        "demand_cold_s": round(demand_cold_s, 4),
        "demand_incremental_s": [round(s, 6) for s in incr],
        "demand_incremental_mean_s": round(
            sum(incr) / len(incr), 6
        ) if incr else None,
        "warm_hit_s": round(warm_hit_s, 7),
        "speedup_demand_vs_resolve": round(resolve_s / demand_cold_s, 2),
        "demand_solves": stats["solves"],
        "demand_solve_seconds": stats["solve_seconds"],
        "identity_checked": checked,
        "identical": True,
    }


def run_demand_bench(
    entries: Sequence[str] = _DEFAULT_ENTRIES,
    backends: Sequence[str] = _DEFAULT_BACKENDS,
    *,
    targets: int = _DEFAULT_TARGETS,
    out: str = "results/BENCH_demand.json",
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    cells: List[Dict[str, Any]] = []
    for name in entries:
        for backend in backends:
            print(f"== {name} / {backend} ==", file=sys.stderr)
            cell = bench_cell(
                name, backend, targets=targets, workdir=workdir
            )
            cells.append(cell)
            print(
                f"  re-solve {cell['resolve_s']:.2f}s, demand cold "
                f"{cell['demand_cold_s']:.3f}s "
                f"({cell['speedup_demand_vs_resolve']:.1f}x), warm hit "
                f"{cell['warm_hit_s'] * 1e6:.0f}us, identity "
                f"{cell['identity_checked']} checks ok",
                file=sys.stderr,
            )
    report = {
        "benchmark": "demand",
        "budget_class": _BUDGET_CLASS,
        "entries": list(entries),
        "backends": list(backends),
        "cells": cells,
    }
    out_path = pathlib.Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.demand_bench",
        description="Benchmark goal-directed demand resolution",
    )
    parser.add_argument(
        "--entries", nargs="+", default=list(_DEFAULT_ENTRIES),
        help="corpus entries to benchmark (default: freetts jetty)",
    )
    parser.add_argument(
        "--backends", nargs="+", default=list(_DEFAULT_BACKENDS),
        help="BDD backends to benchmark (default: reference packed)",
    )
    parser.add_argument(
        "--targets", type=int, default=_DEFAULT_TARGETS,
        help="uncovered variables to demand-query per cell (default 6)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: smallest entry, both backends, fewer targets",
    )
    parser.add_argument(
        "--out", default="results/BENCH_demand.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for .ptdb scratch files (default: temp dir)",
    )
    args = parser.parse_args(argv)
    entries = ["freetts"] if args.smoke else args.entries
    targets = 3 if args.smoke else args.targets
    run_demand_bench(
        entries,
        args.backends,
        targets=targets,
        out=args.out,
        workdir=args.workdir,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
