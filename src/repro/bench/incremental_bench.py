"""Incremental recompile benchmark: edit cost vs from-scratch cost.

For each corpus entry and kernel backend this compiles the full
points-to database once (with its ``.ptdb.fix`` fixpoint bundle), then
applies synthetic fact diffs of 1, 10, and 100 tuples — a mix of
``vP0`` additions and ``store`` removals — through
:func:`repro.incremental.recompile_database` and through a from-scratch
:func:`repro.serve.compile_database` of the same edited fact set.  Each
row records both wall clocks, the per-phase incremental strategy
(``delta``/``recomputed``), and the differential gate: the incremental
``db_id`` must equal the from-scratch ``db_id`` bit for bit.

The headline (ISSUE 8 acceptance) is the 1-tuple edit on the largest
entry: incremental recompile at least 10x faster than a full
``compile-db``, fingerprint-identical, on both backends.

Writes ``results/BENCH_incremental.json``::

    PYTHONPATH=src python -m repro.bench.incremental_bench
    PYTHONPATH=src python -m repro.bench.incremental_bench --smoke
"""

from __future__ import annotations

import json
import pathlib
import platform
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["synth_edit", "run_incremental_bench", "main"]

DEFAULT_BACKENDS = ("reference", "packed")
DEFAULT_ENTRIES = ("jetty", "gruntspud")
DEFAULT_EDIT_SIZES = (1, 10, 100)


def synth_edit(fs, size: int):
    """A deterministic ``size``-tuple diff against fact set ``fs``.

    Additions are new ``vP0`` pairs — existing points-to variables
    crossed with existing allocation sites, skipping pairs already
    present — and removals are evenly spaced existing ``store`` tuples
    (falling back to ``load`` if the store table is small).  A 1-tuple
    edit is a pure addition (the headline case: one new allocation
    statement).  No randomness: the same fact set and size always
    produce the same diff, so runs are reproducible.
    """
    from ..incremental import FactDiff

    n_remove = 0 if size == 1 else size // 2
    n_add = size - n_remove

    vp0 = set(fs.relations.get("vP0", ()))
    vars_ = sorted({v for v, _ in vp0})
    heaps = sorted({h for _, h in vp0})
    added: List[tuple] = []
    for v in vars_:
        for h in heaps:
            if (v, h) not in vp0:
                added.append((v, h))
                if len(added) == n_add:
                    break
        if len(added) == n_add:
            break
    if len(added) < n_add:
        raise ValueError(
            f"fact set too dense for a {size}-tuple edit "
            f"({len(added)} new vP0 pairs available)"
        )

    removed: Dict[str, List[tuple]] = {}
    need = n_remove
    for rel in ("store", "load"):
        if not need:
            break
        rows = sorted(fs.relations.get(rel, ()))
        step = max(1, len(rows) // max(need, 1))
        take = rows[::step][:need]
        if take:
            removed[rel] = [tuple(t) for t in take]
            need -= len(take)
    if need:
        raise ValueError(
            f"fact set too small for a {size}-tuple edit "
            f"({n_remove - need} removable tuples available)"
        )

    return FactDiff(
        added={"vP0": added},
        removed=removed,
        name=f"<synthetic edit, {size} tuples>",
    )


def bench_entry(
    entry: str,
    backend: str,
    edit_sizes: Sequence[int],
    verbose: bool = True,
) -> Dict[str, Any]:
    """Full compile + per-edit-size incremental/fresh comparison."""
    from ..incremental import FactSet, recompile_database, write_fixpoint_bundle
    from ..ir.facts import extract_facts
    from ..serve import compile_database, compile_database_with_state
    from .corpus import corpus_program

    facts = extract_facts(corpus_program(entry))
    t0 = time.monotonic()
    db, state = compile_database_with_state(facts=facts, backend=backend)
    full_s = time.monotonic() - t0
    if verbose:
        print(f"  full compile: {full_s:.2f}s (db {db.db_id})", flush=True)

    fs = FactSet.from_db_meta(db.meta, f"{entry}.ptdb")
    row: Dict[str, Any] = {
        "full_compile_s": round(full_s, 3),
        "db_id": db.db_id,
        "edits": {},
    }
    with tempfile.TemporaryDirectory(prefix="incbench-") as tmp:
        bundle = pathlib.Path(tmp) / f"{entry}.ptdb.fix"
        write_fixpoint_bundle(bundle, db, state)
        for size in edit_sizes:
            diff = synth_edit(fs, size)
            t0 = time.monotonic()
            res = recompile_database(
                db, diff, fixpoint_path=bundle, backend=backend
            )
            inc_s = time.monotonic() - t0

            new_fs, _ = fs.apply_diff(diff.resolve(fs))
            t0 = time.monotonic()
            fresh = compile_database(facts=new_fs, backend=backend)
            fresh_s = time.monotonic() - t0

            equal = res.db.db_id == fresh.db_id
            cell = {
                "diff": diff.summary(),
                "incremental_s": round(inc_s, 3),
                "fresh_compile_s": round(fresh_s, 3),
                "speedup": round(fresh_s / inc_s, 2) if inc_s else None,
                "db_id_equal": equal,
                "incremental_db_id": res.db.db_id,
                "fresh_db_id": fresh.db_id,
                "modes": dict(res.modes),
                "phase_timings": {
                    k: round(v, 3) for k, v in sorted(res.timings.items())
                },
            }
            row["edits"][str(size)] = cell
            if verbose:
                print(
                    f"  edit {size:>3}: incremental {inc_s:.2f}s vs fresh "
                    f"{fresh_s:.2f}s ({cell['speedup']}x) "
                    f"equal={equal} modes={res.modes}",
                    flush=True,
                )
            if not equal:
                raise AssertionError(
                    f"{entry}/{backend}/edit={size}: incremental db_id "
                    f"{res.db.db_id} != fresh {fresh.db_id} — the "
                    f"differential gate failed"
                )
    return row


def run_incremental_bench(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    entries: Sequence[str] = DEFAULT_ENTRIES,
    edit_sizes: Sequence[int] = DEFAULT_EDIT_SIZES,
    verbose: bool = True,
) -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for entry in entries:
        results[entry] = {}
        for backend in backends:
            if verbose:
                print(f"{entry} / {backend}:", flush=True)
            results[entry][backend] = bench_entry(
                entry, backend, edit_sizes, verbose=verbose
            )

    # Headline: the 1-tuple edit on the last (largest) entry, reported
    # as the worst speedup across backends so the claim holds for both.
    headline: Optional[Dict[str, Any]] = None
    largest = entries[-1]
    small = str(min(edit_sizes))
    cells = [
        (be, results[largest][be]["edits"].get(small))
        for be in backends
        if results[largest][be]["edits"].get(small)
    ]
    if cells:
        worst_be, worst = min(cells, key=lambda c: c[1]["speedup"])
        headline = {
            "entry": largest,
            "edit_size": int(small),
            "worst_backend": worst_be,
            "speedup": worst["speedup"],
            "db_id_equal": all(c[1]["db_id_equal"] for c in cells),
            "target": 10.0,
            "meets_target": worst["speedup"] >= 10.0,
        }

    return {
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "config": {
            "backends": list(backends),
            "entries": list(entries),
            "edit_sizes": list(edit_sizes),
        },
        "entries": results,
        "headline": headline,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--backends", default=",".join(DEFAULT_BACKENDS), metavar="A,B",
        help="kernel backends to gate against (default: %(default)s)",
    )
    parser.add_argument(
        "--entries", default=",".join(DEFAULT_ENTRIES), metavar="NAME,NAME",
        help="corpus entries, smallest first — the last one carries the "
        "headline (default: %(default)s)",
    )
    parser.add_argument(
        "--edit-sizes", default=",".join(map(str, DEFAULT_EDIT_SIZES)),
        metavar="N,N", help="edit sizes in tuples (default: %(default)s)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small corpus entries and edit sizes (CI)",
    )
    args = parser.parse_args(argv)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    entries = [n.strip() for n in args.entries.split(",") if n.strip()]
    sizes: Tuple[int, ...] = tuple(
        int(s) for s in args.edit_sizes.split(",") if s.strip()
    )
    if args.smoke:
        entries = ["freetts", "jetty"]
        sizes = (1, 10)
    data = run_incremental_bench(
        backends=backends, entries=entries, edit_sizes=sizes
    )
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    artifact = out / "BENCH_incremental.json"
    artifact.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {artifact}")
    if data["headline"]:
        h = data["headline"]
        print(
            f"headline: {h['entry']} {h['edit_size']}-tuple edit "
            f"{h['speedup']}x (worst backend: {h['worst_backend']}), "
            f"fingerprints equal: {h['db_id_equal']}, "
            f"target >=10x: {'PASS' if h['meets_target'] else 'FAIL'}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
